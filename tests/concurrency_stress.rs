//! Concurrency stress: multiple writer and reader threads hammer one
//! store while background flushes and (FCAE) compactions run. Guards the
//! races the implementation explicitly handles — obsolete-file GC vs
//! in-flight compaction outputs (`pending_outputs`), version pinning for
//! concurrent readers, and flush-during-offload.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fcae_repro::fcae::{FcaeConfig, FcaeEngine};
use fcae_repro::lsm::{Db, Options};
use fcae_repro::sstable::env::{MemEnv, StorageEnv};

fn stress(engine_is_fcae: bool) {
    let env = Arc::new(MemEnv::new());
    let options = Options {
        env: Arc::clone(&env) as Arc<dyn StorageEnv>,
        write_buffer_size: 32 << 10,
        max_file_size: 16 << 10,
        level1_max_bytes: 64 << 10,
        slowdown_sleep: false,
        ..Default::default()
    };
    let db = Arc::new(if engine_is_fcae {
        Db::open_with_engine(
            "/db",
            options,
            Arc::new(FcaeEngine::new(FcaeConfig::nine_input())),
        )
        .unwrap()
    } else {
        Db::open("/db", options).unwrap()
    });

    const WRITERS: usize = 3;
    const READERS: usize = 3;
    const KEYS: u64 = 400;
    const OPS_PER_WRITER: u64 = 4_000;

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    for w in 0..WRITERS {
        let db = Arc::clone(&db);
        handles.push(std::thread::spawn(move || {
            for i in 0..OPS_PER_WRITER {
                // Each writer owns a key-stripe, so last-value checks are
                // deterministic per stripe.
                let k = (i * 7 + w as u64) % KEYS;
                let key = format!("w{w}-{k:05}");
                if i % 19 == 5 {
                    db.delete(key.as_bytes()).unwrap();
                } else {
                    let value = format!("w{w}-i{i}-{}", "x".repeat((i % 64) as usize));
                    db.put(key.as_bytes(), value.as_bytes()).unwrap();
                }
            }
        }));
    }

    for r in 0..READERS {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut reads = 0u64;
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let w = (i + r as u64) % WRITERS as u64;
                let k = i % KEYS;
                let key = format!("w{w}-{k:05}");
                // Any outcome is fine; it must not error or panic.
                let got = db.get(key.as_bytes()).unwrap();
                if let Some(v) = got {
                    assert!(
                        v.starts_with(format!("w{w}-").as_bytes()),
                        "value from the wrong stripe"
                    );
                }
                // Periodic scans exercise version pinning during GC.
                if i.is_multiple_of(257) {
                    let rows = db.scan(b"w0-", Some(b"w0-~"), 50).unwrap();
                    assert!(rows.len() <= 50);
                }
                reads += 1;
                i += 1;
            }
            assert!(reads > 0);
        }));
    }

    // Wait for writers, then stop readers.
    let (writers, readers): (Vec<_>, Vec<_>) = {
        let mut it = handles.into_iter();
        let w: Vec<_> = (&mut it).take(WRITERS).collect();
        (w, it.collect())
    };
    for h in writers {
        h.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Relaxed);
    for h in readers {
        h.join().expect("reader panicked");
    }

    db.flush().unwrap();
    db.wait_for_background_quiescence();

    // Every write was committed by exactly one group: either it led the
    // group or rode as a follower. The split is scheduling-dependent but
    // the sum is exact.
    let registry = &db.obs().registry;
    let leaders = registry.counter_value("lsm.write.leader").unwrap_or(0);
    let followers = registry.counter_value("lsm.write.follower").unwrap_or(0);
    assert!(leaders >= 1, "no group commit ever led");
    assert_eq!(
        leaders + followers,
        WRITERS as u64 * OPS_PER_WRITER,
        "leader/follower counters must account for every write"
    );

    // Deterministic final state per stripe: replay a single writer's ops.
    for w in 0..WRITERS as u64 {
        let mut last: std::collections::HashMap<u64, Option<String>> =
            std::collections::HashMap::new();
        for i in 0..OPS_PER_WRITER {
            let k = (i * 7 + w) % KEYS;
            if i % 19 == 5 {
                last.insert(k, None);
            } else {
                last.insert(
                    k,
                    Some(format!("w{w}-i{i}-{}", "x".repeat((i % 64) as usize))),
                );
            }
        }
        for (k, expect) in last {
            let key = format!("w{w}-{k:05}");
            let got = db
                .get(key.as_bytes())
                .unwrap()
                .map(|v| String::from_utf8(v).unwrap());
            assert_eq!(got, expect, "stripe w{w} key {k}");
        }
    }
}

#[test]
fn concurrent_stress_cpu_engine() {
    stress(false);
}

#[test]
fn concurrent_stress_fcae_engine() {
    stress(true);
}
