//! Cross-engine equivalence: the same compaction through every execution
//! path in the workspace must agree.
//!
//! Three levels of agreement, from strictest to loosest:
//!
//! 1. **Byte-identical files**: the staged [`PipelinedCompactionEngine`]
//!    must emit exactly the bytes of the single-threaded
//!    [`CpuCompactionEngine`], for raw and Snappy-compressed outputs.
//! 2. **Byte-identical images + cycles**: the device kernel with the
//!    optimized zero-copy decoder must match the basic (Algorithm 1)
//!    decoder — same output images, same MetaOut, and a bit-identical
//!    cycle model, because the timing model is charged per pair, not per
//!    software implementation.
//! 3. **Logically identical streams**: the device engine splits output
//!    tables differently from the host builder, so its files differ —
//!    but the concatenated (internal key, value) stream across all output
//!    tables must equal the CPU engine's exactly.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fcae::{FcaeConfig, FcaeEngine};
use lsm::compaction::{
    CompactionEngine, CompactionInput, CompactionRequest, CpuCompactionEngine, OutputFileFactory,
};
use lsm::PipelinedCompactionEngine;
use sstable::comparator::InternalKeyComparator;
use sstable::env::{MemEnv, StorageEnv, WritableFile};
use sstable::format::CompressionType;
use sstable::ikey::{InternalKey, ValueType};
use sstable::iterator::InternalIterator;
use sstable::table::{Table, TableReadOptions};
use sstable::table_builder::{TableBuilder, TableBuilderOptions};

struct Factory {
    env: MemEnv,
    prefix: &'static str,
    counter: AtomicU64,
}

impl Factory {
    fn new(env: MemEnv, prefix: &'static str) -> Self {
        Factory {
            env,
            prefix,
            counter: AtomicU64::new(0),
        }
    }

    fn path(&self, number: u64) -> String {
        format!("/{}-{number}", self.prefix)
    }
}

impl OutputFileFactory for Factory {
    fn new_output(&self) -> lsm::Result<(u64, Box<dyn WritableFile>)> {
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        let file = self.env.create_writable(Path::new(&self.path(n)))?;
        Ok((n, file))
    }
}

fn builder_opts(compression: CompressionType) -> TableBuilderOptions {
    TableBuilderOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        block_size: 1024,
        compression,
        ..Default::default()
    }
}

fn read_opts() -> TableReadOptions {
    TableReadOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        ..Default::default()
    }
}

/// Four overlapping sorted runs with interleaved tombstones and duplicate
/// user keys (same key at different sequence numbers across runs).
fn request(env: &MemEnv, compression: CompressionType) -> CompactionRequest {
    let inputs = (0..4u32)
        .map(|input_no| {
            let name = format!("/in-{compression:?}-{input_no}");
            let f = env.create_writable(Path::new(&name)).unwrap();
            let mut b = TableBuilder::new(builder_opts(compression), f);
            for e in 0..400u32 {
                // Stride-interleaved keys; every 5th user key also appears
                // in the next input at a lower sequence (shadowed version).
                let i = e * 4 + input_no;
                let (t, v) = if i % 7 == 0 {
                    (ValueType::Deletion, String::new())
                } else {
                    (ValueType::Value, format!("value-{i}-{:0>120}", e))
                };
                let k = InternalKey::new(format!("key{i:06}").as_bytes(), u64::from(i) + 10, t);
                b.add(k.encoded(), v.as_bytes()).unwrap();
                if i % 5 == 0 {
                    let shadowed = InternalKey::new(
                        format!("key{:06}", i + 1).as_bytes(),
                        3,
                        ValueType::Value,
                    );
                    b.add(shadowed.encoded(), b"old-version").unwrap();
                }
            }
            let size = b.finish().unwrap();
            let file = env.open_random_access(Path::new(&name)).unwrap();
            CompactionInput {
                tables: vec![Table::open(file, size, read_opts()).unwrap()],
            }
        })
        .collect();
    CompactionRequest {
        level: 0,
        inputs,
        smallest_snapshot: 1 << 40,
        bottommost: true,
        builder_options: builder_opts(compression),
        // Small enough that output splits even when Snappy shrinks the
        // highly-compressible values.
        max_output_file_size: 16 << 10,
    }
}

/// Concatenated (internal key, value) stream across an engine's outputs.
fn entry_stream(env: &MemEnv, fac: &Factory, numbers: &[(u64, u64)]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut entries = Vec::new();
    for &(number, file_size) in numbers {
        let file = env
            .open_random_access(Path::new(&fac.path(number)))
            .unwrap();
        let table = Table::open(file, file_size, read_opts()).unwrap();
        let mut it = table.iter();
        it.seek_to_first();
        while it.valid() {
            entries.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        it.status().unwrap();
    }
    entries
}

#[test]
fn pipelined_and_cpu_engines_emit_identical_files() {
    for compression in [CompressionType::None, CompressionType::Snappy] {
        let env = MemEnv::new();
        let req = request(&env, compression);

        let cpu_fac = Factory::new(env.clone(), "cpu");
        let cpu = CpuCompactionEngine.compact(&req, &cpu_fac).unwrap();
        assert!(cpu.outputs.len() > 1, "want a file split: {compression:?}");
        assert!(cpu.entries_dropped > 0, "want drops: {compression:?}");

        let pipe_fac = Factory::new(env.clone(), "pipe");
        let pipe = PipelinedCompactionEngine::default()
            .compact(&req, &pipe_fac)
            .unwrap();

        assert_eq!(pipe.entries_written, cpu.entries_written, "{compression:?}");
        assert_eq!(pipe.entries_dropped, cpu.entries_dropped, "{compression:?}");
        assert_eq!(pipe.outputs.len(), cpu.outputs.len(), "{compression:?}");
        for (a, b) in cpu.outputs.iter().zip(&pipe.outputs) {
            let fa = env
                .open_random_access(Path::new(&cpu_fac.path(a.number)))
                .unwrap()
                .read_all()
                .unwrap();
            let fb = env
                .open_random_access(Path::new(&pipe_fac.path(b.number)))
                .unwrap()
                .read_all()
                .unwrap();
            assert_eq!(fa, fb, "{compression:?} table {}", a.number);
        }
    }
}

#[test]
fn optimized_and_basic_decoder_kernels_are_bit_identical() {
    for compression in [CompressionType::None, CompressionType::Snappy] {
        let env = MemEnv::new();
        let req = request(&env, compression);
        let config = FcaeConfig::nine_input();
        let images = fcae::memory::build_input_images(&req.inputs, config.w_in).unwrap();
        let engine = FcaeEngine::new(config);

        let (opt_tables, opt_model, opt_report) = engine
            .run_kernel(
                &images,
                req.smallest_snapshot,
                true,
                compression,
                4096,
                48 << 10,
            )
            .unwrap();
        let (basic_tables, basic_model, basic_report) = engine
            .run_kernel_basic(
                &images,
                req.smallest_snapshot,
                true,
                compression,
                4096,
                48 << 10,
            )
            .unwrap();

        assert_eq!(opt_tables.len(), basic_tables.len(), "{compression:?}");
        for (i, (a, b)) in opt_tables.iter().zip(&basic_tables).enumerate() {
            assert_eq!(
                a.data_memory, b.data_memory,
                "{compression:?} image {i} data bytes"
            );
            assert_eq!(
                format!("{:?}", a.index_entries),
                format!("{:?}", b.index_entries),
                "{compression:?} image {i} index"
            );
            assert_eq!(
                format!("{:?}", a.meta),
                format!("{:?}", b.meta),
                "{compression:?} image {i} meta"
            );
        }
        // The cycle model is charged per pair/block/table event, so the
        // decoder implementation must not change a single count.
        assert_eq!(
            format!("{opt_model:?}"),
            format!("{basic_model:?}"),
            "{compression:?} cycle model diverged"
        );
        assert_eq!(
            opt_report.pairs_compared, basic_report.pairs_compared,
            "{compression:?}"
        );
        assert_eq!(
            opt_report.pairs_dropped, basic_report.pairs_dropped,
            "{compression:?}"
        );
    }
}

#[test]
fn device_and_cpu_engines_agree_logically() {
    let env = MemEnv::new();
    let req = request(&env, CompressionType::Snappy);

    let cpu_fac = Factory::new(env.clone(), "cpu");
    let cpu = CpuCompactionEngine.compact(&req, &cpu_fac).unwrap();
    let cpu_numbers: Vec<_> = cpu
        .outputs
        .iter()
        .map(|o| (o.number, o.file_size))
        .collect();
    let cpu_entries = entry_stream(&env, &cpu_fac, &cpu_numbers);

    let dev_fac = Factory::new(env.clone(), "dev");
    let dev = FcaeEngine::new(FcaeConfig::nine_input())
        .compact(&req, &dev_fac)
        .unwrap();
    let dev_numbers: Vec<_> = dev
        .outputs
        .iter()
        .map(|o| (o.number, o.file_size))
        .collect();
    let dev_entries = entry_stream(&env, &dev_fac, &dev_numbers);

    assert_eq!(cpu.entries_written, dev.entries_written);
    assert_eq!(cpu.entries_dropped, dev.entries_dropped);
    assert_eq!(
        cpu_entries.len(),
        dev_entries.len(),
        "entry counts differ: cpu={} dev={}",
        cpu_entries.len(),
        dev_entries.len()
    );
    assert_eq!(cpu_entries, dev_entries, "entry streams diverged");
}
