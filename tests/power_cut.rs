//! Randomized power-cut harness: the tentpole acceptance test for the
//! fault model.
//!
//! Each round runs a seeded batch of writes against a store on a
//! [`FaultEnv`], cuts power at a random point (dropping every unsynced
//! byte, with a seeded torn tail), reopens, and checks the recovered
//! state against the op log:
//!
//! * every write acknowledged at-or-before the last `sync` **must**
//!   survive;
//! * every recovered value must be one that was actually written —
//!   a key may legally roll back to an older acknowledged-but-unsynced
//!   version (or disappear, if never synced), but it may never read as
//!   garbage or resurrect a version newer than what was written;
//! * companion tests drive injected read corruption (must surface as an
//!   error, never a silent wrong value) and unrecoverable write faults
//!   (must move the store read-only, not drop acks silently).
//!
//! 8 seeds x 25 rounds = 200 distinct crash points, all deterministic.

use std::collections::HashMap;
use std::sync::Arc;

use fcae_repro::lsm::{repair_db, Db, Error, Options, WriteBatch, WriteOptions};
use fcae_repro::sstable::env::{FaultEnv, FaultKind, MemEnv, StorageEnv};

const DIR: &str = "/db";
const SEEDS: u64 = 8;
const ROUNDS_PER_SEED: u64 = 25;
const OPS_PER_ROUND: u64 = 80;
const KEY_SPACE: u64 = 150;

/// SplitMix64: deterministic op/crash-point generation without any
/// wall-clock or global randomness.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Tiny buffers so every round crosses flush/compaction machinery and
/// the crash lands on WAL, table, and MANIFEST writes alike.
fn small_options(env: &FaultEnv) -> Options {
    Options {
        env: Arc::new(env.clone()) as Arc<dyn StorageEnv>,
        write_buffer_size: 8 << 10,
        max_file_size: 8 << 10,
        level1_max_bytes: 16 << 10,
        slowdown_sleep: false,
        background_threads: 1,
        ..Default::default()
    }
}

/// Opens the store, routing corruption through `repair_db` the way an
/// operator would. Any other failure is a harness bug.
fn open_or_repair(options: &Options) -> Db {
    match Db::open(DIR, options.clone()) {
        Ok(db) => db,
        Err(Error::Corruption(m)) => {
            let report = repair_db(DIR, options)
                .unwrap_or_else(|e| panic!("repair after '{m}' failed: {e}"));
            assert!(
                report.quarantine_failures.is_empty(),
                "repair left corrupt tables in place: {report:?}"
            );
            Db::open(DIR, options.clone()).expect("open after repair")
        }
        Err(e) => panic!("unexpected open error after power cut: {e}"),
    }
}

#[derive(Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
}

impl Op {
    fn key(&self) -> &[u8] {
        match self {
            Op::Put(k, _) | Op::Delete(k) => k,
        }
    }

    fn value(&self) -> Option<&[u8]> {
        match self {
            Op::Put(_, v) => Some(v),
            Op::Delete(_) => None,
        }
    }
}

/// One crash round: apply `ops[..cut]` (some synced), cut power, reopen,
/// verify, and return the recovered state as the next round's baseline.
///
/// Verification is per-key: the recovered value must be at least as new
/// as the newest *synced* op on that key, and must be some version that
/// was actually acknowledged — never an invented value.
fn crash_round(
    env: &FaultEnv,
    options: &Options,
    db: Db,
    baseline: &HashMap<Vec<u8>, Vec<u8>>,
    rng: &mut Rng,
    label: &str,
) -> (Db, HashMap<Vec<u8>, Vec<u8>>) {
    // Generate the round's ops (deletes ~1 in 6, values ~90 bytes so a
    // round spans a memtable rotation or two).
    let ops: Vec<Op> = (0..OPS_PER_ROUND)
        .map(|i| {
            let key = format!("key{:04}", rng.below(KEY_SPACE)).into_bytes();
            if rng.below(6) == 0 {
                Op::Delete(key)
            } else {
                Op::Put(
                    key,
                    format!("{label}-o{i}-{:/>80}", rng.below(1000)).into_bytes(),
                )
            }
        })
        .collect();
    let cut = rng.below(OPS_PER_ROUND + 1) as usize;

    // Apply the pre-cut prefix; roughly every 4th op is a synced write.
    let mut last_synced: Option<usize> = None;
    for (i, op) in ops[..cut].iter().enumerate() {
        let mut batch = WriteBatch::new();
        match op {
            Op::Put(k, v) => batch.put(k, v),
            Op::Delete(k) => batch.delete(k),
        }
        let sync = rng.below(4) == 0;
        db.write(batch, WriteOptions { sync })
            .unwrap_or_else(|e| panic!("{label}: pre-cut write {i} failed: {e}"));
        if sync {
            last_synced = Some(i);
        }
    }

    // Power cut: take the store offline mid-flight, tear down the
    // process (background errors are expected and must not panic), then
    // drop every unsynced byte with a seeded torn tail.
    env.set_offline(true);
    drop(db);
    let cut_seed = rng.next();
    env.power_cut(cut_seed)
        .unwrap_or_else(|e| panic!("{label}: power_cut failed: {e}"));

    let db = open_or_repair(options);
    let recovered: HashMap<Vec<u8>, Vec<u8>> = db
        .scan(b"", None, usize::MAX)
        .unwrap_or_else(|e| panic!("{label}: post-recovery scan failed: {e}"))
        .into_iter()
        .collect();

    // Per-key op history for the applied prefix, as (op index, value).
    type History<'a> = HashMap<&'a [u8], Vec<(usize, Option<&'a [u8]>)>>;
    let mut history: History = HashMap::new();
    for (i, op) in ops[..cut].iter().enumerate() {
        history.entry(op.key()).or_default().push((i, op.value()));
    }

    let mut checked: std::collections::HashSet<&[u8]> = std::collections::HashSet::new();
    for (key, hist) in &history {
        checked.insert(key);
        // Newest op on this key that a sync made durable (everything at
        // or before `last_synced` sits in the synced WAL prefix).
        let durable_floor = last_synced
            .and_then(|s| hist.iter().rev().find(|(i, _)| *i <= s))
            .map(|(i, _)| *i);
        // Admissible versions: the durable floor and anything newer; if
        // nothing on this key is durable, the pre-round baseline too.
        let mut allowed: Vec<Option<&[u8]>> = Vec::new();
        for (i, v) in hist {
            if durable_floor.is_none_or(|f| *i >= f) {
                allowed.push(*v);
            }
        }
        if durable_floor.is_none() {
            allowed.push(baseline.get(*key).map(|v| v.as_slice()));
        }
        let got = recovered.get(*key).map(|v| v.as_slice());
        assert!(
            allowed.contains(&got),
            "{label}: key {} recovered {:?}, not among {} admissible versions \
             (cut={cut}, last_synced={last_synced:?}, floor={durable_floor:?})",
            String::from_utf8_lossy(key),
            got.map(String::from_utf8_lossy),
            allowed.len(),
        );
    }

    // Untouched keys must carry the baseline exactly; no key may appear
    // from nowhere.
    for (key, value) in baseline {
        if checked.contains(key.as_slice()) {
            continue;
        }
        assert_eq!(
            recovered.get(key),
            Some(value),
            "{label}: untouched key {} changed across the crash",
            String::from_utf8_lossy(key),
        );
    }
    for key in recovered.keys() {
        assert!(
            baseline.contains_key(key) || history.contains_key(key.as_slice()),
            "{label}: key {} was never written",
            String::from_utf8_lossy(key),
        );
    }

    (db, recovered)
}

/// The main harness: 200 seeded crash points, each verifying the full
/// synced-acknowledged prefix and admissibility of every survivor.
/// `POWER_CUT_SEED_BASE` shifts the seed band so CI's fault matrix can
/// sweep disjoint bands without touching the source.
#[test]
fn power_cut_recovers_synced_prefix_across_200_crash_points() {
    let base: u64 = std::env::var("POWER_CUT_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    for seed in base..base + SEEDS {
        let env = FaultEnv::new(Arc::new(MemEnv::new()), seed);
        let options = small_options(&env);
        let mut rng = Rng::new(seed.wrapping_mul(0xC0FF_EE00).wrapping_add(7));
        let mut db = Db::open(DIR, options.clone()).expect("fresh open");
        let mut baseline: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
        for round in 0..ROUNDS_PER_SEED {
            let label = format!("seed{seed}/round{round}");
            let (next_db, next_baseline) =
                crash_round(&env, &options, db, &baseline, &mut rng, &label);
            db = next_db;
            baseline = next_baseline;
        }
        // The store must still be healthy and writable at the end.
        db.put(b"final", b"write").expect("store ends writable");
        assert_eq!(db.get(b"final").unwrap(), Some(b"write".to_vec()));
    }
}

/// Injected read corruption (bit flips) must surface as an error — a
/// checksum mismatch or a failed open — never as a silently wrong value.
#[test]
fn read_corruption_is_detected_never_silent() {
    let env = FaultEnv::new(Arc::new(MemEnv::new()), 42);
    // No block cache: every read goes through the (corrupting) env.
    let options = Options {
        block_cache_bytes: None,
        ..small_options(&env)
    };
    let db = Db::open(DIR, options).expect("open");
    let expected: Vec<(Vec<u8>, Vec<u8>)> = (0..2_000u64)
        .map(|i| {
            (
                format!("key{i:06}").into_bytes(),
                format!("value-{i}-{:0>40}", i).into_bytes(),
            )
        })
        .collect();
    for (k, v) in &expected {
        db.put(k, v).expect("load");
    }
    db.flush().expect("flush");
    db.wait_for_background_quiescence();

    // Flip one bit in roughly every 4th read.
    env.corrupt_reads_one_in(4);
    let mut detected = 0u64;
    let mut clean = 0u64;
    for (k, v) in &expected {
        match db.get(k) {
            Ok(Some(got)) => {
                assert_eq!(
                    &got,
                    v,
                    "corrupted read returned a wrong value for {}",
                    String::from_utf8_lossy(k)
                );
                clean += 1;
            }
            Ok(None) => panic!(
                "corrupted read silently dropped key {}",
                String::from_utf8_lossy(k)
            ),
            Err(_) => detected += 1,
        }
    }
    env.corrupt_reads_one_in(0);
    assert!(env.bits_flipped() > 0, "injection never fired");
    assert!(detected > 0, "no corruption was ever detected");
    assert!(clean > 0, "every read failed; checksum scope too coarse?");

    // With injection off the store reads clean again (nothing was
    // corrupted at rest).
    for (k, v) in expected.iter().step_by(97) {
        assert_eq!(db.get(k).unwrap().as_ref(), Some(v));
    }
}

/// An unrecoverable WAL write fault must reject the failing write and
/// move the store read-only — never acknowledge and then drop data.
#[test]
fn wal_write_fault_moves_store_read_only() {
    let (bundle, _clock) = fcae_repro::obs::Obs::manual();
    let env = FaultEnv::new(Arc::new(MemEnv::new()), 7);
    let options = Options {
        obs: Some(Arc::clone(&bundle)),
        ..small_options(&env)
    };
    let db = Db::open(DIR, options.clone()).expect("open");
    for i in 0..50u64 {
        let mut b = WriteBatch::new();
        b.put(format!("pre{i:03}").as_bytes(), b"durable");
        db.write(b, WriteOptions { sync: true }).expect("pre-fault");
    }

    // The next WAL sync hits ENOSPC: the write must FAIL (not be acked).
    env.inject_errors(FaultKind::Sync, 1);
    let mut b = WriteBatch::new();
    b.put(b"doomed", b"value");
    let err = db.write(b, WriteOptions { sync: true }).unwrap_err();
    assert!(
        matches!(err, Error::Io(_) | Error::Table(_) | Error::ReadOnly(_)),
        "WAL fault must surface as an error, got: {err}"
    );

    // The store is now sticky read-only: writes rejected, reads fine.
    let err = db.put(b"after", b"fault").unwrap_err();
    assert!(
        matches!(err, Error::ReadOnly(_)),
        "post-fault write must be ReadOnly, got: {err}"
    );
    assert!(matches!(db.flush(), Err(Error::ReadOnly(_))));
    assert_eq!(db.get(b"pre000").unwrap(), Some(b"durable".to_vec()));
    assert_eq!(db.get(b"doomed").unwrap(), None, "failed write was acked");
    assert_eq!(
        bundle.registry.counter_value("lsm.bg-error.set"),
        Some(1),
        "bg-error counter must record the transition"
    );
    assert!(
        bundle
            .registry
            .counter_value("lsm.bg-error.readonly-writes")
            .unwrap()
            > 0
    );
    drop(db);

    // The rejected record still sits in the OS-buffered (unsynced) WAL
    // tail, so it has indeterminate durability: after a power cut it may
    // vanish or resurrect with its exact payload, but it must never read
    // back as garbage — and every synced ack must survive.
    env.power_cut(99).expect("power cut");
    let db = Db::open(DIR, options).expect("reopen");
    for i in 0..50u64 {
        assert_eq!(
            db.get(format!("pre{i:03}").as_bytes()).unwrap(),
            Some(b"durable".to_vec()),
            "synced write {i} lost across the fault"
        );
    }
    let doomed = db.get(b"doomed").unwrap();
    assert!(
        doomed.is_none() || doomed.as_deref() == Some(b"value"),
        "failed write resurrected as garbage: {doomed:?}"
    );
}

/// A transient compaction I/O error is retried with backoff and must
/// not take the store read-only.
#[test]
fn transient_compaction_fault_is_retried_not_fatal() {
    let (bundle, _clock) = fcae_repro::obs::Obs::manual();
    let env = FaultEnv::new(Arc::new(MemEnv::new()), 11);
    let options = Options {
        obs: Some(Arc::clone(&bundle)),
        ..small_options(&env)
    };
    let db = Db::open(DIR, options).expect("open");
    // Two overlapping generations so compact_all runs a real merge (a
    // trivial move would bypass the engine and its output writes).
    for round in 0..2u64 {
        for i in 0..300u64 {
            db.put(
                format!("key{i:05}").as_bytes(),
                format!("r{round}-{:0>60}", i).as_bytes(),
            )
            .expect("load");
        }
        db.flush().expect("flush");
        db.wait_for_background_quiescence();
    }

    // One transient append failure lands on the compaction output path.
    env.inject_errors(FaultKind::Append, 1);
    db.compact_all().expect("compaction must survive one fault");
    assert!(
        bundle
            .registry
            .counter_value("lsm.compact.retry.count")
            .unwrap()
            >= 1,
        "retry counter never moved"
    );
    assert_eq!(
        bundle.registry.counter_value("lsm.bg-error.set"),
        Some(0),
        "a retried transient fault must not set the background error"
    );
    db.put(b"still", b"writable").expect("store stays writable");
    for i in (0..300u64).step_by(37) {
        assert_eq!(
            db.get(format!("key{i:05}").as_bytes()).unwrap(),
            Some(format!("r1-{:0>60}", i).into_bytes())
        );
    }
}

/// Value-log band: key-value separation on, so every large value rides
/// the append-only value log and the WAL carries pointers. A GC thread
/// hammers `collect_value_log` while the writer streams, and power is
/// cut at a seeded acknowledgement count — so the crash routinely lands
/// mid-GC (mid-rewrite, mid-retirement, or mid-segment-removal). After
/// recovery:
///
/// * every write acknowledged at-or-before the last synced ack must
///   survive with its exact bytes (vlog-then-WAL sync ordering);
/// * no key may carry an overwritten or deleted generation — GC rewrites
///   must never resurrect stale values past the versions that shadowed
///   them.
#[test]
fn value_log_synced_acks_survive_power_cut_mid_gc() {
    const OPS: u64 = 120;
    const VLOG_KEYS: u64 = 24;
    let base: u64 = std::env::var("POWER_CUT_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    for seed in base..base + 4 {
        let env = FaultEnv::new(Arc::new(MemEnv::new()), seed ^ 0x91_06);
        // Separation on, tiny segments: GC always has sealed segments to
        // rewrite, and the crash can land between vlog sync, WAL sync,
        // and segment removal.
        let options = Options {
            value_log_threshold_bytes: Some(64),
            value_log_segment_bytes: 1 << 10,
            ..small_options(&env)
        };
        let db = Db::open(DIR, options.clone()).expect("fresh open");
        let mut rng = Rng::new(seed.wrapping_mul(0xB1_0C).wrapping_add(3));
        let cut_after = 30 + (seed % 5) * 18;

        // Acked ops only, in ack order: (key, value-or-tombstone, synced).
        let mut journal: Vec<(Vec<u8>, Option<Vec<u8>>, bool)> = Vec::new();
        let gc_attempts = std::thread::scope(|s| {
            let gc = {
                let db = &db;
                let env = env.clone();
                s.spawn(move || {
                    let mut attempts = 0u64;
                    while !env.is_offline() {
                        attempts += 1;
                        // Offline mid-pass surfaces as an error; anything
                        // else GC must absorb without panicking.
                        if db.collect_value_log().is_err() {
                            break;
                        }
                    }
                    attempts
                })
            };
            let mut acked = 0u64;
            for i in 0..OPS {
                let key = format!("vk{:03}", rng.below(VLOG_KEYS)).into_bytes();
                let mut batch = WriteBatch::new();
                // ~180-byte values clear the 64-byte threshold; the
                // (seed, i) tag makes every generation distinguishable,
                // so a resurrected old generation cannot hide.
                let value = (rng.below(6) != 0)
                    .then(|| format!("s{seed}-i{i:04}-{:a>180}", "").into_bytes());
                match &value {
                    Some(v) => batch.put(&key, v),
                    None => batch.delete(&key),
                }
                let sync = rng.below(3) == 0;
                match db.write(batch, WriteOptions { sync }) {
                    Ok(()) => {
                        journal.push((key, value, sync));
                        acked += 1;
                    }
                    // The cut (or a GC-poisoned store after it) reached
                    // us; nothing past this point is acknowledged.
                    Err(_) => break,
                }
                if acked == cut_after {
                    env.set_offline(true);
                }
            }
            env.set_offline(true);
            gc.join().expect("gc thread")
        });
        assert!(gc_attempts >= 1, "seed{seed}: GC never ran before the cut");

        drop(db);
        env.power_cut(seed.wrapping_mul(41).wrapping_add(13))
            .unwrap_or_else(|e| panic!("seed{seed}: power_cut failed: {e}"));
        let db = open_or_repair(&options);

        // Global durable floor: the index of the last synced ack (the WAL
        // prefix up to it is durable, and the vlog is synced before the
        // WAL sync that acks a pointer).
        let last_synced = journal
            .iter()
            .enumerate()
            .rev()
            .find(|(_, (_, _, sync))| *sync)
            .map(|(i, _)| i);
        #[allow(clippy::type_complexity)]
        let mut history: HashMap<&[u8], Vec<(usize, Option<&[u8]>)>> = HashMap::new();
        for (i, (key, value, _)) in journal.iter().enumerate() {
            history
                .entry(key.as_slice())
                .or_default()
                .push((i, value.as_deref()));
        }
        for (key, hist) in &history {
            let floor = last_synced
                .and_then(|s| hist.iter().rev().find(|(i, _)| *i <= s))
                .map(|(i, _)| *i);
            let mut allowed: Vec<Option<&[u8]>> = hist
                .iter()
                .filter(|(i, _)| floor.is_none_or(|f| *i >= f))
                .map(|(_, v)| *v)
                .collect();
            if floor.is_none() {
                // Nothing on this key was ever durable: absence is legal.
                allowed.push(None);
            }
            let got = db.get(key).unwrap_or_else(|e| {
                panic!(
                    "seed{seed}: get {} failed after recovery: {e}",
                    String::from_utf8_lossy(key)
                )
            });
            assert!(
                allowed.contains(&got.as_deref()),
                "seed{seed}: key {} recovered {:?}, not among {} admissible \
                 versions (floor={floor:?}, last_synced={last_synced:?}); \
                 history={:?}",
                String::from_utf8_lossy(key),
                got.as_ref().map(|v| String::from_utf8_lossy(v)),
                allowed.len(),
                hist.iter()
                    .map(|(i, v)| (*i, v.map(|v| v.len()), journal[*i].2))
                    .collect::<Vec<_>>(),
            );
        }
        for (key, _) in db.scan(b"", None, usize::MAX).unwrap() {
            assert!(
                history.contains_key(key.as_slice()),
                "seed{seed}: key {} was never written",
                String::from_utf8_lossy(&key),
            );
        }

        // The recovered store must keep working: GC is harmless and the
        // store stays writable (large values included).
        db.collect_value_log()
            .unwrap_or_else(|e| panic!("seed{seed}: post-recovery GC failed: {e}"));
        let big = vec![b'z'; 200];
        db.put(b"vk-final", &big).expect("store ends writable");
        assert_eq!(db.get(b"vk-final").unwrap(), Some(big));
    }
}

/// Multi-writer band: four concurrent writers stream into one store
/// (exercising sequence reservation, leader-elected group commit, and
/// epoch rotation under load); power is cut mid-flight. Every write a
/// writer observed as acknowledged at-or-before its own last synced ack
/// must survive recovery, and nothing may read back as garbage.
#[test]
fn multi_writer_synced_acks_survive_power_cut() {
    const WRITERS: usize = 4;
    const OPS: u64 = 150;
    let base: u64 = std::env::var("POWER_CUT_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    for seed in base..base + 4 {
        let env = FaultEnv::new(Arc::new(MemEnv::new()), seed ^ 0x5eed);
        let options = small_options(&env);
        let db = Db::open(DIR, options.clone()).expect("fresh open");
        // Cut power once this many writes (across all threads) have been
        // acknowledged — a seeded crash point in the middle of the run.
        let cut_after = 40 + (seed % 7) * 55;
        let acked = Arc::new(std::sync::atomic::AtomicU64::new(0));

        // Per-writer journals: (op index, synced) for every *acknowledged*
        // write, captured only after `Db::write` returned Ok.
        let journals: Vec<Vec<(u64, bool)>> = std::thread::scope(|s| {
            let chaos = {
                let env = env.clone();
                let acked = Arc::clone(&acked);
                s.spawn(move || {
                    while acked.load(std::sync::atomic::Ordering::Acquire) < cut_after {
                        std::thread::yield_now();
                    }
                    env.set_offline(true);
                })
            };
            let handles: Vec<_> = (0..WRITERS)
                .map(|w| {
                    let db = &db;
                    let acked = Arc::clone(&acked);
                    s.spawn(move || {
                        let mut rng = Rng::new((seed << 8) | w as u64);
                        let mut journal = Vec::new();
                        for i in 0..OPS {
                            let mut batch = WriteBatch::new();
                            batch.put(
                                format!("w{w}-k{i:04}").as_bytes(),
                                format!("w{w}-v{i}-{:->60}", seed).as_bytes(),
                            );
                            let sync = rng.below(5) == 0;
                            match db.write(batch, WriteOptions { sync }) {
                                Ok(()) => {
                                    journal.push((i, sync));
                                    acked.fetch_add(1, std::sync::atomic::Ordering::AcqRel);
                                }
                                // Offline: the power cut reached us. Stop
                                // writing; nothing past this is acked.
                                Err(_) => break,
                            }
                        }
                        journal
                    })
                })
                .collect();
            let journals = handles.into_iter().map(|h| h.join().unwrap()).collect();
            chaos.join().unwrap();
            journals
        });

        drop(db);
        env.power_cut(seed.wrapping_mul(31).wrapping_add(5))
            .unwrap_or_else(|e| panic!("seed{seed}: power_cut failed: {e}"));
        let db = open_or_repair(&options);

        for (w, journal) in journals.iter().enumerate() {
            // The writer's durable floor: its newest op at-or-before its
            // own last synced ack. Everything up to the floor must
            // survive with the exact value written (keys are unique, so
            // no newer version can mask a loss).
            let floor = journal
                .iter()
                .rev()
                .find(|(_, sync)| *sync)
                .map(|(i, _)| *i);
            for (i, _) in journal {
                let key = format!("w{w}-k{i:04}");
                let got = db.get(key.as_bytes()).unwrap();
                let expect = format!("w{w}-v{i}-{:->60}", seed);
                match got {
                    Some(v) => assert_eq!(
                        v,
                        expect.as_bytes(),
                        "seed{seed}: writer {w} op {i} read back garbage"
                    ),
                    None => assert!(
                        floor.is_none_or(|f| *i > f),
                        "seed{seed}: writer {w} op {i} was acknowledged at-or-before \
                         its synced op {floor:?} but did not survive the power cut"
                    ),
                }
            }
        }
        // No key may appear from nowhere.
        for (key, _) in db.scan(b"", None, usize::MAX).unwrap() {
            let s = String::from_utf8(key).unwrap();
            assert!(
                s.starts_with('w') && s.contains("-k"),
                "seed{seed}: unexpected key {s} after recovery"
            );
        }
    }
}
