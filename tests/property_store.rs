//! Property-based tests: the store (on either engine) behaves like a
//! `HashMap<Vec<u8>, Vec<u8>>` under arbitrary operation sequences, with
//! flushes and reopens inserted anywhere.

use std::collections::HashMap;
use std::sync::Arc;

use fcae_repro::fcae::{FcaeConfig, FcaeEngine};
use fcae_repro::lsm::{Db, Options};
use fcae_repro::sstable::env::{MemEnv, StorageEnv};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Flush,
    Reopen,
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small keyspace so operations collide and exercise shadowing.
    (0u32..50).prop_map(|i| format!("key{i:03}").into_bytes())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (key_strategy(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(k, v)| Op::Put(k, v)),
        2 => key_strategy().prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::Reopen),
    ]
}

fn options(env: &Arc<MemEnv>) -> Options {
    Options {
        env: Arc::clone(env) as Arc<dyn StorageEnv>,
        write_buffer_size: 8 << 10, // tiny: force frequent flushes
        max_file_size: 8 << 10,
        level1_max_bytes: 32 << 10,
        slowdown_sleep: false,
        ..Default::default()
    }
}

fn run_model(ops: &[Op], fcae: bool) {
    let env = Arc::new(MemEnv::new());
    let open = |env: &Arc<MemEnv>| {
        if fcae {
            Db::open_with_engine(
                "/db",
                options(env),
                Arc::new(FcaeEngine::new(FcaeConfig::nine_input())),
            )
            .unwrap()
        } else {
            Db::open("/db", options(env)).unwrap()
        }
    };
    let mut db = open(&env);
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();

    for op in ops {
        match op {
            Op::Put(k, v) => {
                db.put(k, v).unwrap();
                model.insert(k.clone(), v.clone());
            }
            Op::Delete(k) => {
                db.delete(k).unwrap();
                model.remove(k);
            }
            Op::Flush => {
                db.flush().unwrap();
            }
            Op::Reopen => {
                drop(db);
                db = open(&env);
            }
        }
    }
    db.wait_for_background_quiescence();

    // Full agreement with the model.
    for (k, v) in &model {
        assert_eq!(db.get(k).unwrap().as_ref(), Some(v), "key {k:?}");
    }
    // And nothing extra: scan the whole range.
    let scanned = db.scan(b"", None, 10_000).unwrap();
    assert_eq!(scanned.len(), model.len(), "phantom keys in scan");
    for (k, v) in &scanned {
        assert_eq!(model.get(k), Some(v), "scan key {k:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn store_matches_model_cpu(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run_model(&ops, false);
    }

    #[test]
    fn store_matches_model_fcae(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run_model(&ops, true);
    }
}
