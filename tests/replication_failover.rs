//! Replication failover harness (ISSUE 10 tentpole): kill a leader
//! mid-stream with a seeded [`FaultEnv`] power cut, promote the
//! replica, and assert the **acknowledged prefix survives
//! cluster-wide** — every write the leader acked (with `--sync`
//! semantics) must be readable on the promoted node with its exact
//! bytes, and the promoted node must never serve a value that was
//! never written.
//!
//! Three bands, each swept over `POWER_CUT_SEED_BASE`-shifted seeds so
//! CI's replication matrix covers disjoint crash points without
//! touching the source:
//!
//! * plain failover (no value log);
//! * failover with key-value separation on the **leader** — the stream
//!   re-inlines value-log pointers, so the replica (running without
//!   separation) must still end byte-identical;
//! * clean catch-up equality: no kill, leader and replica must converge
//!   to identical sequence tokens and an identical full-range scan
//!   digest, read-your-writes tokens must gate replica reads, and the
//!   `repl.*` metric family must be visible in the stats export.
//!
//! The companion real-process band (`SIGKILL` of an actual `kv-server`
//! leader) lives in `crates/server/tests/replication_sigkill.rs`, where
//! the binary path is available.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use fcae_repro::sstable::env::{FaultEnv, MemEnv, StorageEnv};
use server::{KvClient, KvServer, ServerConfig};

const SHARDS: usize = 2;
const KEY_LEN: usize = 16;

fn seed_base() -> u64 {
    std::env::var("POWER_CUT_SEED_BASE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Spread key `i` over the whole 16-digit keyspace so both shards take
/// acknowledged writes (same multiplier trick as the power-cut harness).
fn key_for(i: u64) -> Vec<u8> {
    let space = 10u64.pow(KEY_LEN as u32);
    let n = i.wrapping_mul(6_364_136_223_846_793_005) % space;
    format!("{n:016}").into_bytes()
}

fn value_for(seed: u64, i: u64, pad: usize) -> Vec<u8> {
    format!("s{seed}-i{i}-{}", "v".repeat(pad)).into_bytes()
}

/// Small-buffer config over a caller-supplied env; `sync_writes` on so
/// every ack is a durability (and semi-sync) statement.
fn config(env: &FaultEnv, root: &str, vlog: Option<usize>) -> ServerConfig {
    ServerConfig {
        shards: SHARDS,
        root: root.into(),
        engine_slots: 0,
        sync_writes: true,
        write_buffer_size: 16 << 10,
        max_file_size: 16 << 10,
        key_len: KEY_LEN,
        env: Some(Arc::new(env.clone()) as Arc<dyn StorageEnv>),
        value_log_threshold: vlog,
        ..ServerConfig::default()
    }
}

/// Polls `f` until it returns `Some` or the deadline passes.
fn poll_until<T>(timeout: Duration, mut f: impl FnMut() -> Option<T>) -> Option<T> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(v) = f() {
            return Some(v);
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Writes one synced marker through the leader and waits until the
/// replica serves it — proof the feed is registered and caught up, so
/// every *later* synced write rides the semi-sync ack wait.
fn await_replica_attached(leader: &str, replica: &str) {
    let mut lc = KvClient::connect(leader).expect("connect leader");
    lc.put(b"warmup-marker", b"warm", true).expect("warmup put");
    let mut rc = KvClient::connect(replica).expect("connect replica");
    poll_until(Duration::from_secs(10), || {
        matches!(rc.get(b"warmup-marker"), Ok(Some(_))).then_some(())
    })
    .expect("replica never caught up with the warmup write");
}

/// One seeded failover round: build a leader+replica pair, write synced
/// keys until the seeded cut, cut the leader's power, promote the
/// replica, and verify the acked prefix (exact bytes) plus the
/// no-invented-data rule on the promoted node.
fn failover_round(seed: u64, vlog: Option<usize>, pad: usize) {
    let leader_env = FaultEnv::new(Arc::new(MemEnv::new()), seed);
    let replica_env = FaultEnv::new(Arc::new(MemEnv::new()), seed ^ 0x5eed_0bee);
    let label = format!("seed{seed}/vlog={vlog:?}");

    let leader = KvServer::open(config(&leader_env, "/leader", vlog))
        .expect("open leader")
        .start("127.0.0.1:0")
        .expect("start leader");
    let leader_addr = leader.addr().to_string();
    let replica_cfg = ServerConfig {
        replica_of: Some(leader_addr.clone()),
        // The replica runs WITHOUT separation: the stream must carry
        // raw values (re-inlined on the leader side) for this to work.
        value_log_threshold: None,
        ..config(&replica_env, "/replica", None)
    };
    let replica = KvServer::open(replica_cfg)
        .expect("open replica")
        .start("127.0.0.1:0")
        .expect("start replica");
    let replica_addr = replica.addr().to_string();

    await_replica_attached(&leader_addr, &replica_addr);

    // Synced writes until the seeded cut point; journal only acked ones.
    let cut_after = 40 + (seed % 5) * 20;
    let mut client = KvClient::connect(&leader_addr).expect("connect leader");
    let mut acked: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let mut attempted: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    for i in 0.. {
        let (key, value) = (key_for(i), value_for(seed, i, pad));
        attempted.insert(key.clone(), value.clone());
        match client.put(&key, &value, true) {
            Ok(()) => {
                acked.insert(key, value);
            }
            // The cut reached us: nothing past this point is acked.
            Err(_) => break,
        }
        if acked.len() as u64 == cut_after {
            // Kill the leader mid-stream: storage goes dark first (the
            // in-flight write above the cut fails), then the process.
            leader_env.set_offline(true);
        }
    }
    assert!(
        acked.len() as u64 >= cut_after,
        "{label}: cut fired before the target ({} acked)",
        acked.len()
    );
    leader.shutdown();
    leader_env
        .power_cut(seed.wrapping_mul(37).wrapping_add(11))
        .unwrap_or_else(|e| panic!("{label}: power_cut failed: {e}"));

    // No semi-sync wait may have been silently skipped: the guarantee
    // below leans on every ack implying replica durability.
    assert_eq!(
        leader
            .obs()
            .registry
            .counter_value("repl.ack_wait_timeouts"),
        Some(0),
        "{label}: a semi-sync wait timed out; the acked-prefix guarantee is void"
    );

    // Promote the most-caught-up (only) replica and verify.
    let mut rc = KvClient::connect(&replica_addr).expect("connect replica");
    rc.promote()
        .unwrap_or_else(|e| panic!("{label}: promote failed: {e}"));
    assert_eq!(
        replica.obs().registry.counter_value("repl.promotions"),
        Some(1),
        "{label}: promotion counter did not move"
    );

    // Every leader-acked write must be readable on the promoted node.
    for (key, expect) in &acked {
        let got = rc
            .get(key)
            .unwrap_or_else(|e| panic!("{label}: get on promoted node failed: {e}"));
        assert_eq!(
            got.as_deref(),
            Some(expect.as_slice()),
            "{label}: acked key {} lost or corrupted across failover",
            String::from_utf8_lossy(key)
        );
    }
    // ...and the promoted node may hold nothing that was never written.
    let mut start = Vec::new();
    loop {
        let (pairs, complete) = rc.scan_partial(&start, None, 10_000).expect("scan");
        for (key, value) in &pairs {
            if key.as_slice() == b"warmup-marker" {
                continue;
            }
            let wrote = attempted.get(key);
            assert!(
                wrote.is_some_and(|v| v == value),
                "{label}: promoted node serves never-written data for key {}",
                String::from_utf8_lossy(key)
            );
        }
        match (complete, pairs.last()) {
            (false, Some((last, _))) => {
                start = last.clone();
                start.push(0);
            }
            _ => break,
        }
    }

    // The promoted node is a leader now: it must accept writes.
    rc.put(b"post-promote", b"accepted", true)
        .expect("promoted node must accept writes");
    replica.shutdown();
}

/// Band 1: plain failover, both `POWER_CUT_SEED_BASE` bands.
#[test]
fn failover_preserves_acked_prefix() {
    let base = seed_base();
    for seed in base..base + 2 {
        failover_round(seed, None, 40);
    }
}

/// Band 2: the leader runs key-value separation, so most values live in
/// its value log and the WAL carries pointers — the stream must
/// re-inline them (PR 9 pointers survive failover by value).
#[test]
fn failover_with_value_log_reinlines_pointers() {
    let base = seed_base();
    for seed in base..base + 2 {
        // 200-byte pad clears the 64-byte separation threshold.
        failover_round(seed, Some(64), 200);
    }
}

/// Band 3: clean catch-up — leader and replica must converge to
/// identical per-shard sequence tokens and an identical full-range scan
/// digest; read-your-writes tokens gate replica reads; the `repl.*`
/// family shows up in the stats export.
#[test]
fn clean_catchup_converges_to_identical_state() {
    let seed = seed_base() ^ 0x0c_a7;
    let leader_env = FaultEnv::new(Arc::new(MemEnv::new()), seed);
    let replica_env = FaultEnv::new(Arc::new(MemEnv::new()), seed ^ 1);

    let leader = KvServer::open(config(&leader_env, "/leader", Some(64)))
        .expect("open leader")
        .start("127.0.0.1:0")
        .expect("start leader");
    let leader_addr = leader.addr().to_string();
    let replica = KvServer::open(ServerConfig {
        replica_of: Some(leader_addr.clone()),
        ..config(&replica_env, "/replica", None)
    })
    .expect("open replica")
    .start("127.0.0.1:0")
    .expect("start replica");
    let replica_addr = replica.addr().to_string();

    await_replica_attached(&leader_addr, &replica_addr);

    // A mixed load: small inline values, large separated values, and
    // deletes, all through the leader.
    let mut lc = KvClient::connect(&leader_addr).expect("connect leader");
    for i in 0..300u64 {
        let key = key_for(i);
        if i % 7 == 3 {
            lc.delete(&key, false).expect("delete");
        } else {
            let pad = if i % 3 == 0 { 200 } else { 16 };
            lc.put(&key, &value_for(seed, i, pad), false).expect("put");
        }
    }
    // One synced write seals the tail (and rides the semi-sync wait).
    lc.put(b"final-marker", b"done", true).expect("final sync");

    // Convergence: replica sequence tokens reach the leader's.
    let want = lc.get_seq().expect("leader seq");
    let mut rc = KvClient::connect(&replica_addr).expect("connect replica");
    poll_until(Duration::from_secs(10), || {
        let got = rc.get_seq().ok()?;
        (got.len() == want.len() && got.iter().zip(&want).all(|(g, w)| g >= w)).then_some(())
    })
    .expect("replica sequence tokens never reached the leader's");

    // Read-your-writes: the leader token must gate a replica read.
    match rc.get_ryw(b"final-marker", &want).expect("get_ryw") {
        Ok(Some(v)) => assert_eq!(v, b"done"),
        other => panic!("token-gated read failed: {other:?}"),
    }
    // An unreachable token must answer Lagging, not hang or lie.
    let absurd: Vec<u64> = want.iter().map(|s| s + 1_000_000).collect();
    match rc
        .get_ryw(b"final-marker", &absurd)
        .expect("get_ryw absurd")
    {
        Err(applied) => assert!(applied >= *want.iter().min().unwrap_or(&0)),
        Ok(v) => panic!("absurd token served a read: {v:?}"),
    }

    // Full-range scan digest must be identical on both nodes.
    let scan_all = |c: &mut KvClient| -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all = Vec::new();
        let mut start = Vec::new();
        loop {
            let (pairs, complete) = c.scan_partial(&start, None, 10_000).expect("scan");
            let last = pairs.last().map(|(k, _)| k.clone());
            all.extend(pairs);
            match (complete, last) {
                (false, Some(mut k)) => {
                    k.push(0);
                    start = k;
                }
                _ => break,
            }
        }
        all
    };
    let (l, r) = (scan_all(&mut lc), scan_all(&mut rc));
    assert_eq!(l.len(), r.len(), "key counts diverge after clean catch-up");
    let digest = |pairs: &[(Vec<u8>, Vec<u8>)]| -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (k, v) in pairs {
            for b in k.iter().chain(v) {
                h = (h ^ u64::from(*b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
            h = (h ^ 0xff).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    };
    assert_eq!(
        digest(&l),
        digest(&r),
        "scan digests diverge after clean catch-up"
    );
    assert_eq!(l, r, "scan contents diverge after clean catch-up");

    // The repl.* family is part of the public stats surface.
    let stats = lc.stats(false).expect("leader stats");
    for name in ["repl.lag.bytes", "repl.acks", "repl.records.sent"] {
        assert!(stats.contains(name), "leader stats missing {name}: {stats}");
    }
    let rstats = rc.stats(false).expect("replica stats");
    assert!(
        rstats.contains("repl.records.applied"),
        "replica stats missing repl.records.applied"
    );

    leader.shutdown();
    replica.shutdown();
}
