//! Cross-crate integration: the full store, driven by the workload
//! generators, on both engines, over the real filesystem.

use std::sync::Arc;

use fcae_repro::fcae::{FcaeConfig, FcaeEngine};
use fcae_repro::lsm::{Db, Options};
use fcae_repro::sstable::env::{MemEnv, StorageEnv};
use fcae_repro::workloads::{KeyFormat, ValueGenerator};

fn small_options(env: Arc<MemEnv>) -> Options {
    Options {
        env: env as Arc<dyn StorageEnv>,
        write_buffer_size: 128 << 10,
        max_file_size: 64 << 10,
        level1_max_bytes: 256 << 10,
        slowdown_sleep: false,
        ..Default::default()
    }
}

/// Drives identical workloads into a CPU-engine store and an FCAE-engine
/// store and verifies every read agrees.
#[test]
fn cpu_and_fcae_stores_agree_on_reads() {
    let env_cpu = Arc::new(MemEnv::new());
    let env_fcae = Arc::new(MemEnv::new());
    let db_cpu = Db::open("/cpu", small_options(Arc::clone(&env_cpu))).unwrap();
    let db_fcae = Db::open_with_engine(
        "/fcae",
        small_options(Arc::clone(&env_fcae)),
        Arc::new(FcaeEngine::new(FcaeConfig::nine_input())),
    )
    .unwrap();

    let kf = KeyFormat::default();
    let mut values = ValueGenerator::new(11, 0.5);
    // Sequential fill + overwrites + deletions.
    for i in 0..6_000u64 {
        let key = kf.format(i);
        let v = values.generate(200).to_vec();
        db_cpu.put(&key, &v).unwrap();
        db_fcae.put(&key, &v).unwrap();
    }
    for i in (0..6_000u64).step_by(7) {
        let key = kf.format(i);
        db_cpu.delete(&key).unwrap();
        db_fcae.delete(&key).unwrap();
    }
    for db in [&db_cpu, &db_fcae] {
        db.flush().unwrap();
        db.wait_for_background_quiescence();
    }

    for i in 0..6_000u64 {
        let key = kf.format(i);
        let a = db_cpu.get(&key).unwrap();
        let b = db_fcae.get(&key).unwrap();
        assert_eq!(a, b, "key {i}");
        if i % 7 == 0 {
            assert_eq!(a, None, "key {i} was deleted");
        } else {
            assert!(a.is_some(), "key {i} must be present");
        }
    }

    // Both stores really compacted.
    assert!(db_cpu.stats().engine_compactions + db_cpu.stats().trivial_moves > 0);
    let f = db_fcae.stats();
    assert!(f.engine_compactions > 0, "{f:?}");
}

/// Scans agree across engines after heavy churn.
#[test]
fn scans_agree_across_engines() {
    let env_cpu = Arc::new(MemEnv::new());
    let env_fcae = Arc::new(MemEnv::new());
    let db_cpu = Db::open("/cpu", small_options(Arc::clone(&env_cpu))).unwrap();
    let db_fcae = Db::open_with_engine(
        "/fcae",
        small_options(Arc::clone(&env_fcae)),
        Arc::new(FcaeEngine::new(FcaeConfig::nine_input())),
    )
    .unwrap();

    let kf = KeyFormat::default();
    for round in 0..4u64 {
        for i in 0..2_000u64 {
            let key = kf.format(i);
            let v = format!("round-{round}-value-{i}");
            db_cpu.put(&key, v.as_bytes()).unwrap();
            db_fcae.put(&key, v.as_bytes()).unwrap();
        }
        db_cpu.flush().unwrap();
        db_fcae.flush().unwrap();
    }
    db_cpu.wait_for_background_quiescence();
    db_fcae.wait_for_background_quiescence();

    let a = db_cpu
        .scan(&kf.format(500), Some(&kf.format(600)), 1000)
        .unwrap();
    let b = db_fcae
        .scan(&kf.format(500), Some(&kf.format(600)), 1000)
        .unwrap();
    assert_eq!(a.len(), 100);
    assert_eq!(a, b);
    for (k, v) in &a {
        assert!(v.starts_with(b"round-3"), "latest round wins: {k:?}");
    }
}

/// The std-filesystem environment works end to end with the FCAE engine.
#[test]
fn fcae_store_on_real_filesystem() {
    let dir = std::env::temp_dir().join(format!("fcae-int-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = Options {
        write_buffer_size: 64 << 10,
        max_file_size: 32 << 10,
        slowdown_sleep: false,
        ..Default::default()
    };
    {
        let db = Db::open_with_engine(
            &dir,
            options.clone(),
            Arc::new(FcaeEngine::new(FcaeConfig::nine_input())),
        )
        .unwrap();
        for i in 0..2_000u64 {
            db.put(format!("{i:016}").as_bytes(), &[7u8; 100]).unwrap();
        }
        db.flush().unwrap();
        db.wait_for_background_quiescence();
    }
    // Reopen (recovery path) with the CPU engine: format compatibility.
    {
        let db = Db::open(&dir, options).unwrap();
        for i in (0..2_000u64).step_by(97) {
            assert_eq!(
                db.get(format!("{i:016}").as_bytes()).unwrap(),
                Some(vec![7u8; 100])
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
