//! Cross-validation of the metadata-level system simulator against the
//! real store: for the same (small) configuration and ingest volume, the
//! *structural* quantities — flush count, write amplification ballpark,
//! compaction count trends — must agree. This is what justifies using the
//! simulator for the paper's 1024 GB sweeps.

use std::sync::Arc;

use fcae_repro::lsm::{Db, Options};
use fcae_repro::simkit::DiskModel;
use fcae_repro::sstable::env::{MemEnv, StorageEnv};
use fcae_repro::sstable::format::CompressionType;
use fcae_repro::systemsim::{SystemConfig, WriteSim};
use fcae_repro::workloads::{KeyFormat, ValueGenerator};

/// Shared scale: 32 MiB of raw data, 1 MiB memtables, 512 KiB tables.
const TARGET_BYTES: u64 = 32 << 20;
const MEMTABLE: u64 = 1 << 20;
const SSTABLE: u64 = 512 << 10;
const VALUE_LEN: usize = 112; // +16 key = 128-byte pairs

fn real_run() -> (u64, f64, u64) {
    let env = Arc::new(MemEnv::new());
    let options = Options {
        env: Arc::clone(&env) as Arc<dyn StorageEnv>,
        write_buffer_size: MEMTABLE as usize,
        max_file_size: SSTABLE,
        level1_max_bytes: 5 * SSTABLE,
        // Disable compression so raw == stored, matching the sim config.
        compression: CompressionType::None,
        filter_bits_per_key: None,
        slowdown_sleep: false,
        ..Default::default()
    };
    let db = Db::open("/db", options).unwrap();
    let kf = KeyFormat::default();
    let mut values = ValueGenerator::new(5, 1.0);
    let pair = (16 + VALUE_LEN) as u64;
    let ops = TARGET_BYTES / pair;
    let mut rng = fcae_repro::simkit::SplitMix64::new(99);
    for _ in 0..ops {
        let key = kf.format(rng.next_below(ops));
        db.put(&key, values.generate(VALUE_LEN)).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_background_quiescence();
    let stats = db.stats();
    let compactions =
        stats.engine_compactions + stats.sw_fallback_compactions + stats.trivial_moves;
    let wa =
        (stats.compaction_bytes_read + stats.compaction_bytes_written) as f64 / TARGET_BYTES as f64;
    (stats.flushes, wa, compactions)
}

fn sim_run() -> (u64, f64, u64) {
    let cfg = SystemConfig {
        value_len: VALUE_LEN,
        compression_ratio: 1.0,
        memtable_bytes: MEMTABLE,
        sstable_bytes: SSTABLE,
        level1_bytes: 5 * SSTABLE,
        // Fast virtual hardware: we compare structure, not wall time.
        disk: DiskModel {
            read_bw: 5e9,
            write_bw: 5e9,
            op_latency: 1e-6,
        },
        ..SystemConfig::default()
    };
    let report = WriteSim::new(cfg, TARGET_BYTES).run();
    let compactions = report.sw_compactions + report.device_compactions + report.trivial_moves;
    (report.flushes, report.write_amplification(), compactions)
}

#[test]
fn simulator_matches_real_store_structure() {
    let (real_flushes, real_wa, real_compactions) = real_run();
    let (sim_flushes, sim_wa, sim_compactions) = sim_run();

    // Flush count is determined by bytes per memtable. The real store's
    // memtable accounting includes per-node overhead (skiplist links +
    // internal-key trailer ≈ 60% on 128-byte pairs), so it rotates
    // earlier than the byte-exact simulator.
    let expected_flushes = TARGET_BYTES / MEMTABLE;
    assert!(
        (expected_flushes..=2 * expected_flushes).contains(&real_flushes),
        "real flushes {real_flushes} vs expected {expected_flushes}"
    );
    assert!(
        sim_flushes.abs_diff(expected_flushes) <= 2,
        "sim flushes {sim_flushes} vs expected {expected_flushes}"
    );

    // Write amplification within 2x of each other (the sim collapses file
    // boundaries; the real store pays seam overlaps).
    assert!(real_wa > 1.0, "real WA {real_wa}");
    assert!(sim_wa > 1.0, "sim WA {sim_wa}");
    let ratio = real_wa / sim_wa;
    assert!(
        (0.4..=2.5).contains(&ratio),
        "write amplification diverges: real {real_wa:.2} vs sim {sim_wa:.2}"
    );

    // Both perform a nontrivial number of compactions.
    assert!(real_compactions >= 3, "{real_compactions}");
    assert!(sim_compactions >= 3, "{sim_compactions}");
}
