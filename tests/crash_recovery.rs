//! Crash-recovery and durability properties: the WAL and MANIFEST must
//! reconstruct exactly the acknowledged state, including across engine
//! switches and repeated open/close cycles.

use std::collections::HashMap;
use std::sync::Arc;

use fcae_repro::fcae::{FcaeConfig, FcaeEngine};
use fcae_repro::lsm::{Db, Options};
use fcae_repro::sstable::env::{MemEnv, StorageEnv};

fn options(env: &Arc<MemEnv>) -> Options {
    Options {
        env: Arc::clone(env) as Arc<dyn StorageEnv>,
        write_buffer_size: 64 << 10,
        max_file_size: 32 << 10,
        slowdown_sleep: false,
        ..Default::default()
    }
}

/// A model map mirroring what the store must contain.
type Model = HashMap<Vec<u8>, Option<Vec<u8>>>;

fn verify(db: &Db, model: &Model) {
    for (k, v) in model {
        let got = db.get(k).unwrap();
        assert_eq!(&got, v, "key {:?}", String::from_utf8_lossy(k));
    }
}

#[test]
fn repeated_reopen_preserves_everything() {
    let env = Arc::new(MemEnv::new());
    let mut model: Model = HashMap::new();
    for round in 0..5u64 {
        let db = Db::open("/db", options(&env)).unwrap();
        verify(&db, &model);
        for i in 0..600u64 {
            let key = format!("key{:06}", (round * 331 + i * 7) % 2000).into_bytes();
            if (i + round) % 11 == 0 {
                db.delete(&key).unwrap();
                model.insert(key, None);
            } else {
                let value = format!("r{round}i{i}").into_bytes();
                db.put(&key, &value).unwrap();
                model.insert(key, Some(value));
            }
        }
        if round % 2 == 0 {
            db.flush().unwrap();
            db.wait_for_background_quiescence();
        }
        // Dropped here: unflushed rounds rely on WAL replay.
    }
    let db = Db::open("/db", options(&env)).unwrap();
    verify(&db, &model);
}

#[test]
fn recovery_after_fcae_compactions() {
    let env = Arc::new(MemEnv::new());
    let mut model: Model = HashMap::new();
    {
        let db = Db::open_with_engine(
            "/db",
            options(&env),
            Arc::new(FcaeEngine::new(FcaeConfig::nine_input())),
        )
        .unwrap();
        for i in 0..5_000u64 {
            let key = format!("{i:016}").into_bytes();
            let value = vec![(i % 251) as u8; 150];
            db.put(&key, &value).unwrap();
            model.insert(key, Some(value));
        }
        db.flush().unwrap();
        db.wait_for_background_quiescence();
        // Rewrite a prefix so later flushes overlap earlier levels and the
        // engine performs real (non-trivial-move) merges. Flushing in
        // small steps keeps L0 narrow, so every compaction fits N=9 and
        // runs on the engine deterministically.
        for round in 0..5u64 {
            for i in (round * 500)..(round * 500 + 500) {
                let key = format!("{i:016}").into_bytes();
                let value = vec![((i + 7) % 251) as u8; 150];
                db.put(&key, &value).unwrap();
                model.insert(key, Some(value));
            }
            db.flush().unwrap();
            db.wait_for_background_quiescence();
        }
        assert!(
            db.stats().engine_compactions > 0,
            "compactions must have run"
        );
    }
    // Recover with the default engine: FCAE-written tables are standard.
    let db = Db::open("/db", options(&env)).unwrap();
    verify(&db, &model);
}

#[test]
fn unflushed_tail_survives_via_wal() {
    let env = Arc::new(MemEnv::new());
    {
        let db = Db::open("/db", options(&env)).unwrap();
        for i in 0..3_000u64 {
            db.put(format!("{i:016}").as_bytes(), b"flushed").unwrap();
        }
        db.flush().unwrap();
        db.wait_for_background_quiescence();
        // Tail writes stay only in the WAL (no flush before drop).
        for i in 0..100u64 {
            db.put(format!("tail{i:04}").as_bytes(), b"wal-only")
                .unwrap();
        }
        db.delete(b"0000000000000000").unwrap();
    }
    let db = Db::open("/db", options(&env)).unwrap();
    assert_eq!(db.get(b"tail0099").unwrap(), Some(b"wal-only".to_vec()));
    assert_eq!(db.get(b"0000000000000000").unwrap(), None);
    assert_eq!(
        db.get(b"0000000000000001").unwrap(),
        Some(b"flushed".to_vec())
    );
}

#[test]
fn sequence_numbers_resume_after_recovery() {
    let env = Arc::new(MemEnv::new());
    {
        let db = Db::open("/db", options(&env)).unwrap();
        db.put(b"k", b"v1").unwrap();
        db.put(b"k", b"v2").unwrap();
    }
    {
        // New writes after recovery must supersede WAL-replayed ones.
        let db = Db::open("/db", options(&env)).unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v2".to_vec()));
        db.put(b"k", b"v3").unwrap();
        assert_eq!(db.get(b"k").unwrap(), Some(b"v3".to_vec()));
    }
    let db = Db::open("/db", options(&env)).unwrap();
    assert_eq!(db.get(b"k").unwrap(), Some(b"v3".to_vec()));
}
