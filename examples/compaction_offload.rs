//! Standalone compaction offload: build SSTables, run one compaction on
//! the CPU engine and one on the simulated FPGA engine, and compare —
//! the paper's Table V / Fig. 9 experiment in miniature.
//!
//! ```sh
//! cargo run --release --example compaction_offload
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fcae_repro::fcae::{CpuCostModel, FcaeConfig, FcaeEngine};
use fcae_repro::lsm::compaction::{
    CompactionEngine, CompactionInput, CompactionRequest, CpuCompactionEngine, OutputFileFactory,
};
use fcae_repro::sstable::comparator::InternalKeyComparator;
use fcae_repro::sstable::env::{MemEnv, StorageEnv, WritableFile};
use fcae_repro::sstable::ikey::{InternalKey, ValueType};
use fcae_repro::sstable::table::{Table, TableReadOptions};
use fcae_repro::sstable::table_builder::{TableBuilder, TableBuilderOptions};
use fcae_repro::workloads::ValueGenerator;

struct Factory {
    env: MemEnv,
    n: AtomicU64,
}

impl OutputFileFactory for Factory {
    fn new_output(&self) -> fcae_repro::lsm::Result<(u64, Box<dyn WritableFile>)> {
        let n = self.n.fetch_add(1, Ordering::SeqCst) + 1;
        let f = self.env.create_writable(Path::new(&format!("/out-{n}")))?;
        Ok((n, f))
    }
}

fn build_input(
    env: &MemEnv,
    name: &str,
    keys: impl Iterator<Item = u64>,
    seq0: u64,
    value_len: usize,
) -> CompactionInput {
    let opts = TableBuilderOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        ..Default::default()
    };
    let file = env.create_writable(Path::new(name)).unwrap();
    let mut b = TableBuilder::new(opts, file);
    let mut values = ValueGenerator::new(7, 0.5);
    for (i, k) in keys.enumerate() {
        let ik = InternalKey::new(
            format!("{k:016}").as_bytes(),
            seq0 + i as u64,
            ValueType::Value,
        );
        b.add(ik.encoded(), values.generate(value_len)).unwrap();
    }
    let size = b.finish().unwrap();
    let ropts = TableReadOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        ..Default::default()
    };
    let file = env.open_random_access(Path::new(name)).unwrap();
    CompactionInput {
        tables: vec![Table::open(file, size, ropts).unwrap()],
    }
}

fn main() {
    let value_len = 512usize;
    let entries_per_input = 20_000u64;

    println!("2-way merge, {entries_per_input} x {value_len}-byte values per input\n");

    let env = MemEnv::new();
    let inputs = || {
        vec![
            build_input(
                &env,
                "/a",
                (0..entries_per_input).map(|i| i * 2),
                100_000,
                value_len,
            ),
            build_input(
                &env,
                "/b",
                (0..entries_per_input).map(|i| i * 2 + 1),
                1,
                value_len,
            ),
        ]
    };
    let request = |inputs| CompactionRequest {
        level: 0,
        inputs,
        smallest_snapshot: 1 << 40,
        bottommost: true,
        builder_options: TableBuilderOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        },
        max_output_file_size: 2 << 20,
    };

    // Native CPU merge (wall-clocked, this machine).
    let factory = Factory {
        env: env.clone(),
        n: AtomicU64::new(0),
    };
    let req = request(inputs());
    let input_bytes: u64 = req.inputs.iter().map(|i| i.bytes()).sum();
    let cpu_out = CpuCompactionEngine.compact(&req, &factory).unwrap();
    let native_speed = input_bytes as f64 / cpu_out.wall_time.as_secs_f64() / 1e6;

    // Modeled 2019-CPU baseline (the paper's Table V CPU column).
    let modeled_cpu = CpuCostModel::new(2).compaction_speed_mb_s(24, value_len);

    // Simulated FPGA engine across the paper's V sweep.
    println!("{:<26}{:>14}", "engine", "speed (MB/s)");
    println!("{:<26}{:>14.1}", "CPU (native, this host)", native_speed);
    println!("{:<26}{:>14.1}", "CPU (paper-calibrated)", modeled_cpu);
    for v in [8u32, 16, 32, 64] {
        let engine = FcaeEngine::new(FcaeConfig::two_input().with_v(v));
        let factory = Factory {
            env: env.clone(),
            n: AtomicU64::new(1000 * u64::from(v)),
        };
        let out = engine.compact(&request(inputs()), &factory).unwrap();
        let r = engine.last_report();
        println!(
            "{:<26}{:>14.1}   ({} outputs, kernel {:.2} ms, accel vs paper-CPU {:.1}x)",
            format!("FCAE N=2 V={v}"),
            r.compaction_speed_mb_s,
            out.outputs.len(),
            r.kernel_time_sec * 1e3,
            r.compaction_speed_mb_s / modeled_cpu,
        );
    }
    println!("\nOutputs are standard LevelDB tables; both engines kept the same entries.");
}
