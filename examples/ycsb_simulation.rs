//! YCSB across both systems (the paper's Fig. 16) at a reduced scale.
//!
//! ```sh
//! cargo run --release --example ycsb_simulation
//! ```

use fcae_repro::fcae::FcaeConfig;
use fcae_repro::systemsim::{EngineKind, SystemConfig, YcsbSim};
use fcae_repro::workloads::YcsbWorkload;

fn main() {
    // Paper §VII-D: 16-byte keys, 1024-byte values; scaled from 20M to 2M
    // records (the simulator is metadata-level, so this only shortens the
    // run, not the behaviour).
    let records = 2_000_000u64;
    let ops = 1_000_000u64;
    let cfg = SystemConfig {
        value_len: 1024,
        ..SystemConfig::default()
    };

    println!("YCSB, {records} records x 1 KiB, {ops} ops per workload\n");
    println!(
        "{:<10}{:>16}{:>16}{:>10}",
        "workload", "LevelDB (op/s)", "FCAE (op/s)", "speedup"
    );
    for w in YcsbWorkload::ALL {
        let base = YcsbSim::new(cfg, w, records, ops, 42).run();
        let fcae = YcsbSim::new(
            cfg.with_engine(EngineKind::Fcae(FcaeConfig::nine_input())),
            w,
            records,
            ops,
            42,
        )
        .run();
        println!(
            "{:<10}{:>16.0}{:>16.0}{:>9.2}x",
            w.name(),
            base.ops_per_sec,
            fcae.ops_per_sec,
            fcae.ops_per_sec / base.ops_per_sec
        );
    }
    println!("\nExpected shape (paper Fig. 16): speedup grows with write ratio;");
    println!("Load is the maximum, read-only C is ~1.0x.");
}
