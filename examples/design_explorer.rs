//! Design-space exploration with the resource and timing models: which
//! (N, W_in, V) configurations fit the KCU1500, and what compaction speed
//! each feasible point reaches — the reasoning behind the paper's
//! Table VII configuration choice.
//!
//! ```sh
//! cargo run --release --example design_explorer
//! ```

use fcae_repro::fcae::{FcaeConfig, PipelineModel, ResourceModel};

fn main() {
    let model = ResourceModel;
    let key_len = 24; // 16-byte user key + 8 mark bytes
    let value_len = 512;

    println!(
        "{:>3} {:>5} {:>4} | {:>6} {:>6} {:>6} | {:>8} {:>12}",
        "N", "W_in", "V", "BRAM%", "FF%", "LUT%", "fits?", "speed MB/s"
    );
    println!("{}", "-".repeat(66));
    for n in [2usize, 4, 9, 16] {
        for w_in in [8u32, 16, 64] {
            for v in [8u32, 16, 64] {
                if v > w_in {
                    continue;
                }
                let cfg = FcaeConfig {
                    n_inputs: n,
                    w_in,
                    v,
                    ..FcaeConfig::two_input()
                };
                let u = model.estimate(&cfg);
                let speed = PipelineModel::new(cfg).steady_state_speed_mb_s(key_len, value_len);
                println!(
                    "{:>3} {:>5} {:>4} | {:>6.1} {:>6.1} {:>6.1} | {:>8} {:>12.1}",
                    n,
                    w_in,
                    v,
                    u.bram_pct,
                    u.ff_pct,
                    u.lut_pct,
                    if u.feasible() { "yes" } else { "NO" },
                    speed
                );
            }
        }
    }

    println!("\nAutomatic selection (paper §VII-C):");
    for n in [2usize, 9] {
        match model.pick_feasible(n, 64) {
            Some(cfg) => {
                let u = model.estimate(&cfg);
                println!(
                    "  N={n}: pick W_in={} V={} (LUT {:.0}%) — the paper picks {}",
                    cfg.w_in,
                    cfg.v,
                    u.lut_pct,
                    if n == 9 { "W_in=8 V=8" } else { "full width" }
                );
            }
            None => println!("  N={n}: nothing fits"),
        }
    }
}
