//! Quickstart: open a store with the simulated FPGA compaction engine,
//! write and read data, and inspect what the engine did.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use fcae_repro::fcae::{FcaeConfig, FcaeEngine};
use fcae_repro::lsm::compaction::CompactionEngine;
use fcae_repro::lsm::{Db, Options};

fn main() {
    let dir = std::env::temp_dir().join("fcae-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // A 9-input engine (the paper's multi-input configuration) with small
    // store limits so this demo triggers real compactions.
    let engine = Arc::new(FcaeEngine::new(FcaeConfig::nine_input()));
    let engine_dyn: Arc<dyn CompactionEngine> = Arc::clone(&engine) as _;
    let options = Options {
        write_buffer_size: 256 << 10,
        max_file_size: 128 << 10,
        level1_max_bytes: 512 << 10,
        ..Default::default()
    };
    let db = Db::open_with_engine(&dir, options, engine_dyn).expect("open database");

    println!("engine: {}", db.engine_name());

    // Write 20k entries (16-byte keys / 128-byte values, the paper's
    // Table IV defaults), with some overwrites and deletes.
    let value = vec![0xa5u8; 128];
    for i in 0..20_000u64 {
        let key = format!("{:016}", i % 8_000);
        db.put(key.as_bytes(), &value).expect("put");
    }
    for i in (0..8_000u64).step_by(10) {
        db.delete(format!("{i:016}").as_bytes()).expect("delete");
    }
    db.flush().expect("flush");
    db.wait_for_background_quiescence();

    // Read back.
    let present = db.get(format!("{:016}", 1).as_bytes()).expect("get");
    let deleted = db.get(format!("{:016}", 0).as_bytes()).expect("get");
    println!(
        "key 1 -> {} bytes, key 0 (deleted) -> {:?}",
        present.map_or(0, |v| v.len()),
        deleted
    );

    // Range scan.
    let rows = db
        .scan(
            format!("{:016}", 100).as_bytes(),
            Some(format!("{:016}", 120).as_bytes()),
            100,
        )
        .expect("scan");
    println!("scan [100, 120): {} live keys", rows.len());

    // What did the store and the device do?
    let stats = db.stats();
    println!("\n-- store statistics --");
    println!("flushes:                {}", stats.flushes);
    println!("FCAE compactions:       {}", stats.engine_compactions);
    println!("software fallbacks:     {}", stats.sw_fallback_compactions);
    println!("trivial moves:          {}", stats.trivial_moves);
    println!("compaction bytes read:  {}", stats.compaction_bytes_read);
    println!("compaction bytes write: {}", stats.compaction_bytes_written);
    println!("modeled kernel time:    {:?}", stats.modeled_kernel_time);
    println!("modeled PCIe time:      {:?}", stats.modeled_transfer_time);
    println!("levels: {:?}", db.level_file_counts());

    let report = engine.last_report();
    println!("\n-- last FCAE kernel --");
    println!("input bytes:       {}", report.input_bytes);
    println!("kernel cycles:     {:.0}", report.cycles);
    println!(
        "compaction speed:  {:.1} MB/s",
        report.compaction_speed_mb_s
    );
    println!("pairs compared:    {}", report.pairs_compared);
    println!("pairs dropped:     {}", report.pairs_dropped);

    let _ = std::fs::remove_dir_all(&dir);
}
