//! Multi-engine compaction offload: open a store whose compactions are
//! scheduled across every FCAE instance that fits the card, with CPU
//! fallback and injected device faults.
//!
//! ```sh
//! cargo run --release --example multi_engine
//! ```

use std::sync::Arc;

use fcae_repro::fcae::{FcaeConfig, ResourceModel};
use fcae_repro::lsm::compaction::CompactionEngine;
use fcae_repro::lsm::{Db, Options};
use fcae_repro::obs::Obs;
use fcae_repro::offload::{OffloadConfig, OffloadService};
use fcae_repro::sstable::env::{MemEnv, StorageEnv};

fn main() {
    // The 2-input full-width engine uses little of the KCU1500: the
    // resource model says two instances fit alongside the shared shell.
    let device = FcaeConfig::two_input();
    let fit = ResourceModel.max_instances(&device);
    println!(
        "device: N={} V={} W_in={} -> {fit} instance(s) fit the card",
        device.n_inputs, device.v, device.w_in
    );

    // One observability bundle shared by the store and the scheduler:
    // latency histograms, per-level compaction counters, dispatch traces.
    let bundle = Obs::wall();
    let service = Arc::new(
        OffloadService::new(device, OffloadConfig::default()).with_obs(Arc::clone(&bundle)),
    );
    println!("service: {} engine slot(s)\n", service.engine_slots());

    // Fault the device every 10th dispatch to show the CPU retry path.
    service.faults().fail_every(10);

    // A small store with one background worker per engine slot, plus one
    // for the software-fallback path.
    let options = Options {
        env: Arc::new(MemEnv::new()) as Arc<dyn StorageEnv>,
        slowdown_sleep: false,
        write_buffer_size: 64 << 10,
        max_file_size: 16 << 10,
        level1_max_bytes: 32 << 10,
        background_threads: service.engine_slots() + 1,
        obs: Some(Arc::clone(&bundle)),
        ..Default::default()
    };
    let engine = Arc::clone(&service) as Arc<dyn CompactionEngine>;
    let db = Db::open_with_engine("/db", options, engine).unwrap();

    for round in 0..16u32 {
        for i in 0..5000u32 {
            let key = format!("key{:06}", (i.wrapping_mul(7919) + round) % 30000);
            let value = format!("value-{round}-{i:0>96}");
            db.put(key.as_bytes(), value.as_bytes()).unwrap();
        }
    }
    db.flush().unwrap();

    let stats = db.stats();
    let m = service.metrics();
    println!(
        "store:    {} flushes, {} engine compactions, {} trivial moves",
        stats.flushes, stats.engine_compactions, stats.trivial_moves
    );
    println!(
        "          peak concurrent compactions: {}",
        stats.max_concurrent_compactions
    );
    println!(
        "          backpressure: {} slowdowns, {} stalls",
        stats.backpressure_slowdowns, stats.backpressure_stalls
    );
    println!(
        "scheduler: {} jobs ({} on FPGA, {} on CPU)",
        m.jobs_submitted,
        m.fpga_jobs,
        m.cpu_jobs()
    );
    println!(
        "           CPU fallbacks: {} oversized, {} over-budget, {} over-timeout",
        m.cpu_fallback_oversized, m.cpu_fallback_budget, m.cpu_fallback_timeout
    );
    println!(
        "           {} device faults, all retried on CPU: {}",
        m.device_faults,
        m.device_faults == m.cpu_retries_after_fault
    );
    println!(
        "           peak jobs in flight: {} ({} on FPGA slots)",
        m.max_jobs_in_flight, m.max_fpga_in_flight
    );
    println!(
        "           busy: fpga {:.1?}, cpu {:.1?}, queue wait {:.1?}",
        m.fpga_busy_time, m.cpu_busy_time, m.total_queue_wait
    );

    assert_eq!(m.device_faults, m.cpu_retries_after_fault);

    println!("\n--- per-level compaction stats (db.property(\"lsm.stats\")) ---");
    print!("{}", db.property("lsm.stats").unwrap());
    println!("\n--- shared metric registry (store + scheduler + device cycles) ---");
    print!("{}", bundle.registry.export_text());
    println!("\n--- last trace events ---");
    let text = bundle.trace.export_text();
    for line in text.lines().rev().take(8).collect::<Vec<_>>().iter().rev() {
        println!("{line}");
    }

    println!("\nall compactions accounted for; store state verified by `cargo test -p offload`");
}
