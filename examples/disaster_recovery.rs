//! Disaster recovery walk-through: fill a store with the FCAE engine,
//! destroy its MANIFEST and CURRENT files, repair, and verify every key.
//!
//! ```sh
//! cargo run --release --example disaster_recovery
//! ```

use std::sync::Arc;

use fcae_repro::fcae::{FcaeConfig, FcaeEngine};
use fcae_repro::lsm::filename::{parse_file_name, FileType};
use fcae_repro::lsm::{repair_db, Db, Options};

fn main() {
    let dir = std::env::temp_dir().join("fcae-disaster-demo");
    let _ = std::fs::remove_dir_all(&dir);
    let options = Options {
        write_buffer_size: 256 << 10,
        max_file_size: 128 << 10,
        slowdown_sleep: false,
        ..Default::default()
    };

    // 1. Fill with the FCAE engine, leave a WAL tail unflushed.
    println!("1. filling store (FCAE engine)...");
    {
        let db = Db::open_with_engine(
            &dir,
            options.clone(),
            Arc::new(FcaeEngine::new(FcaeConfig::nine_input())),
        )
        .expect("open");
        for i in 0..10_000u64 {
            db.put(
                format!("{i:08}").as_bytes(),
                format!("value-{i}").as_bytes(),
            )
            .expect("put");
        }
        db.delete(b"00000123").expect("delete");
        db.flush().expect("flush");
        db.wait_for_background_quiescence();
        db.put(b"wal-tail", b"unflushed").expect("put");
        let s = db.stats();
        println!(
            "   {} flushes, {} FCAE compactions, levels {:?}",
            s.flushes,
            s.engine_compactions,
            db.level_file_counts()
        );
    }

    // 2. Disaster: metadata destroyed.
    println!("2. destroying MANIFEST and CURRENT...");
    let mut destroyed = 0;
    for entry in std::fs::read_dir(&dir).expect("read dir") {
        let entry = entry.expect("entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if matches!(
            parse_file_name(&name),
            Some(FileType::Manifest(_)) | Some(FileType::Current)
        ) {
            std::fs::remove_file(entry.path()).expect("remove");
            destroyed += 1;
        }
    }
    println!("   removed {destroyed} metadata files");

    // 3. Repair.
    println!("3. repairing...");
    let report = repair_db(&dir, &options).expect("repair");
    println!(
        "   {} tables recovered, {} WALs salvaged ({} entries), last seq {}",
        report.tables_recovered,
        report.logs_salvaged,
        report.log_entries_salvaged,
        report.max_sequence
    );

    // 4. Verify.
    println!("4. verifying...");
    let db = Db::open(&dir, options).expect("reopen");
    let mut checked = 0u64;
    for i in 0..10_000u64 {
        let got = db.get(format!("{i:08}").as_bytes()).expect("get");
        if i == 123 {
            assert_eq!(got, None, "tombstone must survive repair");
        } else {
            assert_eq!(got, Some(format!("value-{i}").into_bytes()), "key {i}");
        }
        checked += 1;
    }
    assert_eq!(
        db.get(b"wal-tail").expect("get"),
        Some(b"unflushed".to_vec())
    );
    println!("   all {checked} keys verified, WAL tail intact, tombstone intact.");

    let _ = std::fs::remove_dir_all(&dir);
}
