//! Offline stand-in for the `bytes` crate.
//!
//! The workspace only needs an immutable, cheaply-clonable byte buffer
//! (`Bytes`), so that is all this shim provides: an `Arc<[u8]>` with the
//! same constructors and `Deref`-to-slice ergonomics as the real crate.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a new `Bytes` holding a copy of the given subrange.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.data.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&b[..], &[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b.slice(1..3)[..], &[2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
