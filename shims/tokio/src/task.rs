//! `task::spawn` + `JoinHandle`, backed by one OS thread per task.

use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};

struct JoinState<T> {
    result: Option<std::thread::Result<T>>,
    waker: Option<Waker>,
}

/// Awaitable handle to a spawned task (mirror of `tokio::task::JoinHandle`).
///
/// Dropping the handle detaches the task: the thread keeps running to
/// completion (same as tokio).
pub struct JoinHandle<T> {
    state: Arc<Mutex<JoinState<T>>>,
}

/// Error returned when a joined task panicked.
pub struct JoinError {
    payload: Box<dyn std::any::Any + Send + 'static>,
}

impl JoinError {
    /// True when the task ended by panicking (always true in this shim:
    /// cancellation does not exist here).
    pub fn is_panic(&self) -> bool {
        true
    }

    /// The panic payload, for re-raising with `std::panic::resume_unwind`.
    pub fn into_panic(self) -> Box<dyn std::any::Any + Send + 'static> {
        self.payload
    }
}

impl fmt::Debug for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("JoinError::Panic")
    }
}

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("task panicked")
    }
}

impl std::error::Error for JoinError {}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut st = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(result) = st.result.take() {
            Poll::Ready(result.map_err(|payload| JoinError { payload }))
        } else {
            st.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Spawns `future` on a fresh OS thread, driving it with the shim's
/// thread-parker executor. Returns a handle that can be `.await`ed for
/// the output (or the task's panic, as `JoinError`).
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    let state = Arc::new(Mutex::new(JoinState {
        result: None,
        waker: None,
    }));
    let thread_state = Arc::clone(&state);
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::runtime::block_on(future)
        }));
        let waker = {
            let mut st = match thread_state.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            st.result = Some(result);
            st.waker.take()
        };
        if let Some(w) = waker {
            w.wake();
        }
    });
    JoinHandle { state }
}

/// Runs a blocking closure on its own thread (mirror of
/// `tokio::task::spawn_blocking`). In this shim every task already has
/// its own thread, so this is `spawn` around an `async` wrapper.
pub fn spawn_blocking<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    spawn(async move { f() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runtime;

    #[test]
    fn spawn_and_join() {
        let rt = Runtime::new().unwrap();
        let out = rt.block_on(async {
            let h = spawn(async { 2 + 2 });
            h.await.unwrap()
        });
        assert_eq!(out, 4);
    }

    #[test]
    fn join_surfaces_panic() {
        let rt = Runtime::new().unwrap();
        let err = rt.block_on(async {
            let h = spawn(async { panic!("boom") });
            h.await.unwrap_err()
        });
        assert!(err.is_panic());
    }

    #[test]
    fn spawn_blocking_runs() {
        let rt = Runtime::new().unwrap();
        let out = rt.block_on(async { spawn_blocking(|| 9u32).await.unwrap() });
        assert_eq!(out, 9);
    }

    #[test]
    fn detached_task_completes() {
        use std::sync::atomic::{AtomicBool, Ordering};
        static DONE: AtomicBool = AtomicBool::new(false);
        drop(spawn(async { DONE.store(true, Ordering::SeqCst) }));
        for _ in 0..500 {
            if DONE.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        panic!("detached task never ran");
    }
}
