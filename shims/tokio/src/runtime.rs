//! Minimal runtime: `Builder` + `Runtime::block_on`.
//!
//! `block_on` drives a future on the calling thread with a thread-parker
//! waker. Spawned tasks ([`crate::task::spawn`]) run on their own OS
//! threads and do not need the runtime to make progress, so `Runtime`
//! carries no worker pool — it exists for API compatibility with
//! `tokio::runtime::Builder::new_multi_thread()...build()`.

use std::future::Future;
use std::pin::pin;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Mirror of `tokio::runtime::Builder` (the subset the workspace uses).
#[derive(Debug, Default)]
pub struct Builder {
    _private: (),
}

impl Builder {
    /// Multi-thread flavour — the only flavour this shim models (every
    /// spawned task gets its own thread regardless).
    pub fn new_multi_thread() -> Builder {
        Builder::default()
    }

    /// Accepted for compatibility; the shim always enables net + io.
    pub fn enable_all(&mut self) -> &mut Self {
        self
    }

    /// Accepted for compatibility; ignored (tasks are thread-per-task).
    pub fn worker_threads(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Builds the runtime. Infallible here; returns `io::Result` to
    /// match tokio's signature.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Ok(Runtime { _private: () })
    }
}

/// Handle used to run futures to completion.
#[derive(Debug)]
pub struct Runtime {
    _private: (),
}

impl Runtime {
    /// Creates a runtime with default settings.
    pub fn new() -> std::io::Result<Runtime> {
        Builder::new_multi_thread().build()
    }

    /// Runs `future` to completion on the current thread, parking
    /// between polls until woken.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        block_on(future)
    }
}

struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Free-function executor used by both [`Runtime::block_on`] and
/// spawned task threads.
pub(crate) fn block_on<F: Future>(future: F) -> F::Output {
    let mut future = pin!(future);
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            // Park until a waker fires. Spurious unparks are fine: we
            // simply poll again and the future returns Pending.
            Poll::Pending => std::thread::park(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_ready_future() {
        let rt = Runtime::new().unwrap();
        assert_eq!(rt.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn block_on_pending_then_ready() {
        // A future that returns Pending once (waking itself) then Ready.
        struct YieldOnce(bool);
        impl Future for YieldOnce {
            type Output = u32;
            fn poll(mut self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
                if self.0 {
                    Poll::Ready(7)
                } else {
                    self.0 = true;
                    cx.waker().wake_by_ref();
                    Poll::Pending
                }
            }
        }
        assert_eq!(block_on(YieldOnce(false)), 7);
    }
}
