//! TCP types mirroring `tokio::net`, backed by `std::net`.
//!
//! The async methods complete their blocking syscall on first poll; see
//! the crate docs for the execution model.

use std::io::Result;
use std::net::SocketAddr;
use std::time::Duration;

/// Async-surface wrapper over [`std::net::TcpListener`].
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds to `addr` (e.g. `"127.0.0.1:0"`).
    pub async fn bind<A: std::net::ToSocketAddrs>(addr: A) -> Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        Ok(TcpListener { inner })
    }

    /// Accepts one connection (blocks the polling thread until a peer
    /// connects).
    pub async fn accept(&self) -> Result<(TcpStream, SocketAddr)> {
        let (stream, addr) = self.inner.accept()?;
        Ok((TcpStream { inner: stream }, addr))
    }

    /// The bound local address (used to recover the OS-chosen port
    /// after binding port 0).
    pub fn local_addr(&self) -> Result<SocketAddr> {
        self.inner.local_addr()
    }
}

/// Async-surface wrapper over [`std::net::TcpStream`].
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connects to `addr`.
    pub async fn connect<A: std::net::ToSocketAddrs>(addr: A) -> Result<TcpStream> {
        let inner = std::net::TcpStream::connect(addr)?;
        Ok(TcpStream { inner })
    }

    /// Disables Nagle's algorithm (latency-sensitive request/response).
    pub fn set_nodelay(&self, on: bool) -> Result<()> {
        self.inner.set_nodelay(on)
    }

    /// Socket-level read timeout — the shim's substitute for
    /// `tokio::time::timeout` around reads. `None` blocks forever.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<()> {
        self.inner.set_read_timeout(dur)
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// Splits into independently-owned read and write halves (via
    /// `try_clone`; both halves reference the same socket).
    pub fn into_split(self) -> (OwnedReadHalf, OwnedWriteHalf) {
        let write = self.inner.try_clone().map_or_else(
            |_| OwnedWriteHalf {
                // Cloning an open socket fd only fails under fd
                // exhaustion; degrade to a shut-down duplicate so the
                // caller sees I/O errors rather than a panic.
                inner: {
                    let _ = self.inner.shutdown(std::net::Shutdown::Both);
                    self.inner.try_clone().unwrap_or_else(|e| {
                        // PANIC-OK: unreachable without fd exhaustion;
                        // the process is already failing.
                        panic!("socket clone failed twice: {e}")
                    })
                },
            },
            |s| OwnedWriteHalf { inner: s },
        );
        (OwnedReadHalf { inner: self.inner }, write)
    }

    pub(crate) fn read_ref(&self) -> &std::net::TcpStream {
        &self.inner
    }

    pub(crate) fn write_ref(&self) -> &std::net::TcpStream {
        &self.inner
    }
}

/// Read half of a split [`TcpStream`].
#[derive(Debug)]
pub struct OwnedReadHalf {
    inner: std::net::TcpStream,
}

/// Write half of a split [`TcpStream`].
#[derive(Debug)]
pub struct OwnedWriteHalf {
    inner: std::net::TcpStream,
}

impl OwnedReadHalf {
    pub(crate) fn read_ref(&self) -> &std::net::TcpStream {
        &self.inner
    }
}

impl OwnedWriteHalf {
    pub(crate) fn write_ref(&self) -> &std::net::TcpStream {
        &self.inner
    }

    /// Shuts down the write direction, signalling EOF to the peer.
    pub fn shutdown_write(&self) -> Result<()> {
        self.inner.shutdown(std::net::Shutdown::Write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{AsyncReadExt, AsyncWriteExt};
    use crate::runtime::Runtime;

    #[test]
    fn listener_stream_echo() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::task::spawn(async move {
                let (mut s, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 5];
                s.read_exact(&mut buf).await.unwrap();
                s.write_all(&buf).await.unwrap();
            });
            let mut c = TcpStream::connect(addr).await.unwrap();
            c.write_all(b"hello").await.unwrap();
            let mut back = [0u8; 5];
            c.read_exact(&mut back).await.unwrap();
            assert_eq!(&back, b"hello");
            server.await.unwrap();
        });
    }

    #[test]
    fn split_halves_work() {
        let rt = Runtime::new().unwrap();
        rt.block_on(async {
            let listener = TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::task::spawn(async move {
                let (s, _) = listener.accept().await.unwrap();
                let (mut r, mut w) = s.into_split();
                let mut buf = [0u8; 3];
                r.read_exact(&mut buf).await.unwrap();
                w.write_all(&buf).await.unwrap();
            });
            let c = TcpStream::connect(addr).await.unwrap();
            let (mut cr, mut cw) = c.into_split();
            cw.write_all(b"abc").await.unwrap();
            let mut back = [0u8; 3];
            cr.read_exact(&mut back).await.unwrap();
            assert_eq!(&back, b"abc");
            server.await.unwrap();
        });
    }
}
