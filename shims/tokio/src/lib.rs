//! Offline stand-in for `tokio`.
//!
//! Implements the API subset the workspace uses (the build environment
//! has no registry access): a [`runtime::Runtime`] with `block_on`,
//! [`task::spawn`] returning an awaitable [`task::JoinHandle`], blocking
//! TCP types under [`net`], and the `AsyncReadExt`/`AsyncWriteExt`
//! traits under [`io`].
//!
//! The execution model is deliberately simple — and honest about it:
//! every spawned task runs on its own OS thread, and the I/O futures
//! perform *blocking* syscalls inside `poll`, completing on first poll.
//! Concurrency therefore comes from threads (one per task), not from a
//! reactor multiplexing an event loop. For the serving layer's target
//! scale (tens to a few hundred connections) a thread per connection is
//! well within OS limits, and the async surface means the server code is
//! source-compatible with the real tokio when the workspace gains
//! registry access.
//!
//! What this shim does *not* provide: timers (`tokio::time`), task
//! abortion, cooperative scheduling, or `select!`. Code that needs a
//! timeout around I/O uses the socket-level read/write timeouts exposed
//! by [`net::TcpStream`].

pub mod io;
pub mod net;
pub mod runtime;
pub mod task;

pub use task::spawn;
