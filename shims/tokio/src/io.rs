//! `AsyncReadExt` / `AsyncWriteExt` trait subset.
//!
//! Unlike real tokio these are inherent-style extension traits with
//! `async fn` methods implemented directly for the net types (no
//! `AsyncRead`/`AsyncWrite` poll traits underneath) — callers import
//! them exactly as they would tokio's and the call sites read the same.

#![allow(async_fn_in_trait)]

use std::io::{Read, Result, Write};

use crate::net::{OwnedReadHalf, OwnedWriteHalf, TcpStream};

/// Read-side extension methods (mirror of `tokio::io::AsyncReadExt`).
pub trait AsyncReadExt {
    /// Reads some bytes into `buf`, returning how many were read
    /// (0 = EOF).
    async fn read(&mut self, buf: &mut [u8]) -> Result<usize>;

    /// Reads exactly `buf.len()` bytes or fails with
    /// `ErrorKind::UnexpectedEof`.
    async fn read_exact(&mut self, buf: &mut [u8]) -> Result<()>;
}

/// Write-side extension methods (mirror of `tokio::io::AsyncWriteExt`).
pub trait AsyncWriteExt {
    /// Writes the entire buffer.
    async fn write_all(&mut self, buf: &[u8]) -> Result<()>;

    /// Flushes buffered data (no-op for unbuffered sockets; kept for
    /// call-site compatibility).
    async fn flush(&mut self) -> Result<()>;

    /// Shuts down the write side, signalling EOF to the peer.
    async fn shutdown(&mut self) -> Result<()>;
}

impl AsyncReadExt for TcpStream {
    async fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.read_ref().read(buf)
    }

    async fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        self.read_ref().read_exact(buf)
    }
}

impl AsyncWriteExt for TcpStream {
    async fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.write_ref().write_all(buf)
    }

    async fn flush(&mut self) -> Result<()> {
        self.write_ref().flush()
    }

    async fn shutdown(&mut self) -> Result<()> {
        self.write_ref().shutdown(std::net::Shutdown::Write)
    }
}

impl AsyncReadExt for OwnedReadHalf {
    async fn read(&mut self, buf: &mut [u8]) -> Result<usize> {
        self.read_ref().read(buf)
    }

    async fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        self.read_ref().read_exact(buf)
    }
}

impl AsyncWriteExt for OwnedWriteHalf {
    async fn write_all(&mut self, buf: &[u8]) -> Result<()> {
        self.write_ref().write_all(buf)
    }

    async fn flush(&mut self) -> Result<()> {
        self.write_ref().flush()
    }

    async fn shutdown(&mut self) -> Result<()> {
        self.shutdown_write()
    }
}
