//! `loom::sync` — std-backed primitives wrapped so that every operation
//! crosses a [`crate::sched_point`]. API mirrors real loom (which in turn
//! mirrors `std::sync`), so models compile unchanged against either.

use std::sync::PoisonError;
use std::time::Duration;

pub use std::sync::Arc;

pub mod atomic;
pub mod mpsc;

/// Mutual exclusion with scheduling points on acquire/release edges.
/// Poisoning is swallowed (like parking_lot / real-loom behavior): a
/// panicking model iteration already fails the test on its own.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex. (Not `const fn`: real loom's isn't either.)
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex.
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, PoisonError<MutexGuard<'_, T>>> {
        crate::sched_point();
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        crate::sched_point();
        Ok(MutexGuard { guard })
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        crate::sched_point();
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: e.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of a timed wait, mirroring `std::sync::WaitTimeoutResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Releases the guard's mutex and waits; reacquires before returning.
    pub fn wait<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>> {
        crate::sched_point();
        let g = self
            .inner
            .wait(guard.guard)
            .unwrap_or_else(PoisonError::into_inner);
        crate::sched_point();
        Ok(MutexGuard { guard: g })
    }

    /// Waits with a timeout.
    #[allow(clippy::type_complexity)]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> Result<
        (MutexGuard<'a, T>, WaitTimeoutResult),
        PoisonError<(MutexGuard<'a, T>, WaitTimeoutResult)>,
    > {
        crate::sched_point();
        let (g, r) = match self.inner.wait_timeout(guard.guard, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        crate::sched_point();
        Ok((MutexGuard { guard: g }, WaitTimeoutResult(r.timed_out())))
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        crate::sched_point();
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        crate::sched_point();
        self.inner.notify_all();
    }
}
