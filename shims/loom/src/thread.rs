//! `loom::thread` — std threads whose spawn/join edges are scheduling
//! points, and whose bodies inherit the model iteration's seed.

pub use std::thread::JoinHandle;

/// Spawns a thread; the child's first scheduling point re-seeds from the
/// current model iteration (see `RNG` lazy init in the crate root).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    crate::sched_point();
    std::thread::spawn(move || {
        crate::sched_point();
        f()
    })
}

/// Yields the current thread (also a scheduling point).
pub fn yield_now() {
    crate::sched_point();
    std::thread::yield_now();
}
