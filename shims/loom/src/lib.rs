//! Offline stand-in for [`loom`](https://docs.rs/loom), matching the API
//! subset this workspace's `cfg(loom)` models use.
//!
//! The build environment has no registry access, so — like the other
//! `shims/*` crates — this crate keeps the *interface* of the real
//! dependency while providing an offline implementation. Real loom
//! exhaustively enumerates every interleaving of a bounded concurrent
//! model under C11 semantics; this shim approximates that by running the
//! model body many times (default 100, `LOOM_SHIM_ITERS` overrides) with
//! a per-iteration seeded schedule perturber: every synchronization
//! operation passes through a [`sched_point`] that pseudo-randomly yields
//! or briefly parks the thread, steering the OS scheduler through many
//! distinct interleavings across iterations.
//!
//! The trade-offs are explicit:
//!
//! * **Soundness**: a test failure here is a real failure (the shim adds
//!   only legal schedules).
//! * **Completeness**: unlike real loom, passing does not *prove* every
//!   interleaving safe — it is a strong stress test, not a proof. CI
//!   keeps the suites in the same `RUSTFLAGS="--cfg loom"` shape real
//!   loom requires, so swapping this shim for the real crate is a
//!   one-line Cargo change, no test edits.
//! * **Determinism**: per-iteration perturbation is seeded (iteration
//!   index), but the OS scheduler still contributes nondeterminism; a
//!   reproduced failure should be minimized under real loom.
//!
//! Deadlocks surface as the test binary hanging; the workspace's loom CI
//! job wraps suites in `timeout(1)` for that reason.

pub mod sync;
pub mod thread;

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of schedule-perturbation iterations `model` runs.
pub fn iterations() -> usize {
    std::env::var("LOOM_SHIM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Seed of the currently running model iteration (0 outside `model`).
static ITERATION_SEED: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread xorshift state, lazily mixed from the iteration seed
    /// and a per-thread nonce the first time the thread hits a
    /// scheduling point.
    static RNG: Cell<u64> = const { Cell::new(0) };
}

static THREAD_NONCE: AtomicU64 = AtomicU64::new(1);

fn next_rand() -> u64 {
    RNG.with(|rng| {
        let mut s = rng.get();
        if s == 0 {
            // SplitMix-style seeding: iteration seed + unique thread nonce.
            let nonce = THREAD_NONCE.fetch_add(1, Ordering::Relaxed);
            s = ITERATION_SEED
                .load(Ordering::Relaxed)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(nonce.wrapping_mul(0xbf58_476d_1ce4_e5b9))
                | 1;
        }
        // xorshift64*
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        rng.set(s);
        s.wrapping_mul(0x2545_f491_4f6c_dd1d)
    })
}

/// A scheduling point: called by every shimmed synchronization operation.
/// Pseudo-randomly yields (1 in 4) or parks the thread for a few
/// microseconds (1 in 64) so iterations explore different interleavings.
pub fn sched_point() {
    let r = next_rand();
    if r & 0x3f == 0 {
        std::thread::sleep(std::time::Duration::from_micros(50));
    } else if r & 0x3 == 0 {
        std::thread::yield_now();
    }
}

/// Runs `f` once per iteration under a fresh perturbation seed. Mirrors
/// `loom::model`; panics (test failures) propagate from the failing
/// iteration with its seed in the panic message's context.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for iter in 0..iterations() {
        ITERATION_SEED.store(iter as u64 + 1, Ordering::Relaxed);
        RNG.with(|rng| rng.set(0));
        f();
    }
    ITERATION_SEED.store(0, Ordering::Relaxed);
}

/// Mirrors `loom::stop_exploring`: a no-op for the shim.
pub fn stop_exploring() {}
