//! Bounded channels with scheduling points on the send/recv edges.
//!
//! Real loom has no `mpsc` module — models there hand-build channels from
//! loom primitives. This shim extension instead mirrors the exact
//! `std::sync::mpsc` subset `lsm::sync_shim` re-exports, so the pipeline
//! code is byte-identical under `cfg(loom)` and `cfg(not(loom))` and the
//! models exercise the very channel protocol production runs.

pub use std::sync::mpsc::{RecvError, SendError, TryRecvError, TrySendError};

/// Creates a bounded channel of depth `bound`.
pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(bound);
    (SyncSender { inner: tx }, Receiver { inner: rx })
}

/// Sending half of a bounded channel.
pub struct SyncSender<T> {
    inner: std::sync::mpsc::SyncSender<T>,
}

impl<T> Clone for SyncSender<T> {
    fn clone(&self) -> Self {
        SyncSender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> SyncSender<T> {
    /// Blocking send; fails once the receiver is dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        crate::sched_point();
        let r = self.inner.send(value);
        crate::sched_point();
        r
    }

    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        crate::sched_point();
        self.inner.try_send(value)
    }
}

/// Receiving half of a bounded channel.
pub struct Receiver<T> {
    inner: std::sync::mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Blocking receive; fails once every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        crate::sched_point();
        let r = self.inner.recv();
        crate::sched_point();
        r
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        crate::sched_point();
        self.inner.try_recv()
    }

    /// Blocking iterator over received values, ending at disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}
