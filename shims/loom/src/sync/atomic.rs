//! `loom::sync::atomic` — std atomics with scheduling points on every
//! access. Only the operations the workspace's models use are mirrored.

pub use std::sync::atomic::Ordering;

macro_rules! atomic {
    ($name:ident, $std:path, $ty:ty) => {
        /// Scheduling-point-instrumented atomic.
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            /// Creates a new atomic. (Not `const fn`: real loom's isn't.)
            pub fn new(v: $ty) -> Self {
                Self {
                    inner: <$std>::new(v),
                }
            }

            /// Atomic load.
            pub fn load(&self, order: Ordering) -> $ty {
                crate::sched_point();
                self.inner.load(order)
            }

            /// Atomic store.
            pub fn store(&self, v: $ty, order: Ordering) {
                crate::sched_point();
                self.inner.store(v, order)
            }

            /// Atomic swap.
            pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                crate::sched_point();
                self.inner.swap(v, order)
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$ty, $ty> {
                crate::sched_point();
                self.inner.compare_exchange(current, new, success, failure)
            }
        }
    };
}

macro_rules! atomic_int {
    ($name:ident, $std:path, $ty:ty) => {
        atomic!($name, $std, $ty);

        impl $name {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                crate::sched_point();
                self.inner.fetch_add(v, order)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $ty, order: Ordering) -> $ty {
                crate::sched_point();
                self.inner.fetch_sub(v, order)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, v: $ty, order: Ordering) -> $ty {
                crate::sched_point();
                self.inner.fetch_max(v, order)
            }
        }
    };
}

atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
