//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses as a
//! deterministic randomized tester: strategies generate values from a
//! seeded SplitMix64 stream (seeded per test name, overridable with
//! `PROPTEST_SEED`), the `proptest!` macro runs `ProptestConfig::cases`
//! cases, and a failing case reports its index, seed, and generated
//! inputs before propagating the panic. There is no shrinking: rerun
//! with the printed seed to reproduce a failure exactly.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob import every proptest test starts with.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a `proptest!` case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::weighted_union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body is
/// run for the configured number of generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            $crate::test_runner::run_cases(&__config, __name, |__rng| {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __rng);
                )*
                let __inputs = format!(
                    concat!("" $(, stringify!($arg), " = {:?}\n")*),
                    $(&$arg),*
                );
                (__inputs, move || { $body })
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
