//! Sampling helpers: `Index` (a collection-size-agnostic index) and
//! `select` (uniform choice from a fixed set).

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An index into a collection of not-yet-known size: resolve it with
/// [`Index::index`] once the length is known.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: u64,
}

impl Index {
    /// Resolves the index against a collection of `len` elements.
    /// Panics if `len` is zero.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on an empty collection");
        (self.raw % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index {
            raw: rng.next_u64(),
        }
    }
}

/// Strategy choosing uniformly from `options`.
pub struct Select<T> {
    options: Vec<T>,
}

/// Uniform choice from a non-empty set of options.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty set");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.usize_in(0, self.options.len())].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = TestRng::new(9);
        let s = any::<Index>();
        for len in [1usize, 2, 7, 1000] {
            for _ in 0..50 {
                assert!(s.generate(&mut rng).index(len) < len);
            }
        }
    }

    #[test]
    fn select_covers_options() {
        let mut rng = TestRng::new(10);
        let s = select(vec![1, 2, 3]);
        let seen: std::collections::HashSet<i32> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert_eq!(seen.len(), 3);
    }
}
