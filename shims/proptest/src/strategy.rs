//! The [`Strategy`] trait and the combinators the workspace uses:
//! integer ranges, tuples, `Just`, `prop_map`, and weighted unions.

use crate::test_runner::TestRng;

/// Generates values of `Self::Value` from the deterministic RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map {
            source: self,
            map: f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + off) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = (rng.next_u64() as i128).rem_euclid(span);
                ((*self.start() as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).generate(rng) as f32
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// Strategy behind `prop_oneof!`: picks an entry with probability
/// proportional to its weight.
pub struct WeightedUnion<T> {
    entries: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

/// Builds a [`WeightedUnion`] (used by the `prop_oneof!` macro).
pub fn weighted_union<T>(entries: Vec<(u32, BoxedStrategy<T>)>) -> WeightedUnion<T> {
    assert!(!entries.is_empty(), "prop_oneof! needs at least one entry");
    let total = entries.iter().map(|(w, _)| u64::from(*w)).sum();
    assert!(total > 0, "prop_oneof! weights sum to zero");
    WeightedUnion { entries, total }
}

impl<T> Strategy for WeightedUnion<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (weight, strat) in &self.entries {
            let weight = u64::from(*weight);
            if pick < weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u64..=5).generate(&mut rng);
            assert!((1..=5).contains(&w));
            let s = (-4i32..5).generate(&mut rng);
            assert!((-4..5).contains(&s));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut rng = TestRng::new(2);
        let s = (0u8..10).prop_map(|v| v as u32 * 2);
        for _ in 0..100 {
            assert!(s.generate(&mut rng) % 2 == 0);
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }

    #[test]
    fn weighted_union_respects_weights() {
        let mut rng = TestRng::new(3);
        let u = weighted_union(vec![(9, Just(true).boxed()), (1, Just(false).boxed())]);
        let hits = (0..1000).filter(|_| u.generate(&mut rng)).count();
        assert!(hits > 800, "expected ~900 true picks, got {hits}");
    }
}
