//! `any::<T>()`: strategies for types with a canonical full-range
//! generator.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.next_u64().is_multiple_of(4) {
            char::from_u32(rng.next_u64() as u32 % 0x11_0000).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + (rng.next_u64() % 95) as u8) as char
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_varied_bytes() {
        let mut rng = TestRng::new(11);
        let s = any::<u8>();
        let distinct: std::collections::HashSet<u8> =
            (0..256).map(|_| s.generate(&mut rng)).collect();
        assert!(
            distinct.len() > 100,
            "poor byte coverage: {}",
            distinct.len()
        );
    }
}
