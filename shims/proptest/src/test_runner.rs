//! Case driver: deterministic RNG, configuration, and the loop behind
//! the `proptest!` macro.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Deterministic generator feeding every strategy (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Run configuration (`cases` is the only knob this shim honors).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for API compatibility; unused (there is no shrinking).
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

fn seed_for(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = s.trim().trim_start_matches("0x").parse::<u64>() {
            return seed;
        }
        if let Ok(seed) = u64::from_str_radix(s.trim().trim_start_matches("0x"), 16) {
            return seed;
        }
    }
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    h.finish() | 1
}

/// Runs `config.cases` cases; `make_case` generates the inputs (returned
/// as a debug string for failure reports) and the case body.
pub fn run_cases<G, F>(config: &ProptestConfig, name: &str, mut make_case: F)
where
    G: FnOnce(),
    F: FnMut(&mut TestRng) -> (String, G),
{
    let seed = seed_for(name);
    let mut rng = TestRng::new(seed);
    for case in 0..config.cases {
        let (inputs, run) = make_case(&mut rng);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest {name}: case {case} of {} failed (seed {seed:#018x}; \
                 rerun with PROPTEST_SEED={seed:#x})",
                config.cases
            );
            const LIMIT: usize = 4096;
            if inputs.len() > LIMIT {
                let cut = (0..=LIMIT).rev().find(|&i| inputs.is_char_boundary(i));
                eprintln!("inputs (truncated):\n{}…", &inputs[..cut.unwrap_or(0)]);
            } else {
                eprintln!("inputs:\n{inputs}");
            }
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn usize_in_respects_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = rng.usize_in(3, 10);
            assert!((3..10).contains(&v));
        }
    }
}
