//! Collection strategies: `vec` and `btree_map`.

use std::collections::BTreeMap;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A size specification, inclusive of `lo`, exclusive of `hi`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.lo, self.hi)
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors of values from `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>`.
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// Generates maps with sizes drawn from `size` (best effort: duplicate
/// generated keys may yield slightly smaller maps).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.pick(rng);
        let mut out = BTreeMap::new();
        // Bounded retries so colliding key strategies still terminate.
        let mut attempts = 0;
        while out.len() < target && attempts < target * 10 + 16 {
            out.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::new(5);
        let s = vec(any::<u8>(), 2..7);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()), "len {}", v.len());
        }
    }

    #[test]
    fn btree_map_hits_target_sizes() {
        let mut rng = TestRng::new(6);
        let s = btree_map(any::<u64>(), any::<u8>(), 3..5);
        for _ in 0..100 {
            let m = s.generate(&mut rng);
            assert!((3..5).contains(&m.len()), "len {}", m.len());
        }
    }
}
