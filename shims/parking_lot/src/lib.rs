//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API this workspace uses: `lock()` returns the
//! guard directly (poison is ignored — a poisoned lock just hands back
//! the inner guard, which is also parking_lot's behavior since it has no
//! poisoning at all), and `Condvar::wait` takes `&mut MutexGuard`.

use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// Mutual exclusion primitive (no poisoning).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard.
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { guard: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { guard: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable pairing with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's mutex and waits; reacquires before
    /// returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present outside wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Waits with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present outside wait");
        let (g, result) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.guard = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    /// Waits until a deadline.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        let timeout = deadline.saturating_duration_since(now);
        self.wait_for(guard, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock (std-backed, no poisoning).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut flag = m.lock();
            *flag = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut flag = m.lock();
        while !*flag {
            cv.wait(&mut flag);
        }
        drop(flag);
        handle.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }
}
