//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's microbenchmarks use —
//! `criterion_group!` / `criterion_main!`, benchmark groups with
//! throughput annotations, and `Bencher::iter` / `iter_batched` — on a
//! simple wall-clock harness: each benchmark is warmed up, run until a
//! time budget is met, and reported as mean time per iteration plus
//! derived throughput. There are no statistics, baselines, or plots.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum measured time per benchmark before reporting.
const TARGET_TIME: Duration = Duration::from_millis(300);
/// Hard cap on iterations (keeps tiny routines bounded).
const MAX_ITERS: u64 = 1 << 22;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for `iter_batched` (ignored: every batch is one
/// iteration with setup excluded from timing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with per-iteration inputs built by `setup`
    /// outside the timed region.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The harness entry point (one per `criterion_group!`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, None, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let id = format!("{}/{id}", self.name);
        run_benchmark(&id, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    // Warm up and calibrate: grow the iteration count until the routine
    // fills the time budget.
    let mut iters = 1u64;
    let (iters, elapsed) = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_TIME || iters >= MAX_ITERS {
            break (iters, b.elapsed);
        }
        let per_iter = b.elapsed.as_nanos().max(1) / u128::from(iters);
        let needed = (TARGET_TIME.as_nanos() / per_iter).clamp(1, u128::from(MAX_ITERS));
        iters = (needed as u64).max(iters * 2);
    };

    let per_iter_ns = elapsed.as_nanos() as f64 / iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(bytes) => {
            let mb_s = bytes as f64 / (per_iter_ns / 1e9) / 1e6;
            format!("  {mb_s:10.1} MB/s")
        }
        Throughput::Elements(n) => {
            let ops = n as f64 / (per_iter_ns / 1e9);
            format!("  {ops:10.0} elem/s")
        }
    });
    println!(
        "{id:<40} {:>12} /iter ({iters} iters){}",
        format_ns(per_iter_ns),
        rate.unwrap_or_default()
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
