//! Snappy decompressor.

use crate::varint::read_uvarint;
use crate::{Error, Result};

/// Safety cap on the declared uncompressed size (1 GiB). The workloads in
/// this workspace never exceed a few MiB per block; anything larger is a
/// corrupt stream and refusing it bounds allocation on bad input.
const MAX_DECOMPRESSED_LEN: u64 = 1 << 30;

/// Returns the uncompressed length declared in the stream header without
/// decoding the body.
pub fn decompressed_len(stream: &[u8]) -> Result<usize> {
    let (len, _) = read_uvarint(stream).ok_or(Error::Truncated)?;
    if len > MAX_DECOMPRESSED_LEN {
        return Err(Error::TooLarge(len));
    }
    Ok(len as usize)
}

/// Decompresses a full Snappy stream into a fresh vector.
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>> {
    let len = decompressed_len(stream)?;
    let mut out = vec![0u8; len];
    decompress_into(stream, &mut out)?;
    Ok(out)
}

/// Decompresses into `out`, resizing it to the header-declared length but
/// reusing its capacity. Call in a loop with one long-lived buffer to
/// decompress a stream of blocks with no steady-state allocation.
pub fn decompress_to_vec(stream: &[u8], out: &mut Vec<u8>) -> Result<()> {
    let len = decompressed_len(stream)?;
    out.clear();
    // Grow to the next power of two: blocks in a stream vary slightly in
    // size, and growing geometrically means capacity stabilizes after the
    // first block instead of reallocating each time a new high-water mark
    // arrives.
    if out.capacity() < len {
        out.reserve(len.next_power_of_two());
    }
    out.resize(len, 0);
    decompress_into(stream, out)
}

/// Decompresses into a caller-provided buffer whose length must equal the
/// header-declared uncompressed length.
pub fn decompress_into(stream: &[u8], out: &mut [u8]) -> Result<()> {
    let (len, hdr) = read_uvarint(stream).ok_or(Error::Truncated)?;
    if len > MAX_DECOMPRESSED_LEN {
        return Err(Error::TooLarge(len));
    }
    let expected = len as usize;
    if out.len() != expected {
        return Err(Error::BadOutputLen {
            expected,
            actual: out.len(),
        });
    }
    let mut src = &stream[hdr..];
    let mut produced = 0usize;

    while !src.is_empty() {
        let tag = src[0];
        src = &src[1..];
        match tag & 0b11 {
            0b00 => {
                // Literal.
                let mut lit_len = (tag >> 2) as usize;
                if lit_len >= 60 {
                    let extra = lit_len - 59; // 1..=4 extra length bytes
                    if src.len() < extra {
                        return Err(Error::Truncated);
                    }
                    let mut n = 0usize;
                    for (i, &b) in src[..extra].iter().enumerate() {
                        n |= (b as usize) << (8 * i);
                    }
                    lit_len = n;
                    src = &src[extra..];
                }
                lit_len += 1;
                if src.len() < lit_len {
                    return Err(Error::Truncated);
                }
                if produced + lit_len > out.len() {
                    return Err(Error::LengthMismatch {
                        expected,
                        actual: produced + lit_len,
                    });
                }
                out[produced..produced + lit_len].copy_from_slice(&src[..lit_len]);
                produced += lit_len;
                src = &src[lit_len..];
            }
            0b01 => {
                // Copy, 1-byte offset: len 4..11, 11-bit offset.
                if src.is_empty() {
                    return Err(Error::Truncated);
                }
                let len = 4 + ((tag >> 2) & 0x7) as usize;
                let offset = (((tag >> 5) as usize) << 8) | src[0] as usize;
                src = &src[1..];
                copy(out, &mut produced, offset, len, expected)?;
            }
            0b10 => {
                // Copy, 2-byte little-endian offset: len 1..64.
                if src.len() < 2 {
                    return Err(Error::Truncated);
                }
                let len = 1 + (tag >> 2) as usize;
                let offset = u16::from_le_bytes([src[0], src[1]]) as usize;
                src = &src[2..];
                copy(out, &mut produced, offset, len, expected)?;
            }
            _ => {
                // Copy, 4-byte little-endian offset: len 1..64.
                if src.len() < 4 {
                    return Err(Error::Truncated);
                }
                let len = 1 + (tag >> 2) as usize;
                let offset = u32::from_le_bytes([src[0], src[1], src[2], src[3]]) as usize;
                src = &src[4..];
                copy(out, &mut produced, offset, len, expected)?;
            }
        }
    }

    if produced != expected {
        return Err(Error::LengthMismatch {
            expected,
            actual: produced,
        });
    }
    Ok(())
}

/// Applies a back-reference copy, handling the overlapping (RLE) case a
/// byte at a time.
#[inline]
fn copy(
    out: &mut [u8],
    produced: &mut usize,
    offset: usize,
    len: usize,
    expected: usize,
) -> Result<()> {
    if offset == 0 {
        return Err(Error::ZeroOffset);
    }
    if offset > *produced {
        return Err(Error::OffsetTooLarge {
            offset,
            produced: *produced,
        });
    }
    if *produced + len > out.len() {
        return Err(Error::LengthMismatch {
            expected,
            actual: *produced + len,
        });
    }
    let start = *produced - offset;
    if offset >= len {
        // Non-overlapping: a single memmove-able region.
        out.copy_within(start..start + len, *produced);
    } else {
        for i in 0..len {
            out[*produced + i] = out[start + i];
        }
    }
    *produced += len;
    Ok(())
}
