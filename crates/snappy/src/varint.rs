//! LEB128-style unsigned varints, as used by the Snappy stream header.

/// Appends `value` to `out` as a base-128 varint (7 bits per byte, LSB
/// first, high bit set on continuation bytes).
pub fn write_uvarint(out: &mut Vec<u8>, mut value: u64) {
    while value >= 0x80 {
        out.push((value as u8 & 0x7f) | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Reads a varint from the front of `buf`, returning the value and the
/// number of bytes consumed, or `None` if the buffer is truncated or the
/// varint is longer than 10 bytes.
pub fn read_uvarint(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, &b) in buf.iter().enumerate() {
        if i >= 10 {
            return None;
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((value, i + 1));
        }
        shift += 7;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            255,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let (got, used) = read_uvarint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn truncated_is_none() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 1 << 40);
        for cut in 0..buf.len() {
            assert!(read_uvarint(&buf[..cut]).is_none());
        }
    }

    #[test]
    fn overlong_is_none() {
        let buf = [0x80u8; 11];
        assert!(read_uvarint(&buf).is_none());
    }
}
