//! A from-scratch implementation of the [Snappy] block compression format.
//!
//! LevelDB compresses every SSTable data block and index block with Snappy
//! before writing it to disk, and the FPGA compaction engine of the paper
//! decompresses/recompresses blocks as part of its Decoder/Encoder stages.
//! This crate provides a format-correct codec so the rest of the workspace
//! can produce and consume real LevelDB-compatible blocks.
//!
//! The block format is:
//!
//! * a varint-encoded length of the *uncompressed* payload, followed by
//! * a sequence of elements, each starting with a tag byte whose low two
//!   bits select the element kind:
//!   * `00` — literal run (length encoded in the tag or in 1–4 extra bytes),
//!   * `01` — copy with a 1-byte offset extension (len 4–11, offset < 2048),
//!   * `10` — copy with a 2-byte little-endian offset (len 1–64),
//!   * `11` — copy with a 4-byte little-endian offset (len 1–64).
//!
//! The compressor is a greedy matcher with a 4-byte hash table, operating on
//! 64 KiB fragments exactly like the reference implementation, so its output
//! is decodable by any conforming Snappy decoder.
//!
//! [Snappy]: https://github.com/google/snappy/blob/main/format_description.txt

mod compress;
mod decompress;
mod varint;

pub use compress::{compress, max_compressed_len, Encoder};
pub use decompress::{decompress, decompress_into, decompress_to_vec, decompressed_len};

/// Errors returned by the decompressor.
///
/// The compressor is infallible: any byte string has a valid Snappy
/// encoding (in the worst case as a sequence of literals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The stream ended in the middle of a varint or element.
    Truncated,
    /// A copy element referenced data before the start of the output.
    OffsetTooLarge {
        /// The (invalid) back-reference distance.
        offset: usize,
        /// Number of bytes produced so far.
        produced: usize,
    },
    /// A copy element had a zero offset, which the format forbids.
    ZeroOffset,
    /// The header length did not match the number of decoded bytes.
    LengthMismatch {
        /// Length claimed by the stream header.
        expected: usize,
        /// Length actually produced.
        actual: usize,
    },
    /// The stream header declared a payload larger than the configured cap.
    TooLarge(u64),
    /// The caller-provided output buffer had the wrong size.
    BadOutputLen {
        /// Length required by the stream header.
        expected: usize,
        /// Length of the provided buffer.
        actual: usize,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Truncated => write!(f, "snappy: truncated stream"),
            Error::OffsetTooLarge { offset, produced } => write!(
                f,
                "snappy: copy offset {offset} exceeds {produced} produced bytes"
            ),
            Error::ZeroOffset => write!(f, "snappy: zero copy offset"),
            Error::LengthMismatch { expected, actual } => write!(
                f,
                "snappy: header says {expected} bytes but stream decoded to {actual}"
            ),
            Error::TooLarge(n) => write!(f, "snappy: declared length {n} exceeds cap"),
            Error::BadOutputLen { expected, actual } => write!(
                f,
                "snappy: output buffer is {actual} bytes, stream needs {expected}"
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Result alias for decompression.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "roundtrip mismatch for {} bytes", data.len());
    }

    #[test]
    fn roundtrip_empty() {
        roundtrip(b"");
    }

    #[test]
    fn roundtrip_single_byte() {
        roundtrip(b"x");
    }

    #[test]
    fn roundtrip_short_ascii() {
        roundtrip(b"hello snappy world");
    }

    #[test]
    fn roundtrip_repetitive_compresses() {
        let data = b"abcdabcdabcdabcdabcdabcdabcdabcdabcdabcd".repeat(100);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "repetitive data should compress well: {} -> {}",
            data.len(),
            c.len()
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_incompressible() {
        // A xorshift stream is effectively incompressible.
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut data = Vec::with_capacity(10_000);
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            data.push(x as u8);
        }
        let c = compress(&data);
        // Worst case adds only the header plus ~1/6 literal tag overhead.
        assert!(c.len() <= max_compressed_len(data.len()));
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_all_zeros() {
        let data = vec![0u8; 100_000];
        let c = compress(&data);
        // Copies cap at 64 bytes, so the floor is ~3 bytes per 64 (~len/21).
        assert!(c.len() < data.len() / 15, "zeros should compress hard");
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_crosses_fragment_boundary() {
        // > 64 KiB so the compressor emits multiple fragments; the repeated
        // pattern also straddles the boundary.
        let data = b"0123456789abcdef".repeat(9000);
        roundtrip(&data);
    }

    #[test]
    fn decompress_rejects_truncation() {
        let c = compress(b"some reasonable input data for snappy");
        for cut in 0..c.len() {
            // Every strict prefix must fail, never panic.
            let r = decompress(&c[..cut]);
            assert!(r.is_err(), "prefix of len {cut} unexpectedly decoded");
        }
    }

    #[test]
    fn decompress_rejects_bad_offset() {
        // Header: 4 bytes. Copy2 with offset 100 at position 0.
        let stream = [4u8, 0b0000_0110, 100, 0];
        match decompress(&stream) {
            Err(Error::OffsetTooLarge { .. }) => {}
            other => panic!("expected OffsetTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn decompress_rejects_zero_offset() {
        // One literal byte, then a copy with offset zero.
        let stream = [5u8, 0b0000_0000, b'a', 0b0000_0110, 0, 0];
        match decompress(&stream) {
            Err(Error::ZeroOffset) => {}
            other => panic!("expected ZeroOffset, got {other:?}"),
        }
    }

    #[test]
    fn decompress_rejects_length_mismatch() {
        // Header says 10 bytes, stream only encodes 1 literal byte.
        let stream = [10u8, 0b0000_0000, b'a'];
        match decompress(&stream) {
            Err(Error::LengthMismatch {
                expected: 10,
                actual: 1,
            }) => {}
            other => panic!("expected LengthMismatch, got {other:?}"),
        }
    }

    #[test]
    fn known_vector_literal() {
        // "abc" as a single literal: header 3, tag (3-1)<<2 = 0b1000, bytes.
        let stream = [3u8, 0b0000_1000, b'a', b'b', b'c'];
        assert_eq!(decompress(&stream).unwrap(), b"abc");
    }

    #[test]
    fn known_vector_overlapping_copy() {
        // RLE via overlapping copy: literal "ab", then copy len 6 offset 2
        // yields "abababab". Copy1 tag: ((6-4)<<2)|1 = 0b01001, offset 2.
        let stream = [8u8, 0b0000_0100, b'a', b'b', 0b0000_1001, 2];
        assert_eq!(decompress(&stream).unwrap(), b"abababab");
    }

    #[test]
    fn decompressed_len_reads_header_only() {
        let c = compress(&vec![7u8; 12345]);
        assert_eq!(decompressed_len(&c).unwrap(), 12345);
    }

    #[test]
    fn decompress_into_checks_buffer_size() {
        let c = compress(b"hello");
        let mut out = vec![0u8; 4];
        match decompress_into(&c, &mut out) {
            Err(Error::BadOutputLen {
                expected: 5,
                actual: 4,
            }) => {}
            other => panic!("expected BadOutputLen, got {other:?}"),
        }
        let mut out = vec![0u8; 5];
        decompress_into(&c, &mut out).unwrap();
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn decompress_to_vec_reuses_capacity() {
        let mut out = Vec::new();
        decompress_to_vec(&compress(&vec![9u8; 4096]), &mut out).unwrap();
        assert_eq!(out, vec![9u8; 4096]);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        // A smaller block must reuse the same storage, not reallocate.
        decompress_to_vec(&compress(b"hello"), &mut out).unwrap();
        assert_eq!(&out, b"hello");
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.as_ptr(), ptr);
    }
}
