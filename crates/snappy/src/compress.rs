//! Greedy Snappy compressor.
//!
//! Mirrors the structure of the reference implementation: the input is
//! split into 64 KiB fragments, each compressed independently with a
//! 4-byte-hash match table. Back-references never cross a fragment
//! boundary, which bounds offsets to 16 bits and lets the hash table be
//! reset cheaply between fragments.

use crate::varint::write_uvarint;

/// Fragment size used by the reference implementation.
const BLOCK_SIZE: usize = 1 << 16;

/// log2 of the hash-table size (per fragment).
const HASH_BITS: u32 = 14;
const HASH_TABLE_SIZE: usize = 1 << HASH_BITS;

/// Inputs shorter than this are emitted as a single literal; matching
/// cannot pay for itself.
const MIN_COMPRESS_INPUT: usize = 16;

/// Upper bound on the size of `compress(input)`'s output for an input of
/// `len` bytes (header + worst-case literal framing).
pub fn max_compressed_len(len: usize) -> usize {
    // 32 + len + len/6, as in the reference implementation.
    32 + len + len / 6
}

/// Compresses `input` into a fresh vector.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut enc = Encoder::new();
    let mut out = Vec::with_capacity(max_compressed_len(input.len()) / 2);
    enc.compress_into(input, &mut out);
    out
}

/// A reusable compressor holding the match hash table, so repeated block
/// compression (the hot path in `TableBuilder` and the FPGA encoder model)
/// does not reallocate per call.
pub struct Encoder {
    table: Vec<u16>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    /// Creates an encoder with a fresh hash table.
    pub fn new() -> Self {
        Encoder {
            table: vec![0u16; HASH_TABLE_SIZE],
        }
    }

    /// Compresses `input`, appending the Snappy stream to `out`.
    pub fn compress_into(&mut self, input: &[u8], out: &mut Vec<u8>) {
        write_uvarint(out, input.len() as u64);
        for fragment in input.chunks(BLOCK_SIZE) {
            self.compress_fragment(fragment, out);
        }
    }

    fn compress_fragment(&mut self, frag: &[u8], out: &mut Vec<u8>) {
        if frag.len() < MIN_COMPRESS_INPUT {
            emit_literal(out, frag);
            return;
        }
        self.table.fill(0);

        // `next_emit` is the start of the pending literal run.
        let mut next_emit = 0usize;
        let mut pos = 1usize;
        // Leave room so the unaligned 4-byte loads below stay in bounds.
        let limit = frag.len() - 4;

        while pos <= limit {
            let h = hash4(load32(frag, pos));
            let candidate = self.table[h] as usize;
            self.table[h] = pos as u16;
            if candidate < pos
                && pos - candidate <= u16::MAX as usize
                && load32(frag, candidate) == load32(frag, pos)
            {
                // Found a match: flush the literal run, then extend.
                emit_literal(out, &frag[next_emit..pos]);
                let mut match_len = 4usize;
                while pos + match_len < frag.len()
                    && frag[candidate + match_len] == frag[pos + match_len]
                {
                    match_len += 1;
                }
                emit_copy(out, pos - candidate, match_len);
                pos += match_len;
                next_emit = pos;
                // Seed the table at the position just before the new cursor
                // so immediately-repeating patterns keep chaining.
                if pos <= limit && pos >= 1 {
                    let h2 = hash4(load32(frag, pos - 1));
                    self.table[h2] = (pos - 1) as u16;
                }
            } else {
                pos += 1;
            }
        }
        if next_emit < frag.len() {
            emit_literal(out, &frag[next_emit..]);
        }
    }
}

#[inline]
fn load32(buf: &[u8], at: usize) -> u32 {
    // PANIC-OK: every caller bounds-checks `at + 4 <= buf.len()` (the
    // match loop stops 4 bytes before the end); slice of 4 infallibly
    // converts.
    u32::from_le_bytes(buf[at..at + 4].try_into().unwrap())
}

#[inline]
fn hash4(v: u32) -> usize {
    (v.wrapping_mul(0x1e35_a7bd) >> (32 - HASH_BITS)) as usize
}

fn emit_literal(out: &mut Vec<u8>, lit: &[u8]) {
    if lit.is_empty() {
        return;
    }
    let n = lit.len() - 1;
    if n < 60 {
        out.push((n as u8) << 2);
    } else if n < (1 << 8) {
        out.push(60 << 2);
        out.push(n as u8);
    } else if n < (1 << 16) {
        out.push(61 << 2);
        out.extend_from_slice(&(n as u16).to_le_bytes());
    } else if n < (1 << 24) {
        out.push(62 << 2);
        out.extend_from_slice(&(n as u32).to_le_bytes()[..3]);
    } else {
        out.push(63 << 2);
        out.extend_from_slice(&(n as u32).to_le_bytes());
    }
    out.extend_from_slice(lit);
}

/// Emits one or more copy elements covering `len` bytes at back-reference
/// distance `offset` (1-based, ≤ 65535 because fragments are 64 KiB).
fn emit_copy(out: &mut Vec<u8>, offset: usize, mut len: usize) {
    debug_assert!(offset >= 1 && offset <= u16::MAX as usize);
    // Long matches are emitted as a run of 64-byte copies; a tail of 64–67
    // bytes is split 60 + remainder so the final piece stays >= 4 (required
    // for the 1-byte-offset form and matches the reference implementation).
    while len >= 68 {
        emit_copy2(out, offset, 64);
        len -= 64;
    }
    if len > 64 {
        emit_copy2(out, offset, 60);
        len -= 60;
    }
    if (4..=11).contains(&len) && offset < 2048 {
        // Copy with 1-byte offset: tag 01, len-4 in bits 2..5, offset high
        // bits in 5..8, offset low byte follows.
        let tag = 0b01 | (((len - 4) as u8) << 2) | (((offset >> 8) as u8) << 5);
        out.push(tag);
        out.push(offset as u8);
    } else {
        emit_copy2(out, offset, len);
    }
}

fn emit_copy2(out: &mut Vec<u8>, offset: usize, len: usize) {
    debug_assert!((1..=64).contains(&len));
    out.push(0b10 | (((len - 1) as u8) << 2));
    out.extend_from_slice(&(offset as u16).to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompress::decompress;

    #[test]
    fn literal_framing_boundaries() {
        // Exercise every literal length encoding branch.
        for n in [1usize, 59, 60, 61, 255, 256, 257, 65535, 65536, 65537] {
            let mut out = Vec::new();
            let lit: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
            emit_literal(&mut out, &lit);
            // Frame it as a full stream to decode.
            let mut stream = Vec::new();
            write_uvarint_test(&mut stream, n as u64);
            stream.extend_from_slice(&out);
            assert_eq!(decompress(&stream).unwrap(), lit, "literal len {n}");
        }
    }

    fn write_uvarint_test(out: &mut Vec<u8>, v: u64) {
        crate::varint::write_uvarint(out, v);
    }

    #[test]
    fn copy_framing_long_matches() {
        // 3 bytes of pattern then a very long overlapping run forces the
        // 68+/64..67 splitting logic in emit_copy.
        for total in [70usize, 131, 132, 133, 200, 1000] {
            let mut data = vec![b'x', b'y', b'z'];
            while data.len() < total {
                let b = data[data.len() - 3];
                data.push(b);
            }
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data, "total {total}");
        }
    }

    #[test]
    fn encoder_reuse_is_clean() {
        let mut enc = Encoder::new();
        let a = b"first block first block first block".repeat(10);
        let b: Vec<u8> = (0..2000u32).flat_map(|i| i.to_le_bytes()).collect();
        for _ in 0..3 {
            let mut out = Vec::new();
            enc.compress_into(&a, &mut out);
            assert_eq!(decompress(&out).unwrap(), a);
            let mut out = Vec::new();
            enc.compress_into(&b, &mut out);
            assert_eq!(decompress(&out).unwrap(), b);
        }
    }
}
