//! Property-based tests for the Snappy codec.

use proptest::prelude::*;
use snap_codec::{compress, decompress, decompressed_len, max_compressed_len};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// compress ∘ decompress is the identity for arbitrary byte strings.
    #[test]
    fn roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        let c = compress(&data);
        prop_assert!(c.len() <= max_compressed_len(data.len()));
        prop_assert_eq!(decompressed_len(&c).unwrap(), data.len());
        prop_assert_eq!(decompress(&c).unwrap(), data);
    }

    /// Highly repetitive inputs (the kind SSTable key prefixes produce)
    /// roundtrip and actually shrink.
    #[test]
    fn roundtrip_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..32),
        reps in 64usize..512,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).unwrap(), data.clone());
        if data.len() > 1024 {
            prop_assert!(c.len() < data.len(), "repetitive data must shrink");
        }
    }

    /// The decompressor never panics on arbitrary garbage; it either
    /// decodes or returns an error.
    #[test]
    fn decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..4_096)) {
        let _ = decompress(&data);
    }

    /// Mutating one byte of a valid stream never panics the decoder.
    #[test]
    fn decompress_survives_bitflips(
        data in proptest::collection::vec(any::<u8>(), 1..2_000),
        flip_at in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut c = compress(&data);
        let i = flip_at.index(c.len());
        c[i] ^= xor;
        if let Ok(out) = decompress(&c) { prop_assert!(out.len() < (1 << 30)) }
    }
}
