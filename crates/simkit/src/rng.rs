//! SplitMix64: a tiny, fast, deterministic PRNG for simulation decisions
//! (not cryptographic). Used where the simulator must be reproducible
//! independent of the `rand` crate's version-dependent streams.

/// Deterministic 64-bit generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform double in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in [0, bound).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift: adequate uniformity for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = SplitMix64::new(123);
        let mean: f64 = (0..100_000).map(|_| r.next_f64()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
