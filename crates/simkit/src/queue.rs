//! Event queue: a time-ordered heap with deterministic FIFO tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in nanoseconds.
pub type SimTime = u64;

/// One nanosecond-resolution second.
pub const SECOND: SimTime = 1_000_000_000;

/// Converts seconds (f64) to [`SimTime`], saturating at the u64 range.
pub fn from_secs_f64(s: f64) -> SimTime {
    debug_assert!(s >= 0.0, "negative duration: {s}");
    let ns = s * SECOND as f64;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as SimTime
    }
}

/// Converts [`SimTime`] to seconds.
pub fn to_secs_f64(t: SimTime) -> f64 {
    t as f64 / SECOND as f64
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    // `E` ordering is irrelevant; (time, seq) is unique.
    event: EventBox<E>,
}

// Manual impls: a derive would demand `E: Ord`, which events never need.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Wrapper that compares equal so only (time, seq) orders the heap.
struct EventBox<E>(E);

impl<E> PartialEq for EventBox<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventBox<E> {}
impl<E> PartialOrd for EventBox<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventBox<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

/// A deterministic discrete-event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// The current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at `now() + delay`.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Schedules `event` at an absolute time (clamped to `now()`).
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        let time = time.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            time,
            seq,
            event: EventBox(event),
        }));
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        Some((entry.time, entry.event.0))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.now(), 10);
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.now(), 30);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(10, 1);
        q.pop();
        q.schedule(5, 2);
        assert_eq!(q.pop(), Some((15, 2)));
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule(100, 1);
        q.pop();
        q.schedule_at(10, 2); // in the past
        assert_eq!(q.pop(), Some((100, 2)));
    }

    #[test]
    fn seconds_conversion_roundtrips() {
        for s in [0.0, 1e-9, 0.5, 1.0, 3600.0] {
            let t = from_secs_f64(s);
            assert!((to_secs_f64(t) - s).abs() < 1e-9, "{s}");
        }
        assert_eq!(from_secs_f64(f64::MAX), u64::MAX);
    }
}
