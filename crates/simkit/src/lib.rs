//! A small discrete-event simulation kernel plus the device models the
//! system-level experiments need (disk, PCIe link, CPU core pool).
//!
//! The kernel is deliberately generic: [`EventQueue<E>`] orders
//! caller-defined events by simulated time (with a deterministic FIFO
//! tie-break), and the system logic lives in the caller's event loop.
//! The `systemsim` crate drives a whole LSM store through it.

pub mod devices;
pub mod queue;
pub mod rng;

pub use devices::{CpuPool, DiskModel, PcieArbiter, PcieLink};
pub use queue::{EventQueue, SimTime};
pub use rng::SplitMix64;
