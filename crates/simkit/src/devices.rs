//! Device models: durations for disk I/O, PCIe transfers, and a counted
//! CPU-core resource with FIFO admission.
//!
//! All models return *durations* (in simulated nanoseconds); serialization
//! of access is the caller's job — except [`CpuPool`], which tracks
//! per-core busy-until times so callers can ask "when could this job
//! start, and when would it finish?".

use crate::queue::{from_secs_f64, SimTime};

/// A simple disk: sequential bandwidth + per-operation seek latency.
/// Defaults model the SATA SSD class of machine the paper evaluates on.
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Sequential read bandwidth, bytes/sec.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/sec.
    pub write_bw: f64,
    /// Per-operation latency (seek + queue), seconds.
    pub op_latency: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            read_bw: 500e6,
            write_bw: 450e6,
            op_latency: 100e-6,
        }
    }
}

impl DiskModel {
    /// Duration of a sequential read of `bytes`.
    pub fn read_time(&self, bytes: u64) -> SimTime {
        from_secs_f64(self.op_latency + bytes as f64 / self.read_bw)
    }

    /// Duration of a sequential write of `bytes`.
    pub fn write_time(&self, bytes: u64) -> SimTime {
        from_secs_f64(self.op_latency + bytes as f64 / self.write_bw)
    }

    /// Duration of a random read of one block (latency-dominated).
    pub fn random_read_time(&self, bytes: u64) -> SimTime {
        self.read_time(bytes)
    }
}

/// PCIe DMA link model.
#[derive(Debug, Clone, Copy)]
pub struct PcieLink {
    /// Effective unidirectional bandwidth, bytes/sec.
    pub bandwidth: f64,
    /// Per-transfer setup latency, seconds.
    pub latency: f64,
}

impl Default for PcieLink {
    fn default() -> Self {
        PcieLink {
            bandwidth: 12.8e9,
            latency: 10e-6,
        }
    }
}

impl PcieLink {
    /// Duration of one DMA of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        from_secs_f64(self.latency + bytes as f64 / self.bandwidth)
    }
}

/// A shared PCIe link with serialized DMA transfers.
///
/// Multiple engine instances on one card share the single ×16 link; DMA
/// for different instances cannot overlap. The arbiter keeps a
/// busy-until timeline (FIFO order of requests) so multi-engine
/// simulations charge contention honestly instead of letting K engines
/// each enjoy the full link bandwidth.
#[derive(Debug, Clone)]
pub struct PcieArbiter {
    link: PcieLink,
    busy_until: SimTime,
    /// Total link-busy time accumulated (for utilization reports).
    busy_time: SimTime,
}

impl PcieArbiter {
    /// An arbiter for `link`, idle at time zero.
    pub fn new(link: PcieLink) -> Self {
        PcieArbiter {
            link,
            busy_until: 0,
            busy_time: 0,
        }
    }

    /// The underlying link model.
    pub fn link(&self) -> &PcieLink {
        &self.link
    }

    /// Schedules a DMA of `bytes` requested at `now`; returns
    /// `(start, finish)` and marks the link busy for that window.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> (SimTime, SimTime) {
        let duration = self.link.transfer_time(bytes);
        let start = self.busy_until.max(now);
        let finish = start.saturating_add(duration);
        self.busy_until = finish;
        self.busy_time = self.busy_time.saturating_add(duration);
        (start, finish)
    }

    /// Earliest time a transfer requested at `now` could start.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        self.busy_until.max(now)
    }

    /// Total time the link has spent transferring.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }
}

/// A pool of identical cores. Jobs are admitted to the earliest-free core;
/// the pool answers when a job submitted at `t` would start and finish.
#[derive(Debug, Clone)]
pub struct CpuPool {
    /// Per-core time at which the core becomes free.
    busy_until: Vec<SimTime>,
}

impl CpuPool {
    /// Creates a pool of `cores` cores, all free at time zero.
    pub fn new(cores: usize) -> Self {
        assert!(cores >= 1);
        CpuPool {
            busy_until: vec![0; cores],
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.busy_until.len()
    }

    /// Schedules a job of `duration` submitted at `now`; returns
    /// `(start, finish)` and marks the chosen core busy.
    pub fn run(&mut self, now: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let core = self
            .busy_until
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            // PANIC-OK: constructors reject zero-core pools, so the
            // min_by_key over busy_until always yields a core.
            .expect("pool has at least one core");
        let start = self.busy_until[core].max(now);
        let finish = start.saturating_add(duration);
        self.busy_until[core] = finish;
        (start, finish)
    }

    /// Earliest time a new job submitted at `now` could start.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        self.busy_until.iter().copied().min().unwrap_or(0).max(now)
    }

    /// True if some core is free at `now`.
    pub fn has_free_core(&self, now: SimTime) -> bool {
        self.busy_until.iter().any(|&t| t <= now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SECOND;

    #[test]
    fn disk_times_scale_with_bytes() {
        let d = DiskModel::default();
        let small = d.read_time(1 << 20);
        let big = d.read_time(100 << 20);
        assert!(big > 50 * small / 2);
        assert!(d.write_time(1 << 20) > d.read_time(1 << 20)); // slower writes
                                                               // Latency floor.
        assert!(d.read_time(0) >= from_secs_f64(d.op_latency));
    }

    #[test]
    fn pcie_transfer_time() {
        let p = PcieLink::default();
        // 12.8 GB in one second (+latency).
        let t = p.transfer_time(12_800_000_000);
        assert!((t as i64 - SECOND as i64).unsigned_abs() < SECOND / 100);
    }

    #[test]
    fn pcie_arbiter_serializes_concurrent_dma() {
        let mut bus = PcieArbiter::new(PcieLink::default());
        // Two "simultaneous" transfers of 1.28 GB: each is ~0.1 s on the
        // link, so the second starts when the first ends.
        let (s1, f1) = bus.transfer(0, 1_280_000_000);
        let (s2, f2) = bus.transfer(0, 1_280_000_000);
        assert_eq!(s1, 0);
        assert_eq!(s2, f1, "shared link: second DMA waits");
        assert!(f2 >= 2 * f1 - 1);
        assert_eq!(bus.busy_time(), f2 - s1);
        // After the link drains, a later request starts immediately.
        assert_eq!(bus.earliest_start(10 * f2), 10 * f2);
    }

    #[test]
    fn cpu_pool_serializes_on_one_core() {
        let mut pool = CpuPool::new(1);
        let (s1, f1) = pool.run(0, 100);
        assert_eq!((s1, f1), (0, 100));
        let (s2, f2) = pool.run(10, 50);
        assert_eq!((s2, f2), (100, 150), "second job waits for the core");
        assert!(!pool.has_free_core(120));
        assert!(pool.has_free_core(150));
    }

    #[test]
    fn cpu_pool_parallelizes_across_cores() {
        let mut pool = CpuPool::new(2);
        let (_, f1) = pool.run(0, 100);
        let (s2, f2) = pool.run(0, 100);
        assert_eq!(f1, 100);
        assert_eq!((s2, f2), (0, 100), "second core runs in parallel");
        let (s3, _) = pool.run(0, 10);
        assert_eq!(s3, 100, "third job waits for the earliest-free core");
    }

    #[test]
    fn earliest_start_accounts_for_now() {
        let mut pool = CpuPool::new(1);
        pool.run(0, 100);
        assert_eq!(pool.earliest_start(0), 100);
        assert_eq!(pool.earliest_start(500), 500);
    }
}
