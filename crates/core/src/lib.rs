//! # fcae-repro
//!
//! A from-scratch Rust reproduction of *"FPGA-based Compaction Engine for
//! Accelerating LSM-tree Key-Value Stores"* (ICDE 2020): a LevelDB-like
//! LSM store whose compactions can be offloaded to a cycle-accurately
//! simulated FPGA engine.
//!
//! This facade re-exports the workspace's public API:
//!
//! * [`lsm`] — the store: [`lsm::Db`], options, the
//!   [`lsm::CompactionEngine`] abstraction and the CPU baseline engine;
//! * [`fcae`] — the simulated FPGA engine: [`fcae::FcaeEngine`],
//!   configuration ([`fcae::FcaeConfig`]), the pipeline timing model,
//!   the Table VII resource model and the calibrated CPU cost model;
//! * [`offload`] — the multi-engine offload scheduler:
//!   [`offload::OffloadService`] packs as many engine instances as fit
//!   the card and dispatches compactions across them with priority
//!   queueing, CPU fallback and fault retry;
//! * [`sstable`] — the LevelDB table format;
//! * [`snap_codec`] — the Snappy codec;
//! * [`workloads`] — db_bench / YCSB generators;
//! * [`systemsim`] — the metadata-level system simulator behind the
//!   end-to-end experiments;
//! * [`simkit`] — the discrete-event kernel and device models.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use fcae_repro::fcae::{FcaeConfig, FcaeEngine};
//! use fcae_repro::lsm::{Db, Options};
//!
//! let dir = std::env::temp_dir().join("fcae-repro-doc");
//! let _ = std::fs::remove_dir_all(&dir);
//! let engine = Arc::new(FcaeEngine::new(FcaeConfig::nine_input()));
//! let db = Db::open_with_engine(&dir, Options::default(), engine).unwrap();
//! db.put(b"hello", b"world").unwrap();
//! assert_eq!(db.get(b"hello").unwrap().as_deref(), Some(&b"world"[..]));
//! ```

pub use fcae;
pub use lsm;
pub use obs;
pub use offload;
pub use simkit;
pub use snap_codec;
pub use sstable;
pub use systemsim;
pub use workloads;

/// Crate version, matching the workspace.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
