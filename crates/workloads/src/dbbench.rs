//! db_bench-style key and value generation (LevelDB `benchmarks/db_bench.cc`).
//!
//! Keys are fixed-width zero-padded decimal strings (16 bytes by default,
//! the paper's Table IV); values come from a compressible random pool
//! with a configurable compression ratio (db_bench defaults to ~50%
//! Snappy-compressible data).

use simkit::SplitMix64;

/// Fixed-width decimal key formatting.
#[derive(Debug, Clone, Copy)]
pub struct KeyFormat {
    /// Key length in bytes (paper default 16; sweep range [16, 256]).
    pub key_len: usize,
}

impl Default for KeyFormat {
    fn default() -> Self {
        KeyFormat { key_len: 16 }
    }
}

impl KeyFormat {
    /// Largest key number this width can represent distinctly; formatting
    /// wraps modulo this bound, so ordering is preserved for key numbers
    /// below it (db_bench sizes its key space accordingly).
    pub fn key_space(&self) -> u64 {
        let digits = self.key_len.min(19) as u32;
        10u64.saturating_pow(digits)
    }

    /// Formats key number `i` (mod [`Self::key_space`]) into `buf`
    /// (cleared first), zero-padded to exactly `key_len` bytes.
    pub fn format_into(&self, i: u64, buf: &mut Vec<u8>) {
        buf.clear();
        let i = i % self.key_space();
        let digits = format!("{i:016}");
        if self.key_len <= digits.len() {
            buf.extend_from_slice(&digits.as_bytes()[digits.len() - self.key_len..]);
        } else {
            buf.resize(self.key_len - digits.len(), b'0');
            buf.extend_from_slice(digits.as_bytes());
        }
    }

    /// Formats key number `i` into a fresh vector.
    pub fn format(&self, i: u64) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.key_len);
        self.format_into(i, &mut buf);
        buf
    }
}

/// db_bench's `RandomGenerator`: a 1 MiB pool of data with a target
/// compression ratio; values are slices at rotating offsets.
pub struct ValueGenerator {
    pool: Vec<u8>,
    pos: usize,
}

impl ValueGenerator {
    /// Creates a generator whose output compresses to roughly
    /// `compression_ratio` of its size (0.5 = db_bench default).
    pub fn new(seed: u64, compression_ratio: f64) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut pool = Vec::with_capacity(1 << 20);
        // Alternate incompressible noise with repeated runs so that the
        // aggregate compresses to the requested ratio.
        let ratio = compression_ratio.clamp(0.05, 1.0);
        while pool.len() < (1 << 20) {
            let run = 64;
            let noise_bytes = (run as f64 * ratio) as usize;
            for _ in 0..noise_bytes {
                pool.push(rng.next_u64() as u8);
            }
            let fill = pool.last().copied().unwrap_or(b'x');
            for _ in noise_bytes..run {
                pool.push(fill);
            }
        }
        ValueGenerator { pool, pos: 0 }
    }

    /// Returns the next value of `len` bytes.
    pub fn generate(&mut self, len: usize) -> &[u8] {
        if self.pos + len > self.pool.len() {
            self.pos = 0;
        }
        let s = &self.pool[self.pos..self.pos + len.min(self.pool.len())];
        self.pos += len;
        s
    }
}

/// The db_bench workloads used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbBenchWorkload {
    /// Sequential fill.
    FillSeq,
    /// Random fill (the paper's write-throughput workload).
    FillRandom,
    /// Random overwrites of an existing database.
    Overwrite,
    /// Random point reads.
    ReadRandom,
}

impl DbBenchWorkload {
    /// The key number for operation `op` out of `total` keys.
    pub fn key_number(&self, op: u64, total: u64, rng: &mut SplitMix64) -> u64 {
        match self {
            DbBenchWorkload::FillSeq => op % total.max(1),
            DbBenchWorkload::FillRandom
            | DbBenchWorkload::Overwrite
            | DbBenchWorkload::ReadRandom => rng.next_below(total.max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_fixed_width_and_ordered() {
        let kf = KeyFormat { key_len: 16 };
        let a = kf.format(1);
        let b = kf.format(2);
        let c = kf.format(10_000_000);
        assert_eq!(a.len(), 16);
        assert_eq!(b.len(), 16);
        assert_eq!(c.len(), 16);
        assert!(a < b && b < c, "decimal padding must preserve order");
    }

    #[test]
    fn long_and_short_keys() {
        for len in [16usize, 24, 100, 256] {
            let kf = KeyFormat { key_len: len };
            assert_eq!(kf.format(123).len(), len);
        }
        // Truncating formats still produce the right width.
        let kf = KeyFormat { key_len: 8 };
        assert_eq!(kf.format(u64::MAX).len(), 8);
    }

    #[test]
    fn value_compression_ratio_respected() {
        for (ratio, lo, hi) in [(0.5, 0.3, 0.75), (1.0, 0.8, 1.2), (0.25, 0.1, 0.5)] {
            let mut g = ValueGenerator::new(1, ratio);
            let v = g.generate(100_000).to_vec();
            let c = snappy_len(&v);
            let achieved = c as f64 / v.len() as f64;
            assert!(
                (lo..hi).contains(&achieved),
                "ratio {ratio}: achieved {achieved}"
            );
        }
    }

    // Local reference compressor (run-length estimate): approximates
    // snappy compressibility without a dependency cycle.
    fn snappy_len(data: &[u8]) -> usize {
        let mut out = 0usize;
        let mut i = 0;
        while i < data.len() {
            let b = data[i];
            let mut j = i + 1;
            while j < data.len() && data[j] == b && j - i < 64 {
                j += 1;
            }
            out += if j - i >= 4 { 3 } else { j - i };
            i = j;
        }
        out
    }

    #[test]
    fn values_vary_across_calls() {
        let mut g = ValueGenerator::new(2, 0.5);
        let a = g.generate(128).to_vec();
        let b = g.generate(128).to_vec();
        assert_ne!(a, b);
    }

    #[test]
    fn workload_key_numbers_in_range() {
        let mut rng = SplitMix64::new(3);
        for w in [
            DbBenchWorkload::FillSeq,
            DbBenchWorkload::FillRandom,
            DbBenchWorkload::Overwrite,
            DbBenchWorkload::ReadRandom,
        ] {
            for op in 0..1000 {
                assert!(w.key_number(op, 500, &mut rng) < 500);
            }
        }
        // FillSeq is sequential.
        assert_eq!(DbBenchWorkload::FillSeq.key_number(7, 100, &mut rng), 7);
    }
}
