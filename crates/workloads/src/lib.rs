//! Workload generation: LevelDB's `db_bench` key/value conventions and
//! the YCSB core workloads (paper §VII-A and §VII-D).

pub mod dbbench;
pub mod dist;
pub mod ycsb;

pub use dbbench::{DbBenchWorkload, KeyFormat, ValueGenerator};
pub use dist::{Distribution, Latest, ScrambledZipfian, Uniform, Zipfian};
pub use ycsb::{OpKind, YcsbOp, YcsbRunner, YcsbWorkload};
