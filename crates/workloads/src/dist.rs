//! Request distributions, matching the YCSB reference generators:
//! uniform, zipfian (Gray et al.'s incremental algorithm), scrambled
//! zipfian, and "latest".

use simkit::SplitMix64;

/// A generator of item indices in `[0, n)`.
pub trait Distribution {
    /// Draws the next index given the current item count `n`.
    fn next(&mut self, n: u64) -> u64;
}

/// Uniform over `[0, n)`.
pub struct Uniform {
    rng: SplitMix64,
}

impl Uniform {
    /// Creates a uniform generator.
    pub fn new(seed: u64) -> Self {
        Uniform {
            rng: SplitMix64::new(seed),
        }
    }
}

impl Distribution for Uniform {
    fn next(&mut self, n: u64) -> u64 {
        self.rng.next_below(n.max(1))
    }
}

/// Zipfian over `[0, n)` with the YCSB default constant θ = 0.99,
/// favouring small indices. Uses the standard rejection-free inverse
/// method with cached ζ values (recomputed only when `n` grows).
pub struct Zipfian {
    rng: SplitMix64,
    theta: f64,
    /// Item count the cached constants were computed for.
    cached_n: u64,
    zeta_n: f64,
    zeta2: f64,
    alpha: f64,
    eta: f64,
}

impl Zipfian {
    /// YCSB's default skew constant.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a zipfian generator.
    pub fn new(seed: u64, theta: f64) -> Self {
        Zipfian {
            rng: SplitMix64::new(seed),
            theta,
            cached_n: 0,
            zeta_n: 0.0,
            zeta2: 0.0,
            alpha: 0.0,
            eta: 0.0,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Direct sum; for the item counts used in experiments (<= ~100M)
        // an Euler-Maclaurin approximation keeps this O(1) beyond 10^6.
        if n <= 1_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=1_000_000u64)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            // ∫_{10^6}^{n} x^-θ dx
            let a = 1.0 - theta;
            head + ((n as f64).powf(a) - 1_000_000f64.powf(a)) / a
        }
    }

    fn refresh(&mut self, n: u64) {
        // Item counts typically grow one insert at a time (YCSB Load/D);
        // extend the cached ζ incrementally instead of recomputing the
        // whole O(n) sum per call.
        self.zeta_n = if n > self.cached_n && self.cached_n > 0 && n - self.cached_n <= 1024 {
            let mut z = self.zeta_n;
            for i in self.cached_n + 1..=n {
                z += 1.0 / (i as f64).powf(self.theta);
            }
            z
        } else {
            Self::zeta(n, self.theta)
        };
        self.cached_n = n;
        self.zeta2 = Self::zeta(2, self.theta);
        self.alpha = 1.0 / (1.0 - self.theta);
        self.eta =
            (1.0 - (2.0 / n as f64).powf(1.0 - self.theta)) / (1.0 - self.zeta2 / self.zeta_n);
    }
}

impl Distribution for Zipfian {
    fn next(&mut self, n: u64) -> u64 {
        let n = n.max(2);
        if n != self.cached_n {
            self.refresh(n);
        }
        let u = self.rng.next_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let idx = (n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        idx.min(n - 1)
    }
}

/// Zipfian popularity spread over the whole key space by hashing
/// (YCSB `ScrambledZipfianGenerator`): hot items are scattered rather
/// than clustered at low indices.
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Creates a scrambled zipfian generator with the default θ.
    pub fn new(seed: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(seed, Zipfian::DEFAULT_THETA),
        }
    }
}

/// FNV-1a 64-bit, as YCSB uses for scrambling.
pub fn fnv1a(mut x: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for _ in 0..8 {
        h ^= x & 0xff;
        h = h.wrapping_mul(0x1000_0000_01b3);
        x >>= 8;
    }
    h
}

impl Distribution for ScrambledZipfian {
    fn next(&mut self, n: u64) -> u64 {
        let z = self.inner.next(n);
        fnv1a(z) % n.max(1)
    }
}

/// YCSB's "latest" distribution: like zipfian, but anchored to the most
/// recently inserted item (used by workload D).
pub struct Latest {
    inner: Zipfian,
}

impl Latest {
    /// Creates a latest-skewed generator.
    pub fn new(seed: u64) -> Self {
        Latest {
            inner: Zipfian::new(seed, Zipfian::DEFAULT_THETA),
        }
    }
}

impl Distribution for Latest {
    fn next(&mut self, n: u64) -> u64 {
        let n = n.max(1);
        let off = self.inner.next(n);
        n - 1 - off.min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(d: &mut dyn Distribution, n: u64, draws: usize) -> Vec<u64> {
        let mut h = vec![0u64; n as usize];
        for _ in 0..draws {
            let x = d.next(n);
            assert!(x < n);
            h[x as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_is_flat() {
        let mut d = Uniform::new(1);
        let h = histogram(&mut d, 10, 100_000);
        let expect = 10_000.0;
        for &c in &h {
            assert!((c as f64 - expect).abs() / expect < 0.1, "{h:?}");
        }
    }

    #[test]
    fn zipfian_is_skewed_and_monotone() {
        let mut d = Zipfian::new(2, Zipfian::DEFAULT_THETA);
        let h = histogram(&mut d, 100, 200_000);
        // Item 0 dominates; top-10 items take a large share.
        assert!(h[0] > h[10] && h[0] > h[50]);
        let top10: u64 = h[..10].iter().sum();
        let total: u64 = h.iter().sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "zipf(0.99): top-10 share {}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn scrambled_zipfian_spreads_hotspots() {
        let mut d = ScrambledZipfian::new(3);
        let h = histogram(&mut d, 100, 200_000);
        // Still very skewed overall...
        let max = *h.iter().max().unwrap();
        let total: u64 = h.iter().sum();
        assert!(
            max as f64 / total as f64 > 0.12,
            "max share {}",
            max as f64 / total as f64
        );
        // ...but the hottest item need not be index 0.
        let argmax = h.iter().enumerate().max_by_key(|(_, &c)| c).unwrap().0;
        let _ = argmax; // position is hash-determined; just ensure spread:
        let nonzero = h.iter().filter(|&&c| c > 0).count();
        assert!(nonzero > 50, "hashing should scatter mass: {nonzero}");
    }

    #[test]
    fn latest_prefers_recent_items() {
        let mut d = Latest::new(4);
        let h = histogram(&mut d, 100, 100_000);
        assert!(h[99] > h[0], "most recent item should dominate: {h:?}");
        let top: u64 = h[90..].iter().sum();
        let total: u64 = h.iter().sum();
        assert!(top as f64 / total as f64 > 0.5);
    }

    #[test]
    fn zipfian_handles_growing_n() {
        let mut d = Zipfian::new(5, Zipfian::DEFAULT_THETA);
        for n in [2u64, 10, 100, 1000, 10, 5000] {
            for _ in 0..100 {
                assert!(d.next(n) < n);
            }
        }
    }

    #[test]
    fn zeta_approximation_continuous() {
        // The large-n approximation should continue the exact sum smoothly.
        let exact = Zipfian::zeta(1_000_000, 0.99);
        let approx = Zipfian::zeta(1_000_001, 0.99);
        assert!(approx > exact);
        assert!(approx - exact < 1e-3);
    }
}
