//! YCSB core workloads (paper Table IX): Load (100% insert), A
//! (50/50 read/update), B (95/5), C (read-only), D (95/5 read/insert,
//! latest distribution), E (95/5 scan/insert), F (50/50
//! read/read-modify-write).

use simkit::SplitMix64;

use crate::dist::{Distribution, Latest, ScrambledZipfian};

/// Operation kinds a workload emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Insert a new record.
    Insert,
    /// Read one record.
    Read,
    /// Update (overwrite) one record.
    Update,
    /// Range scan starting at a record.
    Scan,
    /// Read-modify-write one record.
    ReadModifyWrite,
}

/// One generated operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct YcsbOp {
    /// What to do.
    pub kind: OpKind,
    /// Record index the operation targets.
    pub record: u64,
    /// Scan length (only for `Scan`).
    pub scan_len: u64,
}

/// The YCSB workload mixes from the paper's Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// 100% insert.
    Load,
    /// 50% read / 50% update, zipfian.
    A,
    /// 95% read / 5% update, zipfian.
    B,
    /// 100% read, zipfian.
    C,
    /// 95% read / 5% insert, latest.
    D,
    /// 95% scan / 5% insert, zipfian.
    E,
    /// 50% read / 50% read-modify-write, zipfian.
    F,
}

impl YcsbWorkload {
    /// All workloads, in the paper's presentation order.
    pub const ALL: [YcsbWorkload; 7] = [
        YcsbWorkload::Load,
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            YcsbWorkload::Load => "Load",
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }

    /// Fraction of operations that write (insert/update/RMW's write half).
    pub fn write_fraction(&self) -> f64 {
        match self {
            YcsbWorkload::Load => 1.0,
            YcsbWorkload::A => 0.5,
            YcsbWorkload::B => 0.05,
            YcsbWorkload::C => 0.0,
            YcsbWorkload::D => 0.05,
            YcsbWorkload::E => 0.05,
            YcsbWorkload::F => 0.5,
        }
    }
}

/// Stateful operation generator for one workload run.
pub struct YcsbRunner {
    workload: YcsbWorkload,
    rng: SplitMix64,
    zipf: ScrambledZipfian,
    latest: Latest,
    /// Records currently in the database (inserts grow it).
    pub record_count: u64,
    /// Average scan length for workload E (YCSB default: uniform 1..100,
    /// mean ~50).
    pub max_scan_len: u64,
}

impl YcsbRunner {
    /// Creates a runner over an initial `record_count` records.
    pub fn new(workload: YcsbWorkload, record_count: u64, seed: u64) -> Self {
        YcsbRunner {
            workload,
            rng: SplitMix64::new(seed),
            zipf: ScrambledZipfian::new(seed ^ 0x5eed),
            latest: Latest::new(seed ^ 0x1a7e57),
            record_count,
            max_scan_len: 100,
        }
    }

    /// Generates the next operation, updating the record count on insert.
    pub fn next_op(&mut self) -> YcsbOp {
        let n = self.record_count.max(1);
        let op = match self.workload {
            YcsbWorkload::Load => YcsbOp {
                kind: OpKind::Insert,
                record: self.record_count,
                scan_len: 0,
            },
            YcsbWorkload::A => self.mix(0.5, OpKind::Update, n),
            YcsbWorkload::B => self.mix(0.05, OpKind::Update, n),
            YcsbWorkload::C => YcsbOp {
                kind: OpKind::Read,
                record: self.zipf.next(n),
                scan_len: 0,
            },
            YcsbWorkload::D => {
                if self.rng.next_f64() < 0.05 {
                    YcsbOp {
                        kind: OpKind::Insert,
                        record: self.record_count,
                        scan_len: 0,
                    }
                } else {
                    YcsbOp {
                        kind: OpKind::Read,
                        record: self.latest.next(n),
                        scan_len: 0,
                    }
                }
            }
            YcsbWorkload::E => {
                if self.rng.next_f64() < 0.05 {
                    YcsbOp {
                        kind: OpKind::Insert,
                        record: self.record_count,
                        scan_len: 0,
                    }
                } else {
                    YcsbOp {
                        kind: OpKind::Scan,
                        record: self.zipf.next(n),
                        scan_len: 1 + self.rng.next_below(self.max_scan_len),
                    }
                }
            }
            YcsbWorkload::F => self.mix(0.5, OpKind::ReadModifyWrite, n),
        };
        if op.kind == OpKind::Insert {
            self.record_count += 1;
        }
        op
    }

    fn mix(&mut self, write_frac: f64, write_kind: OpKind, n: u64) -> YcsbOp {
        let kind = if self.rng.next_f64() < write_frac {
            write_kind
        } else {
            OpKind::Read
        };
        YcsbOp {
            kind,
            record: self.zipf.next(n),
            scan_len: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn mix_of(workload: YcsbWorkload, ops: usize) -> HashMap<OpKind, usize> {
        let mut r = YcsbRunner::new(workload, 10_000, 42);
        let mut counts = HashMap::new();
        for _ in 0..ops {
            let op = r.next_op();
            *counts.entry(op.kind).or_insert(0) += 1;
        }
        counts
    }

    fn frac(counts: &HashMap<OpKind, usize>, kind: OpKind, total: usize) -> f64 {
        *counts.get(&kind).unwrap_or(&0) as f64 / total as f64
    }

    #[test]
    fn workload_mixes_match_table_ix() {
        let n = 50_000;
        let a = mix_of(YcsbWorkload::A, n);
        assert!((frac(&a, OpKind::Read, n) - 0.5).abs() < 0.02);
        assert!((frac(&a, OpKind::Update, n) - 0.5).abs() < 0.02);

        let b = mix_of(YcsbWorkload::B, n);
        assert!((frac(&b, OpKind::Read, n) - 0.95).abs() < 0.01);

        let c = mix_of(YcsbWorkload::C, n);
        assert_eq!(frac(&c, OpKind::Read, n), 1.0);

        let d = mix_of(YcsbWorkload::D, n);
        assert!((frac(&d, OpKind::Insert, n) - 0.05).abs() < 0.01);

        let e = mix_of(YcsbWorkload::E, n);
        assert!((frac(&e, OpKind::Scan, n) - 0.95).abs() < 0.01);

        let f = mix_of(YcsbWorkload::F, n);
        assert!((frac(&f, OpKind::ReadModifyWrite, n) - 0.5).abs() < 0.02);

        let load = mix_of(YcsbWorkload::Load, n);
        assert_eq!(frac(&load, OpKind::Insert, n), 1.0);
    }

    #[test]
    fn inserts_grow_the_record_count() {
        let mut r = YcsbRunner::new(YcsbWorkload::Load, 0, 1);
        for i in 0..100 {
            let op = r.next_op();
            assert_eq!(op.record, i, "loads insert sequentially");
        }
        assert_eq!(r.record_count, 100);
    }

    #[test]
    fn reads_stay_in_range_as_db_grows() {
        let mut r = YcsbRunner::new(YcsbWorkload::D, 100, 2);
        for _ in 0..10_000 {
            let op = r.next_op();
            assert!(op.record < r.record_count.max(1) + 1);
        }
        assert!(r.record_count > 100, "inserts should have grown the DB");
    }

    #[test]
    fn scan_lengths_bounded() {
        let mut r = YcsbRunner::new(YcsbWorkload::E, 1000, 3);
        for _ in 0..10_000 {
            let op = r.next_op();
            if op.kind == OpKind::Scan {
                assert!((1..=100).contains(&op.scan_len));
            }
        }
    }

    #[test]
    fn write_fractions_consistent() {
        assert_eq!(YcsbWorkload::Load.write_fraction(), 1.0);
        assert_eq!(YcsbWorkload::C.write_fraction(), 0.0);
        assert!(YcsbWorkload::A.write_fraction() > YcsbWorkload::B.write_fraction());
    }
}
