//! Property tests for workload generation invariants.

use proptest::prelude::*;
use workloads::{KeyFormat, ValueGenerator, YcsbRunner, YcsbWorkload};

proptest! {
    /// db_bench key formatting preserves numeric order at every width,
    /// for key numbers within the width's key space.
    #[test]
    fn key_format_preserves_order(
        pair in (any::<u64>(), any::<u64>()),
        key_len in prop::sample::select(vec![8usize, 16, 64, 256]),
    ) {
        let kf = KeyFormat { key_len };
        let space = kf.key_space();
        let (mut x, mut y) = (pair.0 % space, pair.1 % space);
        if x > y {
            std::mem::swap(&mut x, &mut y);
        }
        let a = kf.format(x);
        let b = kf.format(y);
        prop_assert_eq!(a.len(), key_len);
        prop_assert_eq!(b.len(), key_len);
        if x != y {
            prop_assert!(a < b, "order broken: {x} vs {y}");
        } else {
            prop_assert_eq!(a, b);
        }
    }

    /// Value generation always returns the requested length (within the
    /// pool bound) and never panics.
    #[test]
    fn value_generator_lengths(
        seed in any::<u64>(),
        ratio in 0.0f64..1.5,
        lens in proptest::collection::vec(1usize..4096, 1..50),
    ) {
        let mut g = ValueGenerator::new(seed, ratio);
        for len in lens {
            prop_assert_eq!(g.generate(len).len(), len);
        }
    }

    /// Every YCSB op stream keeps records in range and the record count
    /// nondecreasing.
    #[test]
    fn ycsb_ops_well_formed(
        seed in any::<u64>(),
        initial in 1u64..10_000,
        ops in 1usize..2_000,
    ) {
        for w in YcsbWorkload::ALL {
            let mut r = YcsbRunner::new(w, initial, seed);
            let mut last_count = r.record_count;
            for _ in 0..ops {
                let op = r.next_op();
                prop_assert!(op.record <= r.record_count);
                prop_assert!(r.record_count >= last_count);
                last_count = r.record_count;
            }
        }
    }
}
