//! `lsm-dbtool` — inspect and verify databases and SSTables.
//!
//! ```sh
//! lsm-dbtool stats  <db-dir>     # levels, file counts, manifest state
//! lsm-dbtool verify <db-dir>     # full scan with checksum verification
//! lsm-dbtool dump   <table.ldb>  # print every entry of one table
//! lsm-dbtool get    <db-dir> <key>
//! lsm-dbtool repair <db-dir>     # rebuild MANIFEST from tables + WALs
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

use lsm::filename::{parse_file_name, FileType};
use lsm::{Db, Options};
use sstable::comparator::InternalKeyComparator;
use sstable::env::{StdEnv, StorageEnv};
use sstable::ikey::parse_internal_key;
use sstable::iterator::InternalIterator;
use sstable::table::{Table, TableReadOptions};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, dir] if cmd == "stats" => stats(Path::new(dir)),
        [cmd, dir] if cmd == "verify" => verify(Path::new(dir)),
        [cmd, file] if cmd == "dump" => dump(Path::new(file)),
        [cmd, dir, key] if cmd == "get" => get(Path::new(dir), key.as_bytes()),
        [cmd, dir] if cmd == "repair" => repair(Path::new(dir)),
        _ => {
            eprintln!(
                "usage: lsm-dbtool <stats|verify|repair> <db-dir> | dump <table.ldb> | get <db-dir> <key>"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn open_db(dir: &Path) -> lsm::Result<Db> {
    Db::open(
        dir,
        Options {
            slowdown_sleep: false,
            ..Default::default()
        },
    )
}

fn stats(dir: &Path) -> lsm::Result<()> {
    let env = StdEnv;
    let mut logs = 0usize;
    let mut tables: Vec<(u64, u64)> = Vec::new();
    let mut manifests = 0usize;
    for name in env.list_dir(dir).map_err(lsm::Error::from)? {
        match parse_file_name(&name) {
            Some(FileType::Log(_)) => logs += 1,
            Some(FileType::Table(n)) => {
                let size = env
                    .open_random_access(&dir.join(&name))
                    .and_then(|f| f.len())
                    .unwrap_or(0);
                tables.push((n, size));
            }
            Some(FileType::Manifest(_)) => manifests += 1,
            _ => {}
        }
    }
    tables.sort_unstable();
    println!("database: {}", dir.display());
    println!("  WAL files:      {logs}");
    println!("  MANIFEST files: {manifests}");
    println!(
        "  SSTables:       {} ({} bytes total)",
        tables.len(),
        tables.iter().map(|(_, s)| s).sum::<u64>()
    );

    let db = open_db(dir)?;
    let counts = db.level_file_counts();
    for (level, count) in counts.iter().enumerate() {
        if *count > 0 {
            println!("  level {level}: {count} files");
        }
    }
    Ok(())
}

fn verify(dir: &Path) -> lsm::Result<()> {
    let db = open_db(dir)?;
    let rows = db.scan(b"", None, usize::MAX)?;
    let mut last: Option<Vec<u8>> = None;
    for (k, _) in &rows {
        if let Some(prev) = &last {
            if prev >= k {
                return Err(lsm::Error::Corruption(format!(
                    "scan order violation at key {:?}",
                    String::from_utf8_lossy(k)
                )));
            }
        }
        last = Some(k.clone());
    }
    println!(
        "ok: {} live keys, scan ordered, checksums verified",
        rows.len()
    );
    Ok(())
}

fn dump(file: &Path) -> lsm::Result<()> {
    let env = StdEnv;
    let f = env.open_random_access(file).map_err(lsm::Error::from)?;
    let size = f.len().map_err(lsm::Error::from)?;
    let opts = TableReadOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        ..Default::default()
    };
    let table = Table::open(f, size, opts).map_err(lsm::Error::from)?;
    let mut it = table.iter();
    it.seek_to_first();
    let mut n = 0u64;
    while it.valid() {
        match parse_internal_key(it.key()) {
            Some(p) => println!(
                "{:?} @ seq {} [{}] => {} bytes",
                String::from_utf8_lossy(p.user_key),
                p.sequence,
                match p.value_type {
                    sstable::ikey::ValueType::Value => "put",
                    sstable::ikey::ValueType::Deletion => "del",
                },
                it.value().len()
            ),
            None => println!("<unparseable internal key: {:?}>", it.key()),
        }
        n += 1;
        it.next();
    }
    it.status().map_err(lsm::Error::from)?;
    println!("-- {n} entries, {size} bytes");
    Ok(())
}

fn get(dir: &Path, key: &[u8]) -> lsm::Result<()> {
    let db = open_db(dir)?;
    match db.get(key)? {
        Some(v) => {
            println!("{}", String::from_utf8_lossy(&v));
            Ok(())
        }
        None => Err(lsm::Error::InvalidArgument("key not found".into())),
    }
}

fn repair(dir: &Path) -> lsm::Result<()> {
    let options = Options {
        slowdown_sleep: false,
        ..Default::default()
    };
    let report = lsm::repair_db(dir, &options)?;
    println!(
        "repaired: {} tables recovered, {} quarantined, {} WALs salvaged ({} entries), last seq {}",
        report.tables_recovered,
        report.tables_lost,
        report.logs_salvaged,
        report.log_entries_salvaged,
        report.max_sequence
    );
    Ok(())
}

// Keep PathBuf in scope for future subcommands without a warning churn.
#[allow(dead_code)]
type _P = PathBuf;
