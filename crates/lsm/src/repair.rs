//! Database repair (LevelDB's `RepairDB`): reconstruct a usable MANIFEST
//! for a directory whose metadata is lost or corrupt.
//!
//! Strategy, as in LevelDB:
//! 1. salvage every WAL into a fresh L0 table (best-effort: corrupt tails
//!    are dropped by the log reader's recovery semantics);
//! 2. scan every readable table for its key range and maximum sequence
//!    number (unreadable tables are moved aside to `lost/`);
//! 3. write a new MANIFEST placing all recovered tables at level 0 —
//!    the only level that tolerates arbitrary key-range overlap — and
//!    point CURRENT at it. The next open compacts them back into shape.

use std::path::Path;

use sstable::comparator::InternalKeyComparator;
use sstable::ikey::{parse_internal_key, InternalKey, ValueType};
use sstable::iterator::InternalIterator;
use sstable::table::Table;
use sstable::table_builder::TableBuilder;

use crate::filename::{
    current_file_name, manifest_file_name, parse_file_name, table_file_name, FileType,
};
use crate::memtable::MemTable;
use crate::options::Options;
use crate::version::{FileMetaData, VersionEdit};
use crate::vlog::{self, PointerCheck, Stored};
use crate::wal::{LogReader, LogWriter};
use crate::write_batch::{BatchOp, WriteBatch};
use crate::{Error, Result};

/// Summary of a repair run.
#[derive(Debug, Default, Clone)]
pub struct RepairReport {
    /// Tables recovered intact.
    pub tables_recovered: usize,
    /// Tables moved aside as unreadable.
    pub tables_lost: usize,
    /// WAL files salvaged into new tables.
    pub logs_salvaged: usize,
    /// Entries salvaged out of WALs.
    pub log_entries_salvaged: u64,
    /// Highest sequence number observed.
    pub max_sequence: u64,
    /// Corrupt tables that could not be moved into `lost/` (path and
    /// error). These files are still in the database directory; the
    /// caller must deal with them before reopening, because a later
    /// repair or open may trip over them again.
    pub quarantine_failures: Vec<String>,
    /// Value-log segments whose torn tail was truncated back to the last
    /// whole record (key-value separation only).
    pub vlog_segments_truncated: usize,
    /// WAL operations dropped because their value-log pointer referenced
    /// a torn, missing, or corrupt record. These writes were never
    /// durably acknowledged (the vlog syncs before the WAL) or lost
    /// their segment; salvaging the dangling pointer would resurrect an
    /// unreadable value.
    pub vlog_dangling_dropped: u64,
}

/// Rebuilds the MANIFEST/CURRENT for the database in `dir`.
///
/// Safe to run on a healthy database (it rewrites equivalent metadata,
/// though level assignments reset to L0). Requires that no [`crate::Db`]
/// has the directory open.
pub fn repair_db(dir: impl AsRef<Path>, options: &Options) -> Result<RepairReport> {
    let dir = dir.as_ref();
    let env = &options.env;
    let mut report = RepairReport::default();

    let mut table_numbers = Vec::new();
    let mut log_numbers = Vec::new();
    let mut max_number = 1u64;
    for name in env.list_dir(dir)? {
        match parse_file_name(&name) {
            Some(FileType::Table(n)) => {
                table_numbers.push(n);
                max_number = max_number.max(n);
            }
            Some(FileType::Log(n)) => {
                log_numbers.push(n);
                max_number = max_number.max(n);
            }
            Some(FileType::Manifest(n)) | Some(FileType::Temp(n)) => {
                max_number = max_number.max(n);
            }
            Some(FileType::ValueLog(n)) => {
                max_number = max_number.max(n);
            }
            _ => {}
        }
    }
    table_numbers.sort_unstable();
    log_numbers.sort_unstable();
    let mut next_number = max_number + 1;

    // 0. With key-value separation on, make the value log honest before
    // anything dereferences it: cut each segment's torn tail back to the
    // last whole record, so the pointer checks below see the same durable
    // prefix a normal recovery would.
    let separation = options.value_log_threshold_bytes.is_some();
    if separation {
        for segment in vlog::list_segments(env.as_ref(), dir)? {
            let path = crate::filename::vlog_file_name(dir, segment);
            let before = env.open_random_access(&path)?.len().map_err(Error::from)?;
            let after = vlog::truncate_torn_tail(env.as_ref(), dir, segment)?;
            if after < before {
                report.vlog_segments_truncated += 1;
            }
        }
    }

    // 1. Salvage WALs oldest-first into fresh tables.
    let icmp = InternalKeyComparator::default();
    for log in &log_numbers {
        let path = crate::filename::log_file_name(dir, *log);
        let Ok(file) = env.open_random_access(&path) else {
            continue;
        };
        let Ok(mut reader) = LogReader::new(file.as_ref()) else {
            continue;
        };
        let mem = MemTable::new(icmp.clone());
        while let Some(record) = reader.read_record() {
            let Ok(batch) = WriteBatch::from_data(&record) else {
                continue;
            };
            let _ = batch.iterate(|op, seq| {
                report.max_sequence = report.max_sequence.max(seq);
                match op {
                    BatchOp::Put { key, value } => {
                        if separation {
                            // Stored bytes are tagged; drop any pointer
                            // that no longer dereferences (its value was
                            // never durable or its segment is gone).
                            match vlog::decode_stored(value) {
                                Ok(Stored::Inline(_)) => {}
                                Ok(Stored::Pointer(ptr)) => {
                                    match vlog::check_pointer_in(env.as_ref(), dir, ptr) {
                                        PointerCheck::Ok => {}
                                        PointerCheck::TornTail
                                        | PointerCheck::MissingSegment
                                        | PointerCheck::Corrupt => {
                                            report.vlog_dangling_dropped += 1;
                                            return;
                                        }
                                    }
                                }
                                Err(_) => {
                                    report.vlog_dangling_dropped += 1;
                                    return;
                                }
                            }
                        }
                        mem.add(seq, ValueType::Value, key, value);
                    }
                    BatchOp::Delete { key } => mem.add(seq, ValueType::Deletion, key, &[]),
                }
            });
        }
        if mem.is_empty() {
            continue;
        }
        report.log_entries_salvaged += mem.len() as u64;
        let number = next_number;
        next_number += 1;
        let mut it = mem.iter();
        it.seek_to_first();
        let out = env.create_writable(&table_file_name(dir, number))?;
        let mut builder = TableBuilder::new(options.table_builder_options(), out);
        while it.valid() {
            builder.add(it.key(), it.value())?;
            it.next();
        }
        builder.finish()?;
        builder.sync()?;
        table_numbers.push(number);
        report.logs_salvaged += 1;
    }

    // 2. Scan tables for metadata; quarantine unreadable ones.
    let read_opts = options.table_read_options();
    let mut scanned: Vec<(u64, FileMetaData, u64)> = Vec::new();
    for number in table_numbers {
        let path = table_file_name(dir, number);
        match scan_table(env.as_ref(), &path, &read_opts) {
            Ok(Some((meta, max_seq))) => {
                report.max_sequence = report.max_sequence.max(max_seq);
                scanned.push((number, meta, max_seq));
                report.tables_recovered += 1;
            }
            Ok(None) => {
                // Empty table: drop it.
                let _ = env.remove_file(&path);
            }
            Err(_) => {
                if let Err(e) = quarantine(env.as_ref(), dir, &path) {
                    let failure = format!("{}: {e}", path.display());
                    if let Some(obs) = &options.obs {
                        obs.event(obs::EventKind::QuarantineFailure {
                            path: failure.clone(),
                        });
                    }
                    report.quarantine_failures.push(failure);
                }
                report.tables_lost += 1;
            }
        }
    }

    // Everything lands at L0, where lookups read files newest-first *by
    // file number*. Compaction outputs carry old data under high numbers,
    // so renumber recovered tables in max-sequence order — number order
    // then matches data age again.
    scanned.sort_by_key(|(_, _, max_seq)| *max_seq);
    let mut metas: Vec<FileMetaData> = Vec::new();
    for (old_number, meta, _) in scanned {
        let new_number = next_number;
        next_number += 1;
        env.rename(
            &table_file_name(dir, old_number),
            &table_file_name(dir, new_number),
        )?;
        metas.push(FileMetaData {
            number: new_number,
            ..meta
        });
    }

    // 3. Fresh MANIFEST with everything at L0 (ordered newest-first by
    // file number, the L0 convention).
    let manifest_number = next_number;
    next_number += 1;
    let mut edit = VersionEdit {
        log_number: Some(next_number),
        next_file_number: Some(next_number + 1),
        last_sequence: Some(report.max_sequence),
        ..Default::default()
    };
    for meta in metas {
        edit.new_files.push((0, meta));
    }
    let manifest_path = manifest_file_name(dir, manifest_number);
    let file = env.create_writable(&manifest_path)?;
    let mut writer = LogWriter::new(file);
    writer.add_record(&edit.encode())?;
    writer.sync()?;

    // Point CURRENT at it (atomic rename).
    let tmp = crate::filename::temp_file_name(dir, manifest_number);
    let mut f = env.create_writable(&tmp)?;
    f.append(format!("MANIFEST-{manifest_number:06}\n").as_bytes())?;
    f.sync()?;
    drop(f);
    env.rename(&tmp, &current_file_name(dir))?;

    // Old manifests and salvaged logs are obsolete.
    for name in env.list_dir(dir)? {
        match parse_file_name(&name) {
            Some(FileType::Manifest(n)) if n != manifest_number => {
                let _ = env.remove_file(&dir.join(&name));
            }
            Some(FileType::Log(_)) => {
                let _ = env.remove_file(&dir.join(&name));
            }
            _ => {}
        }
    }
    Ok(report)
}

/// Reads one table's smallest/largest internal keys and max sequence.
fn scan_table(
    env: &dyn sstable::env::StorageEnv,
    path: &Path,
    read_opts: &sstable::table::TableReadOptions,
) -> Result<Option<(FileMetaData, u64)>> {
    let file = env.open_random_access(path)?;
    let size = file.len().map_err(Error::from)?;
    let table = Table::open(file, size, read_opts.clone())?;
    let mut it = table.iter();
    it.seek_to_first();
    if !it.valid() {
        it.status().map_err(Error::from)?;
        return Ok(None);
    }
    let smallest = InternalKey::from_encoded(it.key().to_vec());
    let mut largest = InternalKey::from_encoded(it.key().to_vec());
    let mut max_seq = 0u64;
    while it.valid() {
        let parsed = parse_internal_key(it.key())
            .ok_or_else(|| Error::Corruption("unparseable internal key".into()))?;
        max_seq = max_seq.max(parsed.sequence);
        largest = InternalKey::from_encoded(it.key().to_vec());
        it.next();
    }
    it.status().map_err(Error::from)?;
    Ok(Some((
        FileMetaData {
            number: 0,
            file_size: size,
            smallest,
            largest,
        },
        max_seq,
    )))
}

/// Moves an unreadable file into `lost/`. A failure here must reach the
/// caller: a corrupt table left in place can shadow repaired data or
/// fail the next open, so "couldn't move it" is a reportable outcome,
/// not a shrug.
fn quarantine(env: &dyn sstable::env::StorageEnv, dir: &Path, path: &Path) -> Result<()> {
    let lost = dir.join("lost");
    env.create_dir_all(&lost)?;
    // The lost/ directory entry must be durable before the file moves
    // into it — a crash between the two could otherwise drop the moved
    // file with its destination directory.
    env.sync_dir(dir)?;
    let name = path
        .file_name()
        .ok_or_else(|| Error::Corruption(format!("no file name in {}", path.display())))?;
    env.rename(path, &lost.join(name))?;
    // Publish the move itself: reopen-after-crash must not find the
    // quarantined table back in the live directory.
    env.sync_dir(dir)?;
    env.sync_dir(&lost)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Db;
    use sstable::env::MemEnv;
    use std::sync::Arc;

    fn mem_options(env: &Arc<MemEnv>) -> Options {
        Options {
            env: Arc::clone(env) as Arc<dyn sstable::env::StorageEnv>,
            write_buffer_size: 32 << 10,
            max_file_size: 16 << 10,
            slowdown_sleep: false,
            ..Default::default()
        }
    }

    fn destroy_metadata(env: &Arc<MemEnv>, dir: &Path) {
        use sstable::env::StorageEnv as _;
        for name in env.list_dir(dir).unwrap() {
            match parse_file_name(&name) {
                Some(FileType::Manifest(_)) | Some(FileType::Current) => {
                    env.remove_file(&dir.join(&name)).unwrap();
                }
                _ => {}
            }
        }
    }

    #[test]
    fn repair_recovers_after_manifest_loss() {
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        {
            let db = Db::open(dir, mem_options(&env)).unwrap();
            for i in 0..2_000u64 {
                db.put(format!("{i:08}").as_bytes(), format!("v{i}").as_bytes())
                    .unwrap();
            }
            db.delete(b"00000007").unwrap();
            db.flush().unwrap();
            db.wait_for_background_quiescence();
            // Tail writes live only in the WAL.
            db.put(b"wal-only", b"tail").unwrap();
        }
        destroy_metadata(&env, dir);
        // Opening now fails (no CURRENT -> fresh DB would be empty); run
        // repair instead.
        let report = repair_db(dir, &mem_options(&env)).unwrap();
        assert!(report.tables_recovered > 0, "{report:?}");
        assert!(report.logs_salvaged > 0, "{report:?}");

        let db = Db::open(dir, mem_options(&env)).unwrap();
        assert_eq!(db.get(b"00000042").unwrap(), Some(b"v42".to_vec()));
        assert_eq!(
            db.get(b"00000007").unwrap(),
            None,
            "tombstone survives repair"
        );
        assert_eq!(db.get(b"wal-only").unwrap(), Some(b"tail".to_vec()));
        // Every key present.
        for i in (0..2_000u64).step_by(97) {
            if i == 7 {
                continue;
            }
            assert_eq!(
                db.get(format!("{i:08}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes()),
                "{i}"
            );
        }
    }

    #[test]
    fn repair_quarantines_corrupt_tables() {
        use sstable::env::StorageEnv as _;
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        {
            let db = Db::open(dir, mem_options(&env)).unwrap();
            for i in 0..1_000u64 {
                db.put(format!("{i:08}").as_bytes(), &[7u8; 100]).unwrap();
            }
            db.flush().unwrap();
            db.wait_for_background_quiescence();
        }
        destroy_metadata(&env, dir);
        // Corrupt one table's footer.
        let victim = env
            .list_dir(dir)
            .unwrap()
            .into_iter()
            .find(|n| matches!(parse_file_name(n), Some(FileType::Table(_))))
            .expect("some table exists");
        let path = dir.join(&victim);
        let bytes = env.open_random_access(&path).unwrap().read_all().unwrap();
        let mut w = env.create_writable(&path).unwrap();
        w.append(&bytes[..bytes.len() / 2]).unwrap();
        drop(w);

        let report = repair_db(dir, &mem_options(&env)).unwrap();
        assert_eq!(report.tables_lost, 1, "{report:?}");
        assert!(report.tables_recovered >= 1);

        // The store opens; surviving data is readable.
        let db = Db::open(dir, mem_options(&env)).unwrap();
        let rows = db.scan(b"", None, usize::MAX).unwrap();
        assert!(!rows.is_empty());
    }

    /// MemEnv wrapper whose renames into `lost/` fail, emulating a
    /// read-only or full filesystem during quarantine.
    struct RenameFailEnv {
        inner: Arc<MemEnv>,
    }

    impl sstable::env::StorageEnv for RenameFailEnv {
        fn open_random_access(
            &self,
            path: &Path,
        ) -> sstable::Result<Box<dyn sstable::env::RandomAccessFile>> {
            self.inner.open_random_access(path)
        }
        fn create_writable(
            &self,
            path: &Path,
        ) -> sstable::Result<Box<dyn sstable::env::WritableFile>> {
            self.inner.create_writable(path)
        }
        fn remove_file(&self, path: &Path) -> sstable::Result<()> {
            self.inner.remove_file(path)
        }
        fn create_dir_all(&self, path: &Path) -> sstable::Result<()> {
            self.inner.create_dir_all(path)
        }
        fn list_dir(&self, path: &Path) -> sstable::Result<Vec<String>> {
            self.inner.list_dir(path)
        }
        fn file_exists(&self, path: &Path) -> bool {
            self.inner.file_exists(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> sstable::Result<()> {
            if to.components().any(|c| c.as_os_str() == "lost") {
                return Err(sstable::Error::Io(std::io::Error::new(
                    std::io::ErrorKind::PermissionDenied,
                    "injected rename failure",
                )));
            }
            self.inner.rename(from, to)
        }
    }

    /// Regression: `quarantine` used to swallow rename errors with
    /// `let _ =`, silently leaving the corrupt table in the directory
    /// with no record of the failure. It must now surface in the report
    /// and on the trace.
    #[test]
    fn quarantine_failure_is_reported_not_swallowed() {
        use sstable::env::StorageEnv as _;
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        {
            let db = Db::open(dir, mem_options(&env)).unwrap();
            for i in 0..1_000u64 {
                db.put(format!("{i:08}").as_bytes(), &[7u8; 100]).unwrap();
            }
            db.flush().unwrap();
            db.wait_for_background_quiescence();
        }
        destroy_metadata(&env, dir);
        // Corrupt one table's footer.
        let victim = env
            .list_dir(dir)
            .unwrap()
            .into_iter()
            .find(|n| matches!(parse_file_name(n), Some(FileType::Table(_))))
            .expect("some table exists");
        let path = dir.join(&victim);
        let bytes = env.open_random_access(&path).unwrap().read_all().unwrap();
        let mut w = env.create_writable(&path).unwrap();
        w.append(&bytes[..bytes.len() / 2]).unwrap();
        drop(w);

        let (obs, _clock) = obs::Obs::manual();
        let options = Options {
            env: Arc::new(RenameFailEnv {
                inner: Arc::clone(&env),
            }) as Arc<dyn sstable::env::StorageEnv>,
            obs: Some(Arc::clone(&obs)),
            ..mem_options(&env)
        };
        let report = repair_db(dir, &options).unwrap();
        assert_eq!(report.tables_lost, 1, "{report:?}");
        assert_eq!(report.quarantine_failures.len(), 1, "{report:?}");
        assert!(
            report.quarantine_failures[0].contains(&victim),
            "failure must name the stuck file: {report:?}"
        );
        assert!(
            report.quarantine_failures[0].contains("injected rename failure"),
            "failure must carry the error: {report:?}"
        );
        let events = obs.trace.snapshot();
        assert!(
            events.iter().any(
                |e| matches!(&e.kind, obs::EventKind::QuarantineFailure { path }
                    if path.contains(&victim))
            ),
            "trace must record the quarantine failure: {events:?}"
        );
    }

    /// Torn value-log tails are cut back to the last whole record and
    /// surviving pointers still dereference after repair.
    #[test]
    fn repair_truncates_torn_vlog_tail() {
        use sstable::env::StorageEnv as _;
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        let options = Options {
            value_log_threshold_bytes: Some(128),
            ..mem_options(&env)
        };
        {
            let db = Db::open(dir, options.clone()).unwrap();
            db.put(b"small", b"inline").unwrap();
            db.put(b"big", &[b'a'; 1024]).unwrap();
        }
        destroy_metadata(&env, dir);
        // Tear the active segment: valid records plus a short garbage tail.
        let seg = env
            .list_dir(dir)
            .unwrap()
            .into_iter()
            .find(|n| matches!(parse_file_name(n), Some(FileType::ValueLog(_))))
            .expect("segment exists");
        let path = dir.join(&seg);
        let bytes = env.open_random_access(&path).unwrap().read_all().unwrap();
        let mut w = env.create_writable(&path).unwrap();
        w.append(&bytes).unwrap();
        w.append(&[0xEE; 7]).unwrap();
        drop(w);

        let report = repair_db(dir, &options).unwrap();
        assert_eq!(report.vlog_segments_truncated, 1, "{report:?}");
        assert_eq!(report.vlog_dangling_dropped, 0, "{report:?}");

        let db = Db::open(dir, options).unwrap();
        assert_eq!(db.get(b"small").unwrap(), Some(b"inline".to_vec()));
        assert_eq!(db.get(b"big").unwrap(), Some(vec![b'a'; 1024]));
    }

    /// Pointers into a lost segment are dropped during WAL salvage
    /// instead of resurrecting unreadable values.
    #[test]
    fn repair_drops_dangling_vlog_pointers() {
        use sstable::env::StorageEnv as _;
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        let options = Options {
            value_log_threshold_bytes: Some(128),
            ..mem_options(&env)
        };
        {
            let db = Db::open(dir, options.clone()).unwrap();
            db.put(b"small", b"inline").unwrap();
            db.put(b"big", &[b'a'; 1024]).unwrap();
        }
        destroy_metadata(&env, dir);
        for name in env.list_dir(dir).unwrap() {
            if matches!(parse_file_name(&name), Some(FileType::ValueLog(_))) {
                env.remove_file(&dir.join(&name)).unwrap();
            }
        }
        let report = repair_db(dir, &options).unwrap();
        assert_eq!(report.vlog_dangling_dropped, 1, "{report:?}");

        let db = Db::open(dir, options).unwrap();
        assert_eq!(db.get(b"small").unwrap(), Some(b"inline".to_vec()));
        assert_eq!(db.get(b"big").unwrap(), None, "dangling pointer dropped");
    }

    #[test]
    fn repair_on_healthy_db_is_lossless() {
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        {
            let db = Db::open(dir, mem_options(&env)).unwrap();
            for i in 0..500u64 {
                db.put(format!("{i:08}").as_bytes(), b"x").unwrap();
            }
            db.flush().unwrap();
            db.wait_for_background_quiescence();
        }
        repair_db(dir, &mem_options(&env)).unwrap();
        let db = Db::open(dir, mem_options(&env)).unwrap();
        for i in (0..500u64).step_by(41) {
            assert!(db.get(format!("{i:08}").as_bytes()).unwrap().is_some());
        }
    }
}

#[cfg(test)]
mod age_ordering_tests {
    use super::*;
    use crate::Db;
    use sstable::env::MemEnv;
    use std::sync::Arc;

    /// Overwrites spread across compacted levels: after repair, the newest
    /// version of every key must still win even though compaction outputs
    /// carried old data under high file numbers.
    #[test]
    fn repair_preserves_version_order_across_overwrites() {
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        let options = Options {
            env: Arc::clone(&env) as Arc<dyn sstable::env::StorageEnv>,
            write_buffer_size: 16 << 10,
            max_file_size: 8 << 10,
            level1_max_bytes: 32 << 10,
            slowdown_sleep: false,
            ..Default::default()
        };
        {
            let db = Db::open(dir, options.clone()).unwrap();
            // Three generations of the same keys, with compactions between.
            for round in 0..3u64 {
                for i in 0..600u64 {
                    db.put(
                        format!("{i:06}").as_bytes(),
                        format!("round-{round}").as_bytes(),
                    )
                    .unwrap();
                }
                db.flush().unwrap();
                db.wait_for_background_quiescence();
            }
        }
        // Lose the metadata, repair, reopen.
        use sstable::env::StorageEnv as _;
        for name in env.list_dir(dir).unwrap() {
            if matches!(
                parse_file_name(&name),
                Some(FileType::Manifest(_)) | Some(FileType::Current)
            ) {
                env.remove_file(&dir.join(&name)).unwrap();
            }
        }
        repair_db(dir, &options).unwrap();
        let db = Db::open(dir, options).unwrap();
        for i in (0..600u64).step_by(13) {
            assert_eq!(
                db.get(format!("{i:06}").as_bytes()).unwrap(),
                Some(b"round-2".to_vec()),
                "key {i} must read its newest version"
            );
        }
    }
}
