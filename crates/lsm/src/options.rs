//! Store configuration. Defaults follow the paper's Table IV (key 16 B,
//! value 128 B workloads; leveling ratio 10; 4 KiB data blocks) and
//! LevelDB v1.x's built-in constants.

use std::sync::Arc;

use sstable::bloom::BloomFilterPolicy;
use sstable::cache::BlockCache;
use sstable::env::{StdEnv, StorageEnv};
use sstable::format::CompressionType;

/// Number of levels, as in LevelDB.
pub const NUM_LEVELS: usize = 7;

/// L0 file count that triggers a compaction.
pub const L0_COMPACTION_TRIGGER: usize = 4;
/// L0 file count at which writes are slowed (1 ms sleep per write).
pub const L0_SLOWDOWN_WRITES_TRIGGER: usize = 8;
/// L0 file count at which writes stop until compaction catches up.
pub const L0_STOP_WRITES_TRIGGER: usize = 12;

/// Tuning knobs for a [`crate::Db`].
#[derive(Clone)]
pub struct Options {
    /// Memtable capacity before it is rotated to immutable (LevelDB
    /// `write_buffer_size`, default 4 MiB).
    pub write_buffer_size: usize,
    /// Target uncompressed data block size (paper Table IV default 4 KiB).
    pub block_size: usize,
    /// Target SSTable file size (paper §V-A example: 2 MiB).
    pub max_file_size: u64,
    /// Size ratio between adjacent levels (paper Table IV default 10).
    pub leveling_ratio: u64,
    /// Base size for level 1 (LevelDB: 10 MiB).
    pub level1_max_bytes: u64,
    /// Block compression.
    pub compression: CompressionType,
    /// Bloom filter bits per key; `None` disables filters.
    pub filter_bits_per_key: Option<usize>,
    /// Verify checksums on reads.
    pub verify_checksums: bool,
    /// Shared data-block cache capacity (LevelDB default 8 MiB);
    /// `None` disables the shared cache.
    pub block_cache_bytes: Option<usize>,
    /// Sync the WAL on every write (off by default, like db_bench).
    pub sync_writes: bool,
    /// Cap on bytes combined into one group commit (LevelDB groups up to
    /// ~1 MiB per WAL write). Serving layers with many concurrent small
    /// writers can raise this so more acks ride one sync; set it to 1 to
    /// effectively disable grouping.
    pub max_group_commit_bytes: usize,
    /// Skiplist shard count for the concurrent memtable. Concurrent
    /// writers serialize only per shard, so more shards admit more
    /// parallel inserts; one shard reproduces the old single-writer
    /// layout. Clamped to `1..=`[`crate::memtable::MAX_MEMTABLE_SHARDS`].
    pub memtable_shards: usize,
    /// Pre-built data-block cache shared across *stores*. A sharded
    /// serving layer passes the same `Arc` to every shard's `Options` so
    /// N shards share one cache budget instead of N private caches. When
    /// set, it takes precedence over [`Options::block_cache_bytes`].
    pub shared_block_cache: Option<Arc<BlockCache>>,
    /// Storage backend.
    pub env: Arc<dyn StorageEnv>,
    /// Emulate LevelDB's 1 ms write-slowdown sleep when L0 is congested.
    /// Tests disable this to run fast; the real sleep matters only for
    /// wall-clock experiments.
    pub slowdown_sleep: bool,
    /// Background worker threads servicing flushes and compactions.
    /// LevelDB uses 1; raise it (typically to the offload service's
    /// engine-slot count) so disjoint-range compactions at different
    /// levels run concurrently. Values are clamped to at least 1.
    pub background_threads: usize,
    /// Observability bundle (metric registry + event trace + clock). The
    /// DB creates a private wall-clock bundle when `None`; simulators
    /// pass a shared bundle driven by a manual clock so exports are
    /// byte-identical across runs.
    pub obs: Option<Arc<obs::Obs>>,
    /// Transient compaction I/O errors are retried this many times with
    /// exponential backoff before the store goes read-only. Corruption is
    /// never retried.
    pub compaction_max_retries: u32,
    /// Base backoff between compaction retries, doubling per attempt.
    /// The wait is accounted on the injectable clock/metrics; a real
    /// sleep happens only when `slowdown_sleep` is on, so deterministic
    /// tests never block on wall time.
    pub compaction_retry_backoff_micros: u64,
    /// Key-value separation threshold: values whose length is `>=` this
    /// go to the append-only value log and the tree stores a fixed-size
    /// pointer (WiscKey-style), shrinking compaction volume in the
    /// large-value regime. `None` (the default) disables separation and
    /// keeps the legacy raw stored-value encoding; a database must
    /// always be opened with the same setting's *mode* (separated vs.
    /// not) it was written with.
    pub value_log_threshold_bytes: Option<usize>,
    /// Rotation size for value-log segments. Sealed segments become
    /// garbage-collection candidates.
    pub value_log_segment_bytes: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            write_buffer_size: 4 << 20,
            block_size: 4096,
            max_file_size: 2 << 20,
            leveling_ratio: 10,
            level1_max_bytes: 10 << 20,
            compression: CompressionType::Snappy,
            filter_bits_per_key: Some(10),
            verify_checksums: true,
            block_cache_bytes: Some(8 << 20),
            sync_writes: false,
            max_group_commit_bytes: 1 << 20,
            memtable_shards: crate::memtable::DEFAULT_MEMTABLE_SHARDS,
            shared_block_cache: None,
            env: Arc::new(StdEnv),
            slowdown_sleep: true,
            background_threads: 1,
            obs: None,
            compaction_max_retries: 2,
            compaction_retry_backoff_micros: 1000,
            value_log_threshold_bytes: None,
            value_log_segment_bytes: 8 << 20,
        }
    }
}

impl Options {
    /// Byte budget for `level` (levels >= 1); level 0 is file-count
    /// triggered.
    pub fn max_bytes_for_level(&self, level: usize) -> u64 {
        debug_assert!(level >= 1);
        let mut bytes = self.level1_max_bytes;
        for _ in 1..level {
            bytes = bytes.saturating_mul(self.leveling_ratio);
        }
        bytes
    }

    /// The filter policy derived from `filter_bits_per_key`.
    pub fn filter_policy(&self) -> Option<BloomFilterPolicy> {
        self.filter_bits_per_key.map(BloomFilterPolicy::new)
    }

    /// Table build options for flushes and compactions.
    pub fn table_builder_options(&self) -> sstable::table_builder::TableBuilderOptions {
        sstable::table_builder::TableBuilderOptions {
            block_size: self.block_size,
            block_restart_interval: 16,
            compression: self.compression,
            filter_policy: self.filter_policy(),
            internal_key_filter: true,
            comparator: Arc::new(sstable::comparator::InternalKeyComparator::default()),
        }
    }

    /// Table read options matching [`Self::table_builder_options`].
    /// `block_cache` is the store-wide shared cache (created once by the
    /// DB from [`Options::block_cache_bytes`]).
    pub fn table_read_options_with(
        &self,
        block_cache: Option<Arc<BlockCache>>,
    ) -> sstable::table::TableReadOptions {
        sstable::table::TableReadOptions {
            verify_checksums: self.verify_checksums,
            block_cache,
            comparator: Arc::new(sstable::comparator::InternalKeyComparator::default()),
            filter_policy: self.filter_policy(),
            internal_key_filter: true,
        }
    }

    /// Table read options without a shared cache.
    pub fn table_read_options(&self) -> sstable::table::TableReadOptions {
        self.table_read_options_with(None)
    }
}

/// Per-read options.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadOptions {
    /// Read at this snapshot (sequence number); `None` reads the latest.
    pub snapshot: Option<u64>,
}

/// Per-write options.
#[derive(Clone, Copy, Debug, Default)]
pub struct WriteOptions {
    /// Force a WAL sync for this write.
    pub sync: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_budgets_scale_by_ratio() {
        let mut o = Options {
            leveling_ratio: 10,
            ..Default::default()
        };
        assert_eq!(o.max_bytes_for_level(1), 10 << 20);
        assert_eq!(o.max_bytes_for_level(2), 100 << 20);
        assert_eq!(o.max_bytes_for_level(3), 1000 << 20);
        o.leveling_ratio = 4;
        assert_eq!(o.max_bytes_for_level(2), 40 << 20);
    }

    #[test]
    fn builder_and_reader_options_agree() {
        let o = Options::default();
        let b = o.table_builder_options();
        let r = o.table_read_options();
        assert_eq!(b.internal_key_filter, r.internal_key_filter);
        assert_eq!(b.filter_policy.is_some(), r.filter_policy.is_some());
    }
}
