//! Versions and the MANIFEST: which SSTables live at which level, how
//! compactions are picked (LevelDB's size/score-driven leveled policy),
//! and how metadata changes are made durable as `VersionEdit` records.

use std::cmp::Ordering;
use std::path::PathBuf;
use std::sync::{Arc, Weak};

use sstable::coding::{
    get_length_prefixed_slice, get_varint32, get_varint64, put_length_prefixed_slice, put_varint32,
    put_varint64,
};
use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::ikey::InternalKey;

use crate::filename::{current_file_name, manifest_file_name, temp_file_name};
use crate::options::{Options, L0_COMPACTION_TRIGGER, NUM_LEVELS};
use crate::wal::{LogReader, LogWriter};
use crate::{Error, Result};

/// Metadata for one SSTable file.
#[derive(Debug, Clone)]
pub struct FileMetaData {
    /// File number (names the `.ldb` file).
    pub number: u64,
    /// File size in bytes.
    pub file_size: u64,
    /// Smallest internal key in the file.
    pub smallest: InternalKey,
    /// Largest internal key in the file.
    pub largest: InternalKey,
}

/// A durable, incremental change to the version state.
#[derive(Debug, Default, Clone)]
pub struct VersionEdit {
    /// New WAL number (older logs are obsolete).
    pub log_number: Option<u64>,
    /// Next file number to allocate.
    pub next_file_number: Option<u64>,
    /// Last sequence number used.
    pub last_sequence: Option<u64>,
    /// Per-level compaction cursors.
    pub compact_pointers: Vec<(usize, InternalKey)>,
    /// Files removed, as (level, file number).
    pub deleted_files: Vec<(usize, u64)>,
    /// Files added, as (level, meta).
    pub new_files: Vec<(usize, FileMetaData)>,
}

// Manifest record tags (LevelDB-compatible numbering).
const TAG_LOG_NUMBER: u32 = 2;
const TAG_NEXT_FILE_NUMBER: u32 = 3;
const TAG_LAST_SEQUENCE: u32 = 4;
const TAG_COMPACT_POINTER: u32 = 5;
const TAG_DELETED_FILE: u32 = 6;
const TAG_NEW_FILE: u32 = 7;

impl VersionEdit {
    /// Serializes the edit for the manifest log.
    pub fn encode(&self) -> Vec<u8> {
        let mut dst = Vec::new();
        if let Some(n) = self.log_number {
            put_varint32(&mut dst, TAG_LOG_NUMBER);
            put_varint64(&mut dst, n);
        }
        if let Some(n) = self.next_file_number {
            put_varint32(&mut dst, TAG_NEXT_FILE_NUMBER);
            put_varint64(&mut dst, n);
        }
        if let Some(n) = self.last_sequence {
            put_varint32(&mut dst, TAG_LAST_SEQUENCE);
            put_varint64(&mut dst, n);
        }
        for (level, key) in &self.compact_pointers {
            put_varint32(&mut dst, TAG_COMPACT_POINTER);
            put_varint32(&mut dst, *level as u32);
            put_length_prefixed_slice(&mut dst, key.encoded());
        }
        for (level, number) in &self.deleted_files {
            put_varint32(&mut dst, TAG_DELETED_FILE);
            put_varint32(&mut dst, *level as u32);
            put_varint64(&mut dst, *number);
        }
        for (level, f) in &self.new_files {
            put_varint32(&mut dst, TAG_NEW_FILE);
            put_varint32(&mut dst, *level as u32);
            put_varint64(&mut dst, f.number);
            put_varint64(&mut dst, f.file_size);
            put_length_prefixed_slice(&mut dst, f.smallest.encoded());
            put_length_prefixed_slice(&mut dst, f.largest.encoded());
        }
        dst
    }

    /// Parses an edit from a manifest record.
    pub fn decode(mut src: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        let bad = |m: &str| Error::Corruption(format!("version edit: {m}"));
        while !src.is_empty() {
            let (tag, n) = get_varint32(src).ok_or_else(|| bad("tag"))?;
            src = &src[n..];
            match tag {
                TAG_LOG_NUMBER => {
                    let (v, n) = get_varint64(src).ok_or_else(|| bad("log number"))?;
                    src = &src[n..];
                    edit.log_number = Some(v);
                }
                TAG_NEXT_FILE_NUMBER => {
                    let (v, n) = get_varint64(src).ok_or_else(|| bad("next file"))?;
                    src = &src[n..];
                    edit.next_file_number = Some(v);
                }
                TAG_LAST_SEQUENCE => {
                    let (v, n) = get_varint64(src).ok_or_else(|| bad("last seq"))?;
                    src = &src[n..];
                    edit.last_sequence = Some(v);
                }
                TAG_COMPACT_POINTER => {
                    let (level, n) = get_varint32(src).ok_or_else(|| bad("cp level"))?;
                    src = &src[n..];
                    let (key, n) = get_length_prefixed_slice(src).ok_or_else(|| bad("cp key"))?;
                    src = &src[n..];
                    edit.compact_pointers
                        .push((level as usize, InternalKey::from_encoded(key.to_vec())));
                }
                TAG_DELETED_FILE => {
                    let (level, n) = get_varint32(src).ok_or_else(|| bad("del level"))?;
                    src = &src[n..];
                    let (num, n) = get_varint64(src).ok_or_else(|| bad("del num"))?;
                    src = &src[n..];
                    edit.deleted_files.push((level as usize, num));
                }
                TAG_NEW_FILE => {
                    let (level, n) = get_varint32(src).ok_or_else(|| bad("nf level"))?;
                    src = &src[n..];
                    let (number, n) = get_varint64(src).ok_or_else(|| bad("nf num"))?;
                    src = &src[n..];
                    let (file_size, n) = get_varint64(src).ok_or_else(|| bad("nf size"))?;
                    src = &src[n..];
                    let (sk, n) =
                        get_length_prefixed_slice(src).ok_or_else(|| bad("nf smallest"))?;
                    src = &src[n..];
                    let (lk, n) =
                        get_length_prefixed_slice(src).ok_or_else(|| bad("nf largest"))?;
                    src = &src[n..];
                    edit.new_files.push((
                        level as usize,
                        FileMetaData {
                            number,
                            file_size,
                            smallest: InternalKey::from_encoded(sk.to_vec()),
                            largest: InternalKey::from_encoded(lk.to_vec()),
                        },
                    ));
                }
                other => return Err(bad(&format!("unknown tag {other}"))),
            }
        }
        Ok(edit)
    }
}

/// An immutable snapshot of the file layout across levels.
pub struct Version {
    /// Files per level. L0 is ordered newest-first; L1+ are ordered by
    /// smallest key and non-overlapping.
    pub files: Vec<Vec<Arc<FileMetaData>>>,
}

impl Version {
    /// An empty version.
    pub fn empty() -> Self {
        Version {
            files: vec![Vec::new(); NUM_LEVELS],
        }
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.files[level].iter().map(|f| f.file_size).sum()
    }

    /// Number of files at `level`.
    pub fn num_files(&self, level: usize) -> usize {
        self.files[level].len()
    }

    /// Files in `level` whose range overlaps `[smallest_user, largest_user]`.
    /// For L0 the search is iterative because L0 files may mutually overlap
    /// (LevelDB's `GetOverlappingInputs` expansion).
    pub fn overlapping_inputs(
        &self,
        cmp: &InternalKeyComparator,
        level: usize,
        smallest_user: &[u8],
        largest_user: &[u8],
    ) -> Vec<Arc<FileMetaData>> {
        let ucmp = cmp.user_comparator();
        let mut begin = smallest_user.to_vec();
        let mut end = largest_user.to_vec();
        let mut inputs: Vec<Arc<FileMetaData>> = Vec::new();
        'restart: loop {
            inputs.clear();
            for f in &self.files[level] {
                let fstart = f.smallest.user_key();
                let flimit = f.largest.user_key();
                if ucmp.compare(flimit, &begin) == Ordering::Less
                    || ucmp.compare(fstart, &end) == Ordering::Greater
                {
                    continue; // disjoint
                }
                if level == 0 {
                    // Expand the range and restart, since other L0 files
                    // may overlap the enlarged range.
                    let mut expanded = false;
                    if ucmp.compare(fstart, &begin) == Ordering::Less {
                        begin = fstart.to_vec();
                        expanded = true;
                    }
                    if ucmp.compare(flimit, &end) == Ordering::Greater {
                        end = flimit.to_vec();
                        expanded = true;
                    }
                    if expanded {
                        continue 'restart;
                    }
                }
                inputs.push(Arc::clone(f));
            }
            return inputs;
        }
    }

    /// Files possibly containing `user_key`, in the order the read path
    /// must consult them: all overlapping L0 files newest-first, then at
    /// most one file per deeper level.
    pub fn files_for_get(
        &self,
        cmp: &InternalKeyComparator,
        user_key: &[u8],
    ) -> Vec<(usize, Arc<FileMetaData>)> {
        let ucmp = cmp.user_comparator();
        let mut out = Vec::new();
        for f in &self.files[0] {
            if ucmp.compare(user_key, f.smallest.user_key()) != Ordering::Less
                && ucmp.compare(user_key, f.largest.user_key()) != Ordering::Greater
            {
                out.push((0, Arc::clone(f)));
            }
        }
        for level in 1..NUM_LEVELS {
            let files = &self.files[level];
            if files.is_empty() {
                continue;
            }
            // Binary search: first file whose largest >= user_key.
            let idx = files.partition_point(|f| {
                ucmp.compare(f.largest.user_key(), user_key) == Ordering::Less
            });
            if idx < files.len()
                && ucmp.compare(user_key, files[idx].smallest.user_key()) != Ordering::Less
            {
                out.push((level, Arc::clone(&files[idx])));
            }
        }
        out
    }
}

/// A picked compaction: `inputs[0]` from `level`, `inputs[1]` from
/// `level + 1`.
pub struct Compaction {
    /// Source level.
    pub level: usize,
    /// Input files: `[level files, level+1 files]`.
    pub inputs: [Vec<Arc<FileMetaData>>; 2],
    /// Largest key of the level-`level` inputs (becomes the compact
    /// pointer for round-robin cursor advancement).
    pub largest_input_key: InternalKey,
}

impl Compaction {
    /// Total input bytes.
    pub fn input_bytes(&self) -> u64 {
        self.inputs.iter().flatten().map(|f| f.file_size).sum()
    }

    /// Total number of input files.
    pub fn num_input_files(&self) -> usize {
        self.inputs[0].len() + self.inputs[1].len()
    }

    /// A move-only compaction: one input file, nothing to merge with.
    /// LevelDB just relinks the file to the next level.
    pub fn is_trivial_move(&self) -> bool {
        self.inputs[0].len() == 1 && self.inputs[1].is_empty()
    }
}

/// Owns the current [`Version`], file-number allocation, and the MANIFEST.
pub struct VersionSet {
    options: Options,
    dir: PathBuf,
    icmp: InternalKeyComparator,
    current: Arc<Version>,
    /// Next file number to hand out.
    next_file_number: u64,
    /// Highest sequence number used.
    pub last_sequence: u64,
    /// WAL number currently in use.
    pub log_number: u64,
    manifest: Option<LogWriter>,
    manifest_number: u64,
    /// Per-level cursor for round-robin compaction picking.
    compact_pointers: Vec<Vec<u8>>,
    /// Weak handles to every version ever installed; pruned lazily. Files
    /// referenced by *any* still-alive version must not be deleted, since
    /// in-flight readers hold `Arc<Version>` snapshots.
    live_versions: Vec<Weak<Version>>,
}

impl VersionSet {
    /// Creates a fresh version set (empty DB) — `recover` populates state
    /// for existing databases.
    pub fn new(dir: PathBuf, options: Options) -> Self {
        VersionSet {
            options,
            dir,
            icmp: InternalKeyComparator::default(),
            current: Arc::new(Version::empty()),
            next_file_number: 2,
            last_sequence: 0,
            log_number: 0,
            manifest: None,
            manifest_number: 1,
            compact_pointers: vec![Vec::new(); NUM_LEVELS],
            live_versions: Vec::new(),
        }
    }

    /// The comparator used for version bookkeeping.
    pub fn icmp(&self) -> &InternalKeyComparator {
        &self.icmp
    }

    /// The live version.
    pub fn current(&self) -> Arc<Version> {
        Arc::clone(&self.current)
    }

    /// Allocates a new file number.
    pub fn new_file_number(&mut self) -> u64 {
        let n = self.next_file_number;
        self.next_file_number += 1;
        n
    }

    /// The next file number that would be allocated (for recovery).
    pub fn next_file_number_peek(&self) -> u64 {
        self.next_file_number
    }

    /// Ensures future allocations start at `floor` or above. Recovery
    /// uses this for files the MANIFEST does not track (value-log
    /// segments), so a reopened store never reissues a live segment's
    /// number and truncates it with a fresh `create_writable`.
    pub fn bump_file_number(&mut self, floor: u64) {
        if self.next_file_number < floor {
            self.next_file_number = floor;
        }
    }

    /// Applies `edit` to the current version, writes it to the MANIFEST,
    /// and installs the result as current.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<()> {
        if edit.log_number.is_none() {
            edit.log_number = Some(self.log_number);
        }
        edit.next_file_number = Some(self.next_file_number);
        edit.last_sequence = Some(self.last_sequence);

        let new_version = self.build_version(&edit)?;

        if self.manifest.is_none() {
            self.create_manifest()?;
        }
        if !edit.new_files.is_empty() {
            // New table files must be durable — content *and* directory
            // entry — before the manifest references them, or a power cut
            // leaves a manifest pointing at files that no longer exist.
            self.options.env.sync_dir(&self.dir)?;
        }
        let record = edit.encode();
        // PANIC-OK: create_manifest() just ran for the None case.
        let manifest = self.manifest.as_mut().expect("manifest created above");
        manifest.add_record(&record)?;
        manifest.flush()?;
        // The edit may obsolete a WAL (log_number advance) whose deletion
        // happens right after; the manifest record must hit disk first.
        manifest.sync()?;

        if let Some(n) = edit.log_number {
            self.log_number = n;
        }
        for (level, key) in &edit.compact_pointers {
            self.compact_pointers[*level] = key.encoded().to_vec();
        }
        self.current = Arc::new(new_version);
        self.live_versions.retain(|w| w.strong_count() > 0);
        self.live_versions.push(Arc::downgrade(&self.current));
        Ok(())
    }

    /// Builds a new version = current + edit.
    fn build_version(&self, edit: &VersionEdit) -> Result<Version> {
        let mut files: Vec<Vec<Arc<FileMetaData>>> = self.current.files.clone();
        for (level, number) in &edit.deleted_files {
            files[*level].retain(|f| f.number != *number);
        }
        for (level, meta) in &edit.new_files {
            files[*level].push(Arc::new(meta.clone()));
        }
        // L0: newest file first (higher number = newer). L1+: by smallest.
        files[0].sort_by_key(|f| std::cmp::Reverse(f.number));
        for level_files in files.iter_mut().skip(1) {
            level_files.sort_by(|a, b| {
                self.icmp
                    .compare(a.smallest.encoded(), b.smallest.encoded())
            });
        }
        // Invariant: no overlap within levels >= 1.
        for (level, level_files) in files.iter().enumerate().skip(1) {
            for pair in level_files.windows(2) {
                if self
                    .icmp
                    .compare(pair[0].largest.encoded(), pair[1].smallest.encoded())
                    != Ordering::Less
                {
                    return Err(Error::Corruption(format!(
                        "overlapping files {} and {} at level {level}",
                        pair[0].number, pair[1].number
                    )));
                }
            }
        }
        Ok(Version { files })
    }

    fn create_manifest(&mut self) -> Result<()> {
        let path = manifest_file_name(&self.dir, self.manifest_number);
        let file = self.options.env.create_writable(&path)?;
        let mut writer = LogWriter::new(file);
        // Snapshot record: the full current state.
        let mut snapshot = VersionEdit {
            next_file_number: Some(self.next_file_number),
            last_sequence: Some(self.last_sequence),
            log_number: Some(self.log_number),
            ..Default::default()
        };
        for (level, files) in self.current.files.iter().enumerate() {
            for f in files {
                snapshot.new_files.push((level, (**f).clone()));
            }
        }
        writer.add_record(&snapshot.encode())?;
        writer.flush()?;
        // The snapshot and the manifest's directory entry must both be
        // durable before CURRENT can point at it.
        writer.sync()?;
        self.manifest = Some(writer);
        self.options.env.sync_dir(&self.dir)?;
        self.set_current_file(self.manifest_number)?;
        // Make the CURRENT swap itself durable.
        self.options.env.sync_dir(&self.dir)?;
        Ok(())
    }

    /// Atomically points CURRENT at manifest `number`.
    fn set_current_file(&self, number: u64) -> Result<()> {
        let tmp = temp_file_name(&self.dir, number);
        let mut f = self.options.env.create_writable(&tmp)?;
        f.append(format!("MANIFEST-{number:06}\n").as_bytes())?;
        f.sync()?;
        drop(f);
        self.options
            .env
            .rename(&tmp, &current_file_name(&self.dir))?;
        Ok(())
    }

    /// Recovers version state from CURRENT + MANIFEST. Returns `false` if
    /// no database exists yet.
    pub fn recover(&mut self) -> Result<bool> {
        let current_path = current_file_name(&self.dir);
        if !self.options.env.file_exists(&current_path) {
            return Ok(false);
        }
        let content = self
            .options
            .env
            .open_random_access(&current_path)?
            .read_all()?;
        let name = String::from_utf8_lossy(&content);
        let name = name.trim();
        let manifest_number = name
            .strip_prefix("MANIFEST-")
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| Error::Corruption(format!("bad CURRENT contents: {name}")))?;

        let manifest_path = manifest_file_name(&self.dir, manifest_number);
        let file = self.options.env.open_random_access(&manifest_path)?;
        let mut reader = LogReader::new(file.as_ref())?;
        let mut version = Version::empty();
        while let Some(record) = reader.read_record() {
            let edit = VersionEdit::decode(&record)?;
            // Apply onto the accumulating version.
            self.current = Arc::new(version);
            version = self.build_version(&edit)?;
            if let Some(n) = edit.log_number {
                self.log_number = n;
            }
            if let Some(n) = edit.next_file_number {
                self.next_file_number = n;
            }
            if let Some(n) = edit.last_sequence {
                self.last_sequence = n;
            }
            for (level, key) in &edit.compact_pointers {
                self.compact_pointers[*level] = key.encoded().to_vec();
            }
        }
        if reader.corruption_detected() {
            // A checksum-failed record mid-manifest means later edits may
            // have been applied on top of a hole; surface it so the
            // caller can route the store through `repair_db` instead of
            // serving a silently wrong file layout.
            return Err(Error::Corruption(format!(
                "MANIFEST-{manifest_number:06} contains corrupt records"
            )));
        }
        self.current = Arc::new(version);
        // Continue appending to a fresh manifest on next log_and_apply.
        self.manifest_number = self.next_file_number;
        self.next_file_number += 1;
        self.manifest = None;
        Ok(true)
    }

    /// Compaction priority score of the most loaded level; >= 1.0 means a
    /// compaction is needed (LevelDB `Finalize`).
    pub fn compaction_score(&self) -> (usize, f64) {
        let mut best_level = 0;
        let mut best_score = self.current.num_files(0) as f64 / L0_COMPACTION_TRIGGER as f64;
        for level in 1..NUM_LEVELS - 1 {
            let score = self.current.level_bytes(level) as f64
                / self.options.max_bytes_for_level(level) as f64;
            if score > best_score {
                best_level = level;
                best_score = score;
            }
        }
        (best_level, best_score)
    }

    /// Every level whose score reaches 1.0, most urgent first. A
    /// multi-worker scheduler walks this list and starts the first
    /// candidate that does not conflict with in-flight work;
    /// [`VersionSet::pick_compaction`] is the single-worker special case
    /// (first candidate only).
    pub fn candidate_levels(&self) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = Vec::new();
        let l0 = self.current.num_files(0) as f64 / L0_COMPACTION_TRIGGER as f64;
        if l0 >= 1.0 {
            scored.push((0, l0));
        }
        for level in 1..NUM_LEVELS - 1 {
            let score = self.current.level_bytes(level) as f64
                / self.options.max_bytes_for_level(level) as f64;
            if score >= 1.0 {
                scored.push((level, score));
            }
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(Ordering::Equal));
        scored.into_iter().map(|(level, _)| level).collect()
    }

    /// Picks the next compaction, or `None` if nothing is needed.
    pub fn pick_compaction(&self) -> Option<Compaction> {
        let (level, score) = self.compaction_score();
        if score < 1.0 {
            return None;
        }
        self.pick_compaction_at(level)
    }

    /// Builds a compaction for `level` regardless of its score (manual
    /// compaction); `None` if the level is empty or is the last level.
    pub fn pick_compaction_at(&self, level: usize) -> Option<Compaction> {
        if level + 1 >= NUM_LEVELS || self.current.files[level].is_empty() {
            return None;
        }
        let version = &self.current;

        // Seed with the first file after the compact pointer (round robin).
        let mut seed: Option<Arc<FileMetaData>> = None;
        let pointer = &self.compact_pointers[level];
        for f in &version.files[level] {
            if pointer.is_empty()
                || self.icmp.compare(f.largest.encoded(), pointer) == Ordering::Greater
            {
                seed = Some(Arc::clone(f));
                break;
            }
        }
        let seed = seed.or_else(|| version.files[level].first().map(Arc::clone))?;

        // Expand within the level (mandatory for L0 where ranges overlap).
        let mut inputs0 = if level == 0 {
            version.overlapping_inputs(
                &self.icmp,
                0,
                seed.smallest.user_key(),
                seed.largest.user_key(),
            )
        } else {
            vec![seed]
        };
        if inputs0.is_empty() {
            return None;
        }
        // Order L0 inputs oldest-first so the merging iterator's
        // "earlier child wins ties" rule sees newest first; we instead
        // sort newest-first to match that rule.
        inputs0.sort_by_key(|f| std::cmp::Reverse(f.number));

        let (smallest, largest) = self.key_range(&inputs0);
        let inputs1 = version.overlapping_inputs(
            &self.icmp,
            level + 1,
            smallest.user_key(),
            largest.user_key(),
        );

        let largest_input_key = InternalKey::from_encoded(largest.encoded().to_vec());
        Some(Compaction {
            level,
            inputs: [inputs0, inputs1],
            largest_input_key,
        })
    }

    /// Smallest/largest internal keys across `files`.
    fn key_range(&self, files: &[Arc<FileMetaData>]) -> (InternalKey, InternalKey) {
        let mut smallest = files[0].smallest.clone();
        let mut largest = files[0].largest.clone();
        for f in &files[1..] {
            if self.icmp.compare(f.smallest.encoded(), smallest.encoded()) == Ordering::Less {
                smallest = f.smallest.clone();
            }
            if self.icmp.compare(f.largest.encoded(), largest.encoded()) == Ordering::Greater {
                largest = f.largest.clone();
            }
        }
        (smallest, largest)
    }

    /// All file numbers referenced by the current version or any version
    /// an in-flight reader still holds (for obsolete-file GC).
    pub fn live_files(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .current
            .files
            .iter()
            .flatten()
            .map(|f| f.number)
            .collect();
        for weak in &self.live_versions {
            if let Some(v) = weak.upgrade() {
                out.extend(v.files.iter().flatten().map(|f| f.number));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::env::MemEnv;
    use sstable::ikey::ValueType;

    fn ikey(user: &str, seq: u64) -> InternalKey {
        InternalKey::new(user.as_bytes(), seq, ValueType::Value)
    }

    fn meta(number: u64, smallest: &str, largest: &str) -> FileMetaData {
        FileMetaData {
            number,
            file_size: 1000,
            smallest: ikey(smallest, 100),
            largest: ikey(largest, 1),
        }
    }

    fn mem_options() -> Options {
        Options {
            env: Arc::new(MemEnv::new()),
            ..Default::default()
        }
    }

    #[test]
    fn version_edit_roundtrip() {
        let mut e = VersionEdit {
            log_number: Some(9),
            next_file_number: Some(42),
            last_sequence: Some(12345),
            ..Default::default()
        };
        e.compact_pointers.push((2, ikey("cp", 7)));
        e.deleted_files.push((1, 8));
        e.new_files.push((3, meta(10, "aaa", "zzz")));
        let enc = e.encode();
        let d = VersionEdit::decode(&enc).unwrap();
        assert_eq!(d.log_number, Some(9));
        assert_eq!(d.next_file_number, Some(42));
        assert_eq!(d.last_sequence, Some(12345));
        assert_eq!(d.compact_pointers.len(), 1);
        assert_eq!(d.deleted_files, vec![(1, 8)]);
        assert_eq!(d.new_files.len(), 1);
        assert_eq!(d.new_files[0].1.number, 10);
        assert!(VersionEdit::decode(&[250, 250]).is_err());
    }

    #[test]
    fn log_and_apply_installs_files() {
        let mut vs = VersionSet::new(PathBuf::from("/db"), mem_options());
        let mut edit = VersionEdit::default();
        edit.new_files.push((0, meta(5, "a", "m")));
        edit.new_files.push((1, meta(6, "a", "f")));
        edit.new_files.push((1, meta(7, "g", "z")));
        vs.log_and_apply(edit).unwrap();
        let v = vs.current();
        assert_eq!(v.num_files(0), 1);
        assert_eq!(v.num_files(1), 2);
        // Level 1 sorted by smallest.
        assert_eq!(v.files[1][0].number, 6);
        assert_eq!(v.files[1][1].number, 7);
    }

    #[test]
    fn build_rejects_overlap_in_deep_levels() {
        let mut vs = VersionSet::new(PathBuf::from("/db"), mem_options());
        let mut edit = VersionEdit::default();
        edit.new_files.push((1, meta(5, "a", "m")));
        edit.new_files.push((1, meta(6, "k", "z"))); // overlaps "a".."m"
        assert!(vs.log_and_apply(edit).is_err());
    }

    #[test]
    fn recovery_restores_state() {
        let env = Arc::new(MemEnv::new());
        let opts = Options {
            env: Arc::clone(&env) as Arc<dyn sstable::env::StorageEnv>,
            ..Default::default()
        };
        let dir = PathBuf::from("/db");
        {
            let mut vs = VersionSet::new(dir.clone(), opts.clone());
            let mut edit = VersionEdit::default();
            edit.new_files.push((1, meta(5, "a", "m")));
            vs.last_sequence = 77;
            vs.log_and_apply(edit).unwrap();
            let mut edit2 = VersionEdit::default();
            edit2.new_files.push((2, meta(6, "a", "b")));
            edit2.deleted_files.push((1, 5));
            vs.log_and_apply(edit2).unwrap();
        }
        let mut vs = VersionSet::new(dir, opts);
        assert!(vs.recover().unwrap());
        let v = vs.current();
        assert_eq!(v.num_files(1), 0);
        assert_eq!(v.num_files(2), 1);
        assert_eq!(v.files[2][0].number, 6);
        assert_eq!(vs.last_sequence, 77);
    }

    #[test]
    fn recover_on_empty_dir_returns_false() {
        let mut vs = VersionSet::new(PathBuf::from("/nodb"), mem_options());
        assert!(!vs.recover().unwrap());
    }

    #[test]
    fn files_for_get_order() {
        let mut vs = VersionSet::new(PathBuf::from("/db"), mem_options());
        let mut edit = VersionEdit::default();
        edit.new_files.push((0, meta(10, "a", "z"))); // newer L0
        edit.new_files.push((0, meta(9, "a", "z"))); // older L0
        edit.new_files.push((1, meta(5, "a", "k")));
        edit.new_files.push((1, meta(6, "l", "z")));
        vs.log_and_apply(edit).unwrap();
        let v = vs.current();
        let hits = v.files_for_get(vs.icmp(), b"m");
        let numbers: Vec<u64> = hits.iter().map(|(_, f)| f.number).collect();
        // L0 newest first (10 then 9), then the single overlapping L1 file.
        assert_eq!(numbers, vec![10, 9, 6]);
        // Key beyond every file's range hits nothing.
        let hits = v.files_for_get(vs.icmp(), b"zz");
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn pick_compaction_l0_collects_overlaps() {
        let mut vs = VersionSet::new(PathBuf::from("/db"), mem_options());
        let mut edit = VersionEdit::default();
        for n in 0..4u64 {
            edit.new_files.push((0, meta(10 + n, "a", "m")));
        }
        edit.new_files.push((1, meta(20, "a", "f")));
        edit.new_files.push((1, meta(21, "g", "z")));
        vs.log_and_apply(edit).unwrap();
        let c = vs.pick_compaction().expect("L0 at trigger should compact");
        assert_eq!(c.level, 0);
        assert_eq!(c.inputs[0].len(), 4);
        assert_eq!(c.inputs[1].len(), 2);
        assert_eq!(c.num_input_files(), 6);
        assert!(!c.is_trivial_move());
        // L0 inputs newest-first.
        assert!(c.inputs[0][0].number > c.inputs[0][1].number);
    }

    #[test]
    fn no_compaction_when_below_triggers() {
        let mut vs = VersionSet::new(PathBuf::from("/db"), mem_options());
        let mut edit = VersionEdit::default();
        edit.new_files.push((0, meta(10, "a", "m")));
        vs.log_and_apply(edit).unwrap();
        assert!(vs.pick_compaction().is_none());
    }

    #[test]
    fn trivial_move_detected() {
        let mut vs = VersionSet::new(PathBuf::from("/db"), mem_options());
        let mut edit = VersionEdit::default();
        // Oversized L1, nothing in L2 overlapping.
        let mut big = meta(10, "a", "b");
        big.file_size = 100 << 20;
        edit.new_files.push((1, big));
        vs.log_and_apply(edit).unwrap();
        let c = vs
            .pick_compaction()
            .expect("oversized level should compact");
        assert_eq!(c.level, 1);
        assert!(c.is_trivial_move());
    }
}
