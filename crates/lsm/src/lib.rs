//! A LevelDB-like LSM-tree key-value store with pluggable compaction
//! execution engines.
//!
//! This is the software half of the paper's system (Fig. 1): main threads
//! serve `put`/`get`/`delete`, a background thread schedules flushes and
//! compactions, and the *execution* of a compaction is delegated to a
//! [`CompactionEngine`] — either the CPU merge
//! ([`compaction::CpuCompactionEngine`]) or, via the `fcae` crate, the
//! simulated FPGA engine. The on-disk format (WAL, MANIFEST, SSTables) is
//! LevelDB's, unchanged, because the paper integrates "without
//! modifications on the original storage format".
//!
//! ```
//! use lsm::{Db, Options};
//!
//! let dir = std::env::temp_dir().join("lsm-doc-example");
//! let _ = std::fs::remove_dir_all(&dir);
//! let db = Db::open(&dir, Options::default()).unwrap();
//! db.put(b"key", b"value").unwrap();
//! assert_eq!(db.get(b"key").unwrap().as_deref(), Some(&b"value"[..]));
//! db.delete(b"key").unwrap();
//! assert_eq!(db.get(b"key").unwrap(), None);
//! ```

pub mod compaction;
pub mod conflict;
pub mod db;
pub mod db_iter;
pub mod filename;
pub mod memtable;
pub mod options;
pub mod pipeline;
pub mod repair;
pub mod repl;
pub mod sync_shim;
pub mod table_cache;
pub mod version;
pub mod vlog;
pub mod wal;
pub mod write_batch;
pub mod write_path;

pub use compaction::{
    CompactionEngine, CompactionInput, CompactionOutcome, CompactionRequest, CpuCompactionEngine,
    OutputTableMeta, WritePressure,
};
pub use conflict::{ConflictChecker, JobShape, JobTicket};
pub use db::{Db, DbStats, ScanOutcome, Snapshot, VlogGcReport, SCAN_PAIR_OVERHEAD};
pub use db_iter::DbIter;
pub use options::{Options, ReadOptions, WriteOptions};
pub use pipeline::PipelinedCompactionEngine;
pub use repair::{repair_db, RepairReport};
pub use repl::{ChunkEnd, ReplChunk, ReplRecord, WalCursor};
pub use wal::TailState;
pub use write_batch::WriteBatch;
pub use write_path::{ApplyLedger, SeqReserver};

/// Store-level errors.
#[derive(Debug)]
pub enum Error {
    /// Propagated table/format error.
    Table(sstable::Error),
    /// I/O failure.
    Io(std::io::Error),
    /// Corruption detected in a log or manifest.
    Corruption(String),
    /// Caller misuse.
    InvalidArgument(String),
    /// The database is shutting down.
    ShuttingDown,
    /// A background write failure moved the store into read-only mode;
    /// the payload is the original error. Reads still work, writes are
    /// rejected instead of being silently dropped.
    ReadOnly(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Table(e) => write!(f, "table error: {e}"),
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::ShuttingDown => write!(f, "database is shutting down"),
            Error::ReadOnly(m) => write!(f, "database is read-only after background error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Table(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sstable::Error> for Error {
    fn from(e: sstable::Error) -> Self {
        match e {
            sstable::Error::Io(io) => Error::Io(io),
            other => Error::Table(other),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, Error>;
