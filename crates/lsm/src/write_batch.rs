//! Atomic multi-operation writes, binary-compatible with LevelDB's
//! `WriteBatch` representation:
//!
//! `fixed64 sequence | fixed32 count | records...` where each record is
//! `kTypeValue(1) key value` or `kTypeDeletion(0) key` with
//! length-prefixed slices.

use sstable::coding::{
    decode_fixed32, decode_fixed64, get_length_prefixed_slice, put_length_prefixed_slice,
};
use sstable::ikey::{SequenceNumber, ValueType};

use crate::{Error, Result};

const HEADER_SIZE: usize = 12;

/// A batch of updates applied atomically.
#[derive(Clone, Debug)]
pub struct WriteBatch {
    rep: Vec<u8>,
}

impl Default for WriteBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl WriteBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        WriteBatch {
            rep: vec![0u8; HEADER_SIZE],
        }
    }

    /// Queues a `put`.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.set_count(self.count() + 1);
        self.rep.push(ValueType::Value as u8);
        put_length_prefixed_slice(&mut self.rep, key);
        put_length_prefixed_slice(&mut self.rep, value);
    }

    /// Queues a deletion.
    pub fn delete(&mut self, key: &[u8]) {
        self.set_count(self.count() + 1);
        self.rep.push(ValueType::Deletion as u8);
        put_length_prefixed_slice(&mut self.rep, key);
    }

    /// Clears all queued operations.
    pub fn clear(&mut self) {
        self.rep.clear();
        self.rep.resize(HEADER_SIZE, 0);
    }

    /// Number of queued operations.
    pub fn count(&self) -> u32 {
        decode_fixed32(&self.rep[8..])
    }

    fn set_count(&mut self, n: u32) {
        self.rep[8..12].copy_from_slice(&n.to_le_bytes());
    }

    /// Base sequence number recorded in the header.
    pub fn sequence(&self) -> SequenceNumber {
        decode_fixed64(&self.rep)
    }

    /// Sets the base sequence number (done by the write path).
    pub fn set_sequence(&mut self, seq: SequenceNumber) {
        self.rep[..8].copy_from_slice(&seq.to_le_bytes());
    }

    /// Serialized representation (what goes into the WAL).
    pub fn data(&self) -> &[u8] {
        &self.rep
    }

    /// Approximate in-memory footprint.
    pub fn approximate_size(&self) -> usize {
        self.rep.len()
    }

    /// Reconstructs a batch from its WAL representation.
    pub fn from_data(data: &[u8]) -> Result<WriteBatch> {
        if data.len() < HEADER_SIZE {
            return Err(Error::Corruption("write batch header too small".into()));
        }
        let batch = WriteBatch { rep: data.to_vec() };
        // Validate structure eagerly so corrupt batches fail loudly.
        batch.iterate(|_, _| {})?;
        Ok(batch)
    }

    /// Invokes `f(op, sequence)` for each operation, in order.
    pub fn iterate<F>(&self, mut f: F) -> Result<()>
    where
        F: FnMut(BatchOp<'_>, SequenceNumber),
    {
        let mut pos = HEADER_SIZE;
        let mut seq = self.sequence();
        let mut found = 0u32;
        while pos < self.rep.len() {
            let tag = self.rep[pos];
            pos += 1;
            let ty = ValueType::from_u8(tag)
                .ok_or_else(|| Error::Corruption(format!("unknown write batch tag {tag}")))?;
            let (key, used) = get_length_prefixed_slice(&self.rep[pos..])
                .ok_or_else(|| Error::Corruption("bad batch key".into()))?;
            pos += used;
            match ty {
                ValueType::Value => {
                    let (value, used) = get_length_prefixed_slice(&self.rep[pos..])
                        .ok_or_else(|| Error::Corruption("bad batch value".into()))?;
                    pos += used;
                    f(BatchOp::Put { key, value }, seq);
                }
                ValueType::Deletion => {
                    f(BatchOp::Delete { key }, seq);
                }
            }
            seq += 1;
            found += 1;
        }
        if found != self.count() {
            return Err(Error::Corruption(format!(
                "batch count mismatch: header {} actual {found}",
                self.count()
            )));
        }
        Ok(())
    }
}

/// One operation inside a batch.
#[derive(Debug, PartialEq, Eq)]
pub enum BatchOp<'a> {
    /// Insert or overwrite.
    Put {
        /// User key.
        key: &'a [u8],
        /// Value bytes.
        value: &'a [u8],
    },
    /// Tombstone.
    Delete {
        /// User key.
        key: &'a [u8],
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(batch: &WriteBatch) -> Vec<(String, Option<String>, u64)> {
        let mut out = Vec::new();
        batch
            .iterate(|op, seq| match op {
                BatchOp::Put { key, value } => out.push((
                    String::from_utf8_lossy(key).into_owned(),
                    Some(String::from_utf8_lossy(value).into_owned()),
                    seq,
                )),
                BatchOp::Delete { key } => {
                    out.push((String::from_utf8_lossy(key).into_owned(), None, seq));
                }
            })
            .unwrap();
        out
    }

    #[test]
    fn batch_records_ops_in_order_with_sequences() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.delete(b"b");
        b.put(b"c", b"3");
        b.set_sequence(100);
        assert_eq!(b.count(), 3);
        let got = collect(&b);
        assert_eq!(
            got,
            vec![
                ("a".into(), Some("1".into()), 100),
                ("b".into(), None, 101),
                ("c".into(), Some("3".into()), 102),
            ]
        );
    }

    #[test]
    fn roundtrip_through_wal_representation() {
        let mut b = WriteBatch::new();
        b.put(b"key", &[0u8; 1000]);
        b.delete(b"gone");
        b.set_sequence(7);
        let restored = WriteBatch::from_data(b.data()).unwrap();
        assert_eq!(restored.count(), 2);
        assert_eq!(restored.sequence(), 7);
        assert_eq!(collect(&restored).len(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut b = WriteBatch::new();
        b.put(b"a", b"1");
        b.clear();
        assert_eq!(b.count(), 0);
        assert_eq!(b.data().len(), 12);
    }

    #[test]
    fn corrupt_batches_rejected() {
        assert!(WriteBatch::from_data(&[0u8; 5]).is_err());
        // Header claims 1 record but body is empty.
        let mut rep = vec![0u8; 12];
        rep[8] = 1;
        assert!(WriteBatch::from_data(&rep).is_err());
        // Unknown tag.
        let mut rep = vec![0u8; 12];
        rep[8] = 1;
        rep.push(9);
        rep.push(0);
        assert!(WriteBatch::from_data(&rep).is_err());
    }

    #[test]
    fn empty_keys_and_values_are_fine() {
        let mut b = WriteBatch::new();
        b.put(b"", b"");
        b.delete(b"");
        assert_eq!(collect(&b).len(), 2);
    }
}
