//! Leader-side WAL shipping: a cursor-based tailer over the rotated and
//! active `NNNNNN.log` segments.
//!
//! The replication stream is the WAL itself, re-read as *logical*
//! batches: each record decodes to a sequence-stamped [`WriteBatch`],
//! and when key-value separation is on, every value is re-inlined —
//! inline tags stripped, pointers resolved against the value log — so
//! the stream never references leader-local segment files. The replica
//! re-runs its own separation (or none) on apply, which keeps the two
//! stores byte-comparable at the logical level while leaving each free
//! to lay out its value log independently.
//!
//! A cursor is `(segment, offset)`. Sealed segments (number below the
//! active WAL) are consumed to their end and the cursor hops to the next
//! existing segment; the active segment is tailed with
//! [`LogReader::new_at`], whose [`TailState`] distinguishes "end of the
//! durable prefix, poll again" from "record caught mid-append, re-read
//! from the same offset once more bytes land". Either way the cursor
//! never advances past a record that was not returned whole, so polling
//! replays nothing and fabricates nothing.
//!
//! Stale pointers are expected: value-log GC rewrites a segment's live
//! values through normal sequenced WAL appends *before* removing the
//! segment, so a tailer running behind GC can meet a pointer into a
//! retired segment. The shadowing rewrite is, by construction, already
//! ahead of the cursor in the stream — the op is skipped (and counted)
//! exactly like recovery treats a dangling-but-shadowed pointer.

use std::path::Path;
use std::sync::Arc;

use sstable::env::StorageEnv;

use crate::filename::{log_file_name, parse_file_name, FileType};
use crate::vlog::{self, VlogRuntime};
use crate::wal::LogReader;
use crate::write_batch::{BatchOp, WriteBatch};
use crate::{Error, Result};

/// Position in a leader's WAL stream: a segment file number and a byte
/// offset within it. Ordering is lexicographic, which matches stream
/// order because segment numbers increase monotonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct WalCursor {
    /// WAL segment file number (`{segment:06}.log`).
    pub segment: u64,
    /// Byte offset of the next unread record within the segment.
    pub offset: u64,
}

/// One logical record lifted off the WAL: a sequence-stamped
/// [`WriteBatch`] encoding with every value re-inlined.
#[derive(Debug, Clone)]
pub struct ReplRecord {
    /// `WriteBatch` wire bytes (raw values, leader-stamped sequences).
    pub data: Vec<u8>,
    /// The last sequence number the leader reserved for this record's
    /// batch — acks and read-your-writes tokens are phrased in it. May
    /// exceed the rebuilt batch's own count when stale-pointer ops were
    /// skipped.
    pub last_seq: u64,
    /// Cursor immediately *after* this record: the position a replica
    /// that applied it resumes from (and acknowledges) — per-record, so
    /// a disconnect mid-chunk never replays or skips.
    pub resume: WalCursor,
}

/// Why a chunk read stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkEnd {
    /// The cursor reached the end of what is currently readable: poll
    /// again later from [`ReplChunk::cursor`].
    CaughtUp,
    /// The byte budget filled; more records are immediately available.
    More,
}

/// Result of one tailing pass.
#[derive(Debug)]
pub struct ReplChunk {
    /// Records read, in WAL (= sequence) order.
    pub records: Vec<ReplRecord>,
    /// Resume position for the next pass.
    pub cursor: WalCursor,
    /// Whether to poll or to read again immediately.
    pub end: ChunkEnd,
    /// Put ops dropped because their value-log pointer referenced a
    /// GC-retired segment (the rewrite is ahead in the stream).
    pub skipped_ops: u64,
}

/// Everything the tailer needs from the store, captured without holding
/// any DB lock: reads race appends and rotations by design, and the
/// [`LogReader`] tail semantics make that safe.
pub(crate) struct TailContext<'a> {
    pub env: &'a dyn StorageEnv,
    pub dir: &'a Path,
    pub vlog: Option<&'a Arc<VlogRuntime>>,
    /// The active WAL's file number at the time of the call; segments
    /// below it are sealed.
    pub active_segment: u64,
}

/// Outcome of re-inlining one raw WAL record.
enum Reinlined {
    Record {
        data: Vec<u8>,
        last_seq: u64,
        skipped: u64,
    },
    /// A pointer in the record runs past the value log's readable
    /// prefix — the append is still buffered or mid-write. The record
    /// must be retried from the same cursor after a flush.
    NotYetDurable,
}

/// Reads up to `max_bytes` of logical records starting at `cursor`.
pub(crate) fn read_chunk(
    ctx: &TailContext<'_>,
    mut cursor: WalCursor,
    max_bytes: usize,
) -> Result<ReplChunk> {
    let mut records = Vec::new();
    let mut bytes = 0usize;
    let mut skipped_ops = 0u64;
    loop {
        if cursor.segment > ctx.active_segment {
            return Err(Error::InvalidArgument(format!(
                "replication cursor at segment {:06} is ahead of the active WAL {:06}",
                cursor.segment, ctx.active_segment
            )));
        }
        let path = log_file_name(ctx.dir, cursor.segment);
        let file = match ctx.env.open_random_access(&path) {
            Ok(f) => f,
            Err(_) if cursor.segment == ctx.active_segment => {
                // The active segment's directory entry may not be
                // observable yet (creation racing this read): poll again.
                return Ok(ReplChunk {
                    records,
                    cursor,
                    end: ChunkEnd::CaughtUp,
                    skipped_ops,
                });
            }
            Err(_) => {
                // A sealed segment the cursor still needs is gone: the
                // retention floor only advances past segments every
                // registered replica acknowledged, so this cursor cannot
                // be served without silent data loss.
                return Err(Error::Corruption(format!(
                    "replication cursor points at missing WAL segment {:06}",
                    cursor.segment
                )));
            }
        };
        let mut reader = LogReader::new_at(file.as_ref(), cursor.offset)?;
        loop {
            let record_start = reader.resume_pos();
            let Some(raw) = reader.read_record() else {
                break;
            };
            match reinline(ctx.vlog, &raw)? {
                Reinlined::Record {
                    data,
                    last_seq,
                    skipped,
                } => {
                    skipped_ops += skipped;
                    bytes += data.len();
                    cursor.offset = reader.resume_pos();
                    records.push(ReplRecord {
                        data,
                        last_seq,
                        resume: cursor,
                    });
                    if bytes >= max_bytes {
                        return Ok(ReplChunk {
                            records,
                            cursor,
                            end: ChunkEnd::More,
                            skipped_ops,
                        });
                    }
                }
                Reinlined::NotYetDurable => {
                    // Stop *before* this record; the caller flushes the
                    // value log and polls again from the same offset.
                    cursor.offset = record_start;
                    return Ok(ReplChunk {
                        records,
                        cursor,
                        end: ChunkEnd::CaughtUp,
                        skipped_ops,
                    });
                }
            }
        }
        cursor.offset = reader.resume_pos();
        if cursor.segment == ctx.active_segment {
            // CleanEof: the durable prefix is consumed. Torn: a record is
            // mid-append. Both mean poll again at the cursor.
            return Ok(ReplChunk {
                records,
                cursor,
                end: ChunkEnd::CaughtUp,
                skipped_ops,
            });
        }
        if reader.corruption_detected() {
            return Err(Error::Corruption(format!(
                "WAL segment {:06} contains corrupt records",
                cursor.segment
            )));
        }
        // Sealed segment fully consumed (a torn tail here is pre-crash
        // garbage recovery would drop too): hop to the next existing
        // segment and keep filling the chunk.
        cursor = WalCursor {
            segment: next_segment(ctx, cursor.segment)?,
            offset: 0,
        };
    }
}

/// The smallest existing log segment after `after` (falling back to the
/// active segment, whose file may not be listed yet mid-rotation).
fn next_segment(ctx: &TailContext<'_>, after: u64) -> Result<u64> {
    let names = ctx.env.list_dir(ctx.dir)?;
    let mut best: Option<u64> = None;
    for name in names {
        if let Some(FileType::Log(n)) = parse_file_name(&name) {
            if n > after && n <= ctx.active_segment && best.is_none_or(|b| n < b) {
                best = Some(n);
            }
        }
    }
    Ok(best.unwrap_or(ctx.active_segment))
}

/// Decodes one raw WAL record and rewrites its values to the plain
/// (untagged, pointer-free) encoding the stream carries.
fn reinline(vlog: Option<&Arc<VlogRuntime>>, raw: &[u8]) -> Result<Reinlined> {
    let batch = WriteBatch::from_data(raw)?;
    let base = batch.sequence();
    let count = u64::from(batch.count());
    let last_seq = base + count.saturating_sub(1);
    let Some(v) = vlog else {
        // No separation: stored bytes are already raw values.
        return Ok(Reinlined::Record {
            data: raw.to_vec(),
            last_seq,
            skipped: 0,
        });
    };
    let mut out = WriteBatch::new();
    let mut skipped = 0u64;
    let mut not_durable = false;
    let mut bad: Option<Error> = None;
    batch.iterate(|op, _| {
        if not_durable || bad.is_some() {
            return;
        }
        match op {
            BatchOp::Put { key, value } => match vlog::decode_stored(value) {
                Ok(vlog::Stored::Inline(raw_value)) => out.put(key, raw_value),
                Ok(vlog::Stored::Pointer(ptr)) => match v.read_pointer(ptr) {
                    Ok(bytes) => out.put(key, &bytes),
                    Err(_) => match v.check_pointer(ptr) {
                        // The WAL record outran the value bytes (vlog
                        // append buffered or mid-write): retry after a
                        // flush rather than shipping a hole.
                        vlog::PointerCheck::Ok | vlog::PointerCheck::TornTail => {
                            not_durable = true;
                        }
                        // Stale pointer into a GC-retired segment: the
                        // shadowing rewrite is ahead in the stream.
                        vlog::PointerCheck::MissingSegment | vlog::PointerCheck::Corrupt => {
                            skipped += 1;
                        }
                    },
                },
                Err(e) => bad = Some(e),
            },
            BatchOp::Delete { key } => out.delete(key),
        }
    })?;
    if let Some(e) = bad {
        return Err(e);
    }
    if not_durable {
        return Ok(Reinlined::NotYetDurable);
    }
    out.set_sequence(base);
    Ok(Reinlined::Record {
        data: out.data().to_vec(),
        last_seq,
        skipped,
    })
}

/// Bytes of WAL between `from` and the end of every on-disk segment —
/// the leader's `repl.lag.bytes` gauge. Approximate by design: it reads
/// directory state without locks, so a concurrent append or rotation
/// shifts it by one record.
pub(crate) fn lag_bytes(env: &dyn StorageEnv, dir: &Path, from: WalCursor) -> u64 {
    let Ok(names) = env.list_dir(dir) else {
        return 0;
    };
    let mut total = 0u64;
    for name in names {
        let Some(FileType::Log(n)) = parse_file_name(&name) else {
            continue;
        };
        if n < from.segment {
            continue;
        }
        let Ok(file) = env.open_random_access(&dir.join(&name)) else {
            continue;
        };
        let Ok(len) = file.len() else { continue };
        if n == from.segment {
            total += len.saturating_sub(from.offset);
        } else {
            total += len;
        }
    }
    total
}
