//! Cache of open [`Table`] readers keyed by file number, with LRU
//! eviction (LevelDB `TableCache`).
//!
//! The table cache also owns the mapping from file numbers to block
//! cache ids. A table's blocks live in the shared [`BlockCache`] under
//! the `cache_id` allocated when the table was opened — and they must be
//! purged when the *file* is deleted, which can happen long after the
//! open handle was LRU-dropped from this cache. `cache_ids` therefore
//! outlives the handle map.
//!
//! [`BlockCache`]: sstable::cache::BlockCache

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use sstable::table::{Table, TableReadOptions};

use crate::filename::table_file_name;
use crate::options::Options;
use crate::Result;

struct Entry {
    table: Arc<Table>,
    /// LRU tick of the last access.
    last_used: u64,
}

/// Keeps up to `capacity` tables open.
pub struct TableCache {
    dir: PathBuf,
    options: Options,
    read_options: TableReadOptions,
    inner: Mutex<Inner>,
    capacity: usize,
    trace: Option<Arc<obs::TraceBuffer>>,
}

struct Inner {
    map: HashMap<u64, Entry>,
    /// `file_number → cache_id` for every table ever opened and not yet
    /// deleted. Survives LRU eviction of the handle so `evict` can still
    /// purge the file's blocks from the shared block cache.
    cache_ids: HashMap<u64, u64>,
    tick: u64,
}

impl TableCache {
    /// Creates a cache for tables under `dir`, sharing `block_cache`
    /// across all of them.
    pub fn new(dir: PathBuf, options: Options, capacity: usize) -> Self {
        let block_cache = options.shared_block_cache.clone().or_else(|| {
            options
                .block_cache_bytes
                .map(sstable::cache::BlockCache::new)
        });
        let read_options = options.table_read_options_with(block_cache);
        TableCache {
            dir,
            options,
            read_options,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                cache_ids: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
            trace: None,
        }
    }

    /// Attaches a trace buffer; cache evictions are recorded on it.
    pub fn with_trace(mut self, trace: Arc<obs::TraceBuffer>) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Returns the open table for `file_number`, opening it on miss.
    pub fn get(&self, file_number: u64, file_size: u64) -> Result<Arc<Table>> {
        {
            let mut inner = self.inner.lock(); // LOCK-ORDER: cache.tables 70
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(&file_number) {
                e.last_used = tick;
                return Ok(Arc::clone(&e.table));
            }
        }
        // Open outside the lock; racing opens of the same file are benign.
        let path = table_file_name(&self.dir, file_number);
        let file = self.options.env.open_random_access(&path)?;
        let table = Table::open(file, file_size, self.read_options.clone())?;
        let mut inner = self.inner.lock(); // LOCK-ORDER: cache.tables 70
        inner.tick += 1;
        let tick = inner.tick;
        // Re-check under the reacquired lock: a racing open may have
        // inserted this file while we were opening it. Reuse that entry
        // instead of overwriting it — the overwrite orphaned the winner's
        // blocks under its cache id. Our duplicate handle's blocks are
        // purged instead.
        if let Some(e) = inner.map.get_mut(&file_number) {
            e.last_used = tick;
            let existing = Arc::clone(&e.table);
            drop(inner);
            if let Some(cache) = &self.read_options.block_cache {
                cache.evict_table(table.cache_id());
            }
            return Ok(existing);
        }
        // A previously opened incarnation of this file may have been
        // LRU-dropped from the handle map; once a fresh cache id takes
        // over, blocks under the old id are unreachable — purge them.
        let stale_id = inner.cache_ids.insert(file_number, table.cache_id());
        if inner.map.len() >= self.capacity {
            // Evict the least recently used entry. Its `cache_ids`
            // mapping is kept: the file still exists, and its blocks
            // must stay evictable when it is eventually deleted.
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            file_number,
            Entry {
                table: Arc::clone(&table),
                last_used: tick,
            },
        );
        drop(inner);
        if let Some(stale_id) = stale_id {
            if let Some(cache) = &self.read_options.block_cache {
                cache.evict_table(stale_id);
            }
        }
        Ok(table)
    }

    /// Drops the cached handle for a deleted file, along with its blocks
    /// in the shared block cache — even when the handle itself was
    /// already LRU-evicted.
    // LOCK-HELD: db.state -- GC calls this from delete_obsolete_files_locked.
    pub fn evict(&self, file_number: u64) {
        let cache_id = {
            let mut inner = self.inner.lock(); // LOCK-ORDER: cache.tables 70
            let from_map = inner.map.remove(&file_number).map(|e| e.table.cache_id());
            inner.cache_ids.remove(&file_number).or(from_map)
        };
        let mut freed = 0usize;
        if let (Some(id), Some(cache)) = (cache_id, &self.read_options.block_cache) {
            freed = cache.evict_table(id);
        }
        if let Some(trace) = &self.trace {
            trace.record(obs::EventKind::CacheEviction {
                file_number,
                bytes: freed as u64,
            });
        }
    }

    /// Shared block cache statistics: (hits, misses), zero if disabled.
    pub fn block_cache_stats(&self) -> (u64, u64) {
        self.read_options
            .block_cache
            .as_ref()
            .map_or((0, 0), |c| c.stats())
    }

    /// Bytes currently held by the shared block cache, zero if disabled.
    pub fn block_cache_bytes(&self) -> usize {
        self.read_options
            .block_cache
            .as_ref()
            .map_or(0, |c| c.bytes())
    }

    /// Number of currently open tables.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len() // LOCK-ORDER: cache.tables 70
    }

    /// True if no tables are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::env::{MemEnv, StorageEnv};
    use sstable::table_builder::TableBuilder;
    use std::path::Path;

    fn make_table(env: &Arc<MemEnv>, dir: &Path, number: u64) -> u64 {
        let opts = Options {
            env: Arc::clone(env) as Arc<dyn StorageEnv>,
            ..Default::default()
        };
        let path = table_file_name(dir, number);
        let f = env.create_writable(&path).unwrap();
        let mut b = TableBuilder::new(opts.table_builder_options(), f);
        // One internal key so internal comparator tables stay well formed.
        let k = sstable::ikey::InternalKey::new(b"key", 1, sstable::ikey::ValueType::Value);
        b.add(k.encoded(), b"value").unwrap();
        b.finish().unwrap()
    }

    /// Reads the one key in a test table (internal-key encoded), pulling
    /// its blocks into the shared block cache.
    fn probe(t: &Table) {
        let lk = sstable::ikey::LookupKey::new(b"key", 1);
        t.get(lk.internal_key()).unwrap();
    }

    fn test_options(env: &Arc<MemEnv>) -> Options {
        Options {
            env: Arc::clone(env) as Arc<dyn StorageEnv>,
            ..Default::default()
        }
    }

    #[test]
    fn caches_and_evicts() {
        let env = Arc::new(MemEnv::new());
        let dir = PathBuf::from("/db");
        let cache = TableCache::new(dir.clone(), test_options(&env), 2);
        let sizes: Vec<u64> = (1..=3).map(|n| make_table(&env, &dir, n)).collect();

        let t1 = cache.get(1, sizes[0]).unwrap();
        let t1b = cache.get(1, sizes[0]).unwrap();
        assert!(Arc::ptr_eq(&t1, &t1b), "second get must hit the cache");
        cache.get(2, sizes[1]).unwrap();
        assert_eq!(cache.len(), 2);
        cache.get(3, sizes[2]).unwrap(); // evicts LRU (table 1... or 2)
        assert_eq!(cache.len(), 2);

        cache.evict(3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn missing_file_is_error() {
        let env = Arc::new(MemEnv::new());
        let cache = TableCache::new(PathBuf::from("/db"), test_options(&env), 4);
        assert!(cache.get(99, 1000).is_err());
    }

    /// Regression: deleting a file whose handle was already LRU-dropped
    /// must still purge its blocks from the shared block cache. Before
    /// the `cache_ids` map, `evict` only worked on resident handles and
    /// the dead file's blocks leaked forever.
    #[test]
    fn evict_after_lru_drop_releases_block_cache_bytes() {
        let env = Arc::new(MemEnv::new());
        let dir = PathBuf::from("/db");
        // Capacity 1 so the second open LRU-drops the first handle.
        let cache = TableCache::new(dir.clone(), test_options(&env), 1);
        let sizes: Vec<u64> = (1..=2).map(|n| make_table(&env, &dir, n)).collect();

        let t1 = cache.get(1, sizes[0]).unwrap();
        probe(&t1); // populate block cache under t1's id
        drop(t1);
        let bytes_t1 = cache.block_cache_bytes();
        assert!(bytes_t1 > 0, "read must have cached blocks");

        let t2 = cache.get(2, sizes[1]).unwrap(); // LRU-drops handle 1
        probe(&t2);
        drop(t2);
        assert_eq!(cache.len(), 1);
        assert!(cache.block_cache_bytes() > bytes_t1);

        // "Delete" both files; all their blocks must come back.
        let total = cache.block_cache_bytes();
        cache.evict(1);
        assert_eq!(
            cache.block_cache_bytes(),
            total - bytes_t1,
            "file 1's blocks must be purged even though its handle was LRU-dropped"
        );
        cache.evict(2);
        assert_eq!(
            cache.block_cache_bytes(),
            0,
            "block cache must return to baseline after both files are deleted"
        );
    }

    /// Racing opens of the same file must converge on one cache entry:
    /// after the stampede, evicting the file must empty the block cache
    /// (no blocks orphaned under overwritten handles' cache ids).
    #[test]
    fn racing_opens_do_not_orphan_block_cache_entries() {
        let env = Arc::new(MemEnv::new());
        let dir = PathBuf::from("/db");
        let cache = Arc::new(TableCache::new(dir.clone(), test_options(&env), 4));
        let size = make_table(&env, &dir, 1);

        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let t = cache.get(1, size).unwrap();
                    probe(&t);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        assert!(cache.block_cache_bytes() > 0);
        cache.evict(1);
        assert_eq!(
            cache.block_cache_bytes(),
            0,
            "every racing open's blocks must be reachable for eviction"
        );
    }

    #[test]
    fn eviction_records_trace_event() {
        let env = Arc::new(MemEnv::new());
        let dir = PathBuf::from("/db");
        let trace = Arc::new(obs::TraceBuffer::new(8, Arc::new(obs::ManualClock::new())));
        let cache =
            TableCache::new(dir.clone(), test_options(&env), 2).with_trace(Arc::clone(&trace));
        let size = make_table(&env, &dir, 1);
        let t = cache.get(1, size).unwrap();
        probe(&t);
        drop(t);
        cache.evict(1);
        let evs = trace.snapshot();
        assert_eq!(evs.len(), 1);
        match &evs[0].kind {
            obs::EventKind::CacheEviction { file_number, bytes } => {
                assert_eq!(*file_number, 1);
                assert!(*bytes > 0);
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
}
