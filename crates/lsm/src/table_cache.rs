//! Cache of open [`Table`] readers keyed by file number, with LRU
//! eviction (LevelDB `TableCache`).

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use parking_lot::Mutex;
use sstable::table::{Table, TableReadOptions};

use crate::filename::table_file_name;
use crate::options::Options;
use crate::Result;

struct Entry {
    table: Arc<Table>,
    /// LRU tick of the last access.
    last_used: u64,
}

/// Keeps up to `capacity` tables open.
pub struct TableCache {
    dir: PathBuf,
    options: Options,
    read_options: TableReadOptions,
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
}

impl TableCache {
    /// Creates a cache for tables under `dir`, sharing `block_cache`
    /// across all of them.
    pub fn new(dir: PathBuf, options: Options, capacity: usize) -> Self {
        let block_cache = options
            .block_cache_bytes
            .map(sstable::cache::BlockCache::new);
        let read_options = options.table_read_options_with(block_cache);
        TableCache {
            dir,
            options,
            read_options,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Returns the open table for `file_number`, opening it on miss.
    pub fn get(&self, file_number: u64, file_size: u64) -> Result<Arc<Table>> {
        {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(e) = inner.map.get_mut(&file_number) {
                e.last_used = tick;
                return Ok(Arc::clone(&e.table));
            }
        }
        // Open outside the lock; racing opens of the same file are benign.
        let path = table_file_name(&self.dir, file_number);
        let file = self.options.env.open_random_access(&path)?;
        let table = Table::open(file, file_size, self.read_options.clone())?;
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity {
            // Evict the least recently used entry.
            if let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, e)| e.last_used) {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(
            file_number,
            Entry {
                table: Arc::clone(&table),
                last_used: tick,
            },
        );
        Ok(table)
    }

    /// Drops the cached handle for a deleted file, along with its blocks
    /// in the shared block cache.
    pub fn evict(&self, file_number: u64) {
        if let Some(entry) = self.inner.lock().map.remove(&file_number) {
            if let Some(cache) = &self.read_options.block_cache {
                cache.evict_table(entry.table.cache_id());
            }
        }
    }

    /// Shared block cache statistics: (hits, misses), zero if disabled.
    pub fn block_cache_stats(&self) -> (u64, u64) {
        self.read_options
            .block_cache
            .as_ref()
            .map_or((0, 0), |c| c.stats())
    }

    /// Number of currently open tables.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True if no tables are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::env::{MemEnv, StorageEnv};
    use sstable::table_builder::TableBuilder;
    use std::path::Path;

    fn make_table(env: &Arc<MemEnv>, dir: &Path, number: u64) -> u64 {
        let opts = Options {
            env: Arc::clone(env) as Arc<dyn StorageEnv>,
            ..Default::default()
        };
        let path = table_file_name(dir, number);
        let f = env.create_writable(&path).unwrap();
        let mut b = TableBuilder::new(opts.table_builder_options(), f);
        // One internal key so internal comparator tables stay well formed.
        let k = sstable::ikey::InternalKey::new(b"key", 1, sstable::ikey::ValueType::Value);
        b.add(k.encoded(), b"value").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn caches_and_evicts() {
        let env = Arc::new(MemEnv::new());
        let dir = PathBuf::from("/db");
        let opts = Options {
            env: Arc::clone(&env) as Arc<dyn StorageEnv>,
            ..Default::default()
        };
        let cache = TableCache::new(dir.clone(), opts, 2);
        let sizes: Vec<u64> = (1..=3).map(|n| make_table(&env, &dir, n)).collect();

        let t1 = cache.get(1, sizes[0]).unwrap();
        let t1b = cache.get(1, sizes[0]).unwrap();
        assert!(Arc::ptr_eq(&t1, &t1b), "second get must hit the cache");
        cache.get(2, sizes[1]).unwrap();
        assert_eq!(cache.len(), 2);
        cache.get(3, sizes[2]).unwrap(); // evicts LRU (table 1... or 2)
        assert_eq!(cache.len(), 2);

        cache.evict(3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn missing_file_is_error() {
        let env = Arc::new(MemEnv::new());
        let opts = Options {
            env: Arc::clone(&env) as Arc<dyn StorageEnv>,
            ..Default::default()
        };
        let cache = TableCache::new(PathBuf::from("/db"), opts, 4);
        assert!(cache.get(99, 1000).is_err());
    }
}
