//! The database: write path (WAL + memtable + stall logic), read path
//! (memtable → immutable memtable → levels), flushes, and the background
//! compaction scheduler of the paper's Fig. 6.
//!
//! Scheduling generalizes LevelDB v1.x: a pool of
//! [`Options::background_threads`] workers handles memtable flushes and
//! SSTable compactions. Each worker picks work under the big lock and
//! admits it through a [`ConflictChecker`], so compactions at different
//! levels with disjoint key ranges run concurrently (feeding a
//! multi-engine offload service) while conflicting picks serialize
//! exactly as the single-threaded scheduler would. When the configured
//! [`CompactionEngine`] is an offload engine (the FPGA), the paper's key
//! scheduling change applies: a flush may proceed *concurrently* with an
//! in-flight offloaded compaction (`Db::flush_during_offload`), because
//! the host CPU is idle while the device merges. Engines may also push
//! back on writers via [`crate::compaction::WritePressure`]; the DB
//! translates that into its L0-style slowdown/stall mechanics.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use sstable::comparator::InternalKeyComparator;
use sstable::env::WritableFile;
use sstable::ikey::{parse_internal_key, InternalKey, LookupKey, ValueType};
use sstable::iterator::InternalIterator;
use sstable::table_builder::TableBuilder;

use crate::compaction::{
    CompactionEngine, CompactionInput, CompactionRequest, CpuCompactionEngine, OutputFileFactory,
    WritePressure,
};
use crate::conflict::{ConflictChecker, JobShape, JobTicket};
use crate::filename::{log_file_name, parse_file_name, table_file_name, FileType};
use crate::memtable::{MemGet, MemTable};
use crate::options::{
    Options, ReadOptions, WriteOptions, L0_SLOWDOWN_WRITES_TRIGGER, L0_STOP_WRITES_TRIGGER,
    NUM_LEVELS,
};
use crate::repl::{self, ReplChunk, WalCursor};
use crate::sync_shim::{self, lock as shim_lock};
use crate::table_cache::TableCache;
use crate::version::{FileMetaData, Version, VersionEdit, VersionSet};
use crate::vlog::{self, VlogRuntime};
use crate::wal::{LogReader, LogWriter};
use crate::write_batch::{BatchOp, WriteBatch};
use crate::write_path::{ApplyLedger, SeqReserver};
use crate::{Error, Result};

/// Per-level compaction activity (LevelDB's `leveldb.stats` rows).
#[derive(Debug, Default, Clone, Copy)]
pub struct LevelCompactionStats {
    /// Compactions whose inputs started at this level.
    pub compactions: u64,
    /// Bytes read by those compactions (inputs at this level and the
    /// overlapping files at `level + 1`).
    pub bytes_read: u64,
    /// Bytes written into `level + 1`.
    pub bytes_written: u64,
    /// Input files merged away.
    pub files_merged: u64,
}

/// Aggregate statistics exposed for the experiments.
#[derive(Debug, Default, Clone)]
pub struct DbStats {
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions executed by the configured engine.
    pub engine_compactions: u64,
    /// Compactions that fell back to software (too many inputs).
    pub sw_fallback_compactions: u64,
    /// Trivial moves (file relinked down a level).
    pub trivial_moves: u64,
    /// Bytes read by compactions.
    pub compaction_bytes_read: u64,
    /// Bytes written by compactions.
    pub compaction_bytes_written: u64,
    /// Wall time spent inside compaction engines.
    pub compaction_time: Duration,
    /// Modeled device kernel time (offload engines only).
    pub modeled_kernel_time: Duration,
    /// Modeled PCIe transfer time (offload engines only).
    pub modeled_transfer_time: Duration,
    /// Time writers spent stalled or slowed.
    pub stall_time: Duration,
    /// Flushes that ran concurrently with an offloaded compaction.
    pub concurrent_flushes: u64,
    /// Write groups committed (group commit batches >= writes).
    pub group_commits: u64,
    /// Individual writes that were committed as part of a group.
    pub grouped_writes: u64,
    /// Shared block cache hits.
    pub block_cache_hits: u64,
    /// Shared block cache misses.
    pub block_cache_misses: u64,
    /// Peak number of (non-trivial) compactions in flight at once.
    pub max_concurrent_compactions: u64,
    /// Writes delayed because the engine reported `WritePressure::Slowdown`.
    pub backpressure_slowdowns: u64,
    /// Writes stalled because the engine reported `WritePressure::Stop`.
    pub backpressure_stalls: u64,
    /// Per-level compaction traffic, indexed by the input level.
    pub per_level: [LevelCompactionStats; NUM_LEVELS],
}

/// Per-pair accounting overhead used by [`Db::scan_with`]'s byte budget
/// (covers the length prefixes and framing a serving layer adds around
/// each key/value).
pub const SCAN_PAIR_OVERHEAD: usize = 16;

/// Result of a budgeted range scan.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Collected pairs, in key order.
    pub pairs: Vec<(Vec<u8>, Vec<u8>)>,
    /// `true` when the requested range was exhausted; `false` when the
    /// scan stopped early at the pair limit or the byte budget.
    pub complete: bool,
}

/// What one [`Db::collect_value_log`] pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VlogGcReport {
    /// Sealed segments examined.
    pub segments_scanned: u64,
    /// Segments whose live values were rewritten and whose file was
    /// removed.
    pub segments_retired: u64,
    /// Segments kept because a snapshot could still reach them.
    pub segments_deferred: u64,
    /// Live values copied to the active segment.
    pub values_rewritten: u64,
    /// Value bytes copied.
    pub bytes_rewritten: u64,
    /// Dead bytes still on disk in deferred segments (the
    /// `lsm.vlog.dead-bytes` gauge).
    pub dead_bytes_remaining: u64,
}

/// Outcome of collecting one sealed segment.
enum SegmentGc {
    Retired {
        live_rewritten: u64,
        bytes_rewritten: u64,
    },
    Deferred {
        dead_bytes: u64,
    },
}

struct DbState {
    /// The active memtable. Shared (`Arc`) because group commits apply
    /// into it without holding this lock; `epoch.mem` points at the same
    /// table and is the copy writers pair with the WAL.
    mem: Arc<MemTable>,
    imm: Option<Arc<MemTable>>,
    /// Rotation boundary: every sequence `<= imm_boundary_seq` was
    /// reserved against `imm` (or older tables). The flush waits for this
    /// sequence to become visible so in-flight writers finish applying
    /// into the retiring memtable before it is iterated.
    imm_boundary_seq: u64,
    versions: VersionSet,
    /// Number of the WAL backing the active memtable. `versions.log_number`
    /// lags behind until the immutable memtable is flushed, so the old WAL
    /// survives a crash that happens mid-flush.
    log_file_number: u64,
    bg_error: Option<String>,
    /// Offloaded (non-CPU) compactions currently executing.
    offloads_in_flight: usize,
    /// Admission control for concurrent compactions.
    conflicts: ConflictChecker,
    /// Guards against two concurrent flushes.
    flush_in_progress: bool,
    /// Manual compaction request: drain this level regardless of score.
    force_compact_level: Option<usize>,
    /// Outstanding snapshots: sequence -> refcount.
    snapshots: BTreeMap<u64, u64>,
    /// File numbers being written by an in-flight flush or compaction;
    /// protected from obsolete-file GC until installed in a version
    /// (LevelDB's `pending_outputs_`).
    pending_outputs: HashSet<u64>,
    stats: DbStats,
}

/// Pre-registered hot-path metric handles (the registry mutex is
/// touched once at open, not per operation).
struct DbMetrics {
    get_micros: Arc<obs::Histogram>,
    put_micros: Arc<obs::Histogram>,
    group_size: Arc<obs::Histogram>,
    /// Time from a writer enqueueing to its sequence range being
    /// reserved — the queueing delay of the parallel write path.
    seq_reserve: Arc<obs::Histogram>,
    /// Group commits led / writes that rode another thread's commit.
    write_leader: Arc<obs::Counter>,
    write_follower: Arc<obs::Counter>,
    /// Bytes resident in the active memtable after the last commit.
    mem_occupancy: Arc<obs::Gauge>,
    stall_micros: Arc<obs::Counter>,
    flush_count: Arc<obs::Counter>,
    flush_bytes: Arc<obs::Counter>,
    bg_error_set: Arc<obs::Counter>,
    readonly_rejects: Arc<obs::Counter>,
    compact_retries: Arc<obs::Counter>,
    compact_retry_backoff: Arc<obs::Counter>,
}

impl DbMetrics {
    fn new(registry: &obs::Registry) -> Self {
        DbMetrics {
            get_micros: registry.histogram("lsm.get_micros"),
            put_micros: registry.histogram("lsm.put_micros"),
            group_size: registry.histogram("lsm.write.group_size"),
            seq_reserve: registry.histogram("lsm.write.seq_reserve"),
            write_leader: registry.counter("lsm.write.leader"),
            write_follower: registry.counter("lsm.write.follower"),
            mem_occupancy: registry.gauge("lsm.memtable.occupancy-bytes"),
            stall_micros: registry.counter("lsm.stall_micros"),
            flush_count: registry.counter("lsm.flush.count"),
            flush_bytes: registry.counter("lsm.flush.bytes"),
            bg_error_set: registry.counter("lsm.bg-error.set"),
            readonly_rejects: registry.counter("lsm.bg-error.readonly-writes"),
            compact_retries: registry.counter("lsm.compact.retry.count"),
            compact_retry_backoff: registry.counter("lsm.compact.retry.backoff-micros"),
        }
    }
}

struct DbInner {
    dir: PathBuf,
    options: Options,
    engine: Arc<dyn CompactionEngine>,
    obs: Arc<obs::Obs>,
    metrics: DbMetrics,
    state: Mutex<DbState>,
    /// The WAL epoch: the log, the memtable it recovers into, and the log
    /// file number swap *together* under this lock, so a group leader
    /// always pairs its WAL append with the matching memtable even while
    /// a rotation is in flight. Lock order: `state` may be acquired
    /// before `epoch`, never after.
    epoch: sync_shim::Mutex<WalEpoch>,
    /// Writers awaiting group commit; the front is the leader.
    commit_queue: sync_shim::Mutex<VecDeque<Arc<WriteWaiter>>>,
    /// Hands out contiguous, disjoint sequence ranges without a lock.
    reserver: SeqReserver,
    /// Tracks which reserved ranges have been applied; reads run at
    /// [`ApplyLedger::visible`], which never exposes a gap.
    ledger: ApplyLedger,
    /// Mirror of `state.bg_error.is_some()`, readable on the write fast
    /// path without the state lock.
    has_bg_error: AtomicBool,
    /// Approximate L0 file count, refreshed when versions change; lets
    /// the write fast path skip the state lock when L0 is healthy.
    l0_hint: AtomicUsize,
    /// Active memtable bytes after the most recent group commit; reset to
    /// zero at rotation. Fast-path room check only — the authoritative
    /// value is `state.mem.approximate_memory_usage()`.
    active_mem_bytes: AtomicUsize,
    /// Signaled when background work completes.
    work_done: Condvar,
    /// Signaled to wake the background thread.
    bg_work: Condvar,
    table_cache: TableCache,
    /// Key-value separation runtime; `None` when
    /// [`Options::value_log_threshold_bytes`] is unset (values stay in
    /// the tree, legacy encoding).
    vlog: Option<Arc<VlogRuntime>>,
    /// WAL segments numbered at or above this floor are retained even
    /// after rotation makes them obsolete for recovery — they may still
    /// feed a replication cursor. `u64::MAX` (the default) disables
    /// pinning; a replicating leader lowers it to the slowest registered
    /// replica's acknowledged segment.
    wal_retain_floor: AtomicU64,
    shutting_down: AtomicBool,
}

/// The WAL and the memtable it replays into, swapped atomically at
/// rotation.
struct WalEpoch {
    wal: LogWriter,
    mem: Arc<MemTable>,
}

/// One writer queued for group commit. The leader stamps each member's
/// batch with its reserved sequences and hands it back; every member
/// applies its own batch into the (shared, concurrent) memtable in
/// parallel, then reports to the [`ApplyLedger`].
struct WriteWaiter {
    sync: bool,
    /// Enqueue timestamp for the `lsm.write.seq_reserve` histogram.
    enqueued_micros: u64,
    slot: sync_shim::Mutex<WaiterSlot>,
    cv: sync_shim::Condvar,
}

struct WaiterSlot {
    /// Present until the leader takes it (or it is handed back stamped).
    batch: Option<WriteBatch>,
    phase: WaiterPhase,
    /// Outcome for members completed by a leader (error fan-out).
    result: Option<Result<()>>,
}

enum WaiterPhase {
    /// Still queued behind a leader.
    Queued,
    /// Promoted: this writer must lead the next group.
    Lead,
    /// A leader committed this member's batch to the WAL; the member
    /// applies it into `mem` and then reports to the ledger.
    Apply {
        mem: Arc<MemTable>,
        group: u64,
        last_seq: u64,
    },
    /// Finished (result present in the slot).
    Done,
}

impl WriteWaiter {
    fn new(batch: WriteBatch, sync: bool, enqueued_micros: u64) -> Self {
        WriteWaiter {
            sync,
            enqueued_micros,
            slot: sync_shim::Mutex::new(WaiterSlot {
                batch: Some(batch),
                phase: WaiterPhase::Queued,
                result: None,
            }),
            cv: sync_shim::Condvar::new(),
        }
    }

    // LOCK-HELD: db.commit_queue -- the leader sizes queued waiters mid-scan.
    fn batch_size(&self) -> usize {
        shim_lock(&self.slot) // LOCK-ORDER: db.waiter.slot 40
            .batch
            .as_ref()
            .map_or(0, WriteBatch::approximate_size)
    }

    /// Marks this waiter as the next leader (queue lock held by caller).
    // LOCK-HELD: db.commit_queue
    fn promote_lead(&self) {
        let mut slot = shim_lock(&self.slot); // LOCK-ORDER: db.waiter.slot 40
        slot.phase = WaiterPhase::Lead;
        self.cv.notify_all();
    }

    /// Returns the member its sequence-stamped batch for parallel apply.
    fn hand_apply(&self, batch: WriteBatch, mem: Arc<MemTable>, group: u64, last_seq: u64) {
        let mut slot = shim_lock(&self.slot); // LOCK-ORDER: db.waiter.slot 40
        slot.batch = Some(batch);
        slot.phase = WaiterPhase::Apply {
            mem,
            group,
            last_seq,
        };
        self.cv.notify_all();
    }

    /// Completes the member with `result` (leader-side error fan-out).
    fn complete(&self, result: Result<()>) {
        let mut slot = shim_lock(&self.slot); // LOCK-ORDER: db.waiter.slot 40
        slot.result = Some(result);
        slot.phase = WaiterPhase::Done;
        self.cv.notify_all();
    }

    /// Blocks until a leader assigns this waiter a role.
    fn wait_assignment(&self) -> WaiterPhase {
        let mut slot = shim_lock(&self.slot); // LOCK-ORDER: db.waiter.slot 40
        loop {
            match slot.phase {
                WaiterPhase::Queued => {
                    slot = self
                        .cv
                        .wait(slot)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                _ => return std::mem::replace(&mut slot.phase, WaiterPhase::Queued),
            }
        }
    }
}

/// Applies a sequence-stamped batch into the concurrent memtable.
fn apply_batch(mem: &MemTable, batch: &WriteBatch) {
    // iterate() re-walks framing that was validated when the batch was
    // built, so the Err arm is unreachable; `let _` keeps this panic-free.
    let _ = batch.iterate(|op, seq| match op {
        BatchOp::Put { key, value } => mem.add(seq, ValueType::Value, key, value),
        BatchOp::Delete { key } => mem.add(seq, ValueType::Deletion, key, &[]),
    });
}

/// A LevelDB-like key-value store.
///
/// Cloning the handle is cheap; the database shuts down when the last
/// handle drops.
pub struct Db {
    inner: Arc<DbInner>,
    bg_threads: Vec<std::thread::JoinHandle<()>>,
}

/// Snapshot guard: reads through [`ReadOptions::snapshot`] at this
/// sequence see a frozen view. Dropping releases the snapshot.
pub struct Snapshot {
    inner: Arc<DbInner>,
    /// The frozen sequence number.
    pub sequence: u64,
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        let mut state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
        if let Some(count) = state.snapshots.get_mut(&self.sequence) {
            *count -= 1;
            if *count == 0 {
                state.snapshots.remove(&self.sequence);
            }
        }
    }
}

impl Db {
    /// Opens (creating if needed) a database in `dir` with the CPU engine.
    pub fn open(dir: impl AsRef<Path>, options: Options) -> Result<Db> {
        Self::open_with_engine(dir, options, Arc::new(CpuCompactionEngine))
    }

    /// Opens a database using `engine` for compaction execution.
    pub fn open_with_engine(
        dir: impl AsRef<Path>,
        options: Options,
        engine: Arc<dyn CompactionEngine>,
    ) -> Result<Db> {
        let dir = dir.as_ref().to_path_buf();
        options.env.create_dir_all(&dir)?;

        let mut versions = VersionSet::new(dir.clone(), options.clone());
        let existed = versions.recover()?;

        let obs = options.obs.clone().unwrap_or_else(obs::Obs::wall);

        // Key-value separation: recover the value-log segments before WAL
        // replay so pointer validation below runs against truncated (i.e.
        // durable-prefix-only) segments. The MANIFEST does not track
        // segment numbers, so bump the file-number counter past every
        // segment on disk before allocating the new active one — a reused
        // number would let `create_writable` truncate a live segment.
        // A store that *has* segments must recover them even when the
        // option is off — otherwise gets would hand back tagged stored
        // bytes (raw pointers!) instead of values. `usize::MAX` makes
        // the runtime resolve-only: no new value ever clears the
        // threshold, so writes go inline while old pointers still read.
        let segments_on_disk = vlog::list_segments(options.env.as_ref(), &dir)?;
        let effective_threshold = match options.value_log_threshold_bytes {
            Some(t) => Some(t),
            None if !segments_on_disk.is_empty() => Some(usize::MAX),
            None => None,
        };
        let vlog_rt = if let Some(threshold) = effective_threshold {
            let max_seg = segments_on_disk.into_iter().max().unwrap_or(0);
            versions.bump_file_number(max_seg + 1);
            let active = versions.new_file_number();
            Some(Arc::new(VlogRuntime::recover(
                Arc::clone(&options.env),
                &dir,
                threshold,
                options.value_log_segment_bytes.max(1),
                active,
                &obs.registry,
            )?))
        } else {
            None
        };

        // Replay WALs newer than the recovered log number.
        let mut max_sequence = versions.last_sequence;
        let mut mem =
            MemTable::with_shards(InternalKeyComparator::default(), options.memtable_shards);
        if existed {
            let mut log_numbers: Vec<u64> = options
                .env
                .list_dir(&dir)?
                .iter()
                .filter_map(|name| match parse_file_name(name) {
                    Some(FileType::Log(n)) if n >= versions.log_number => Some(n),
                    _ => None,
                })
                .collect();
            log_numbers.sort_unstable();
            // Pointers into missing/corrupt vlog records, judged only
            // after the full replay: GC removes a segment strictly after
            // WAL-syncing rewrites of its live values, so the WAL is
            // *expected* to hold stale pointers into removed segments —
            // each shadowed by a newer record later in the log. Only a
            // dangling pointer that survives as the visible version of
            // its key means acknowledged data is gone.
            let mut dangling: Vec<(Vec<u8>, Vec<u8>, String)> = Vec::new();
            for number in log_numbers {
                let path = log_file_name(&dir, number);
                let file = options.env.open_random_access(&path)?;
                let mut reader = LogReader::new(file.as_ref())?;
                while let Some(record) = reader.read_record() {
                    let batch = WriteBatch::from_data(&record)?;
                    if let Some(v) = &vlog_rt {
                        // A pointer past the durable end of a segment can
                        // only belong to an unacknowledged write (an acked
                        // sync persists the vlog *before* the WAL), so the
                        // batch is dropped — like a torn WAL tail. Replay
                        // continues: anything after it in the same WAL is
                        // equally unsynced (a later sync would have made
                        // this batch durable too) and keeping those acked
                        // survivors is legal, while *later* WALs may hold
                        // synced acknowledgements that must not be lost.
                        // Missing/corrupt records are queued for the
                        // post-replay visibility check.
                        let mut torn = false;
                        let mut bad: Option<Error> = None;
                        batch.iterate(|op, _| {
                            if torn || bad.is_some() {
                                return;
                            }
                            if let BatchOp::Put { key, value } = op {
                                match vlog::decode_stored(value) {
                                    Ok(vlog::Stored::Pointer(ptr)) => match v.check_pointer(ptr) {
                                        vlog::PointerCheck::Ok => {}
                                        vlog::PointerCheck::TornTail => torn = true,
                                        vlog::PointerCheck::MissingSegment
                                        | vlog::PointerCheck::Corrupt => {
                                            dangling.push((
                                                key.to_vec(),
                                                value.to_vec(),
                                                format!(
                                                    "WAL {number:06} references lost vlog \
                                                     record {}:{} (key {:?})",
                                                    ptr.segment,
                                                    ptr.offset,
                                                    String::from_utf8_lossy(key)
                                                ),
                                            ));
                                        }
                                    },
                                    Ok(vlog::Stored::Inline(_)) => {}
                                    Err(e) => bad = Some(e),
                                }
                            }
                        })?;
                        if let Some(e) = bad {
                            return Err(e);
                        }
                        if torn {
                            continue;
                        }
                    }
                    let base = batch.sequence();
                    batch.iterate(|op, seq| match op {
                        BatchOp::Put { key, value } => mem.add(seq, ValueType::Value, key, value),
                        BatchOp::Delete { key } => mem.add(seq, ValueType::Deletion, key, &[]),
                    })?;
                    let last = base + u64::from(batch.count()).saturating_sub(1);
                    max_sequence = max_sequence.max(last);
                }
                if reader.corruption_detected() {
                    // A torn tail is expected after a crash (silent EOF),
                    // but a checksum failure *inside* the log means the
                    // replayed prefix may be missing acknowledged writes.
                    // Surface it so callers route through `repair_db`
                    // rather than opening with silent data loss.
                    return Err(Error::Corruption(format!(
                        "WAL {number:06} contains corrupt records"
                    )));
                }
            }
            // Judge the dangling pointers now that every shadowing record
            // has been replayed: fatal only if still the visible version.
            for (key, stored, why) in dangling {
                let visible = match mem.get(&LookupKey::new(&key, max_sequence)) {
                    MemGet::Value(newest) => newest == stored,
                    MemGet::Deleted | MemGet::NotFound => false,
                };
                if visible {
                    return Err(Error::Corruption(why));
                }
            }
        }
        versions.last_sequence = max_sequence;

        // Fresh WAL.
        let log_number = versions.new_file_number();
        let log_file = options
            .env
            .create_writable(&log_file_name(&dir, log_number))?;
        let log = LogWriter::new(log_file);

        // Recovered WAL data lives only in `mem`; advancing the manifest's
        // log number would orphan it (the replayed logs become obsolete),
        // so persist it as an L0 table first — LevelDB's
        // `WriteLevel0Table` during recovery.
        let mut edit = VersionEdit {
            log_number: Some(log_number),
            ..Default::default()
        };
        if !mem.is_empty() {
            let file_number = versions.new_file_number();
            let imm = std::mem::replace(
                &mut mem,
                MemTable::with_shards(InternalKeyComparator::default(), options.memtable_shards),
            );
            let mut it = imm.iter();
            it.seek_to_first();
            let path = table_file_name(&dir, file_number);
            let file = options.env.create_writable(&path)?;
            let mut builder = TableBuilder::new(options.table_builder_options(), file);
            let smallest = InternalKey::from_encoded(it.key().to_vec());
            let mut largest = InternalKey::from_encoded(it.key().to_vec());
            while it.valid() {
                builder.add(it.key(), it.value())?;
                largest = InternalKey::from_encoded(it.key().to_vec());
                it.next();
            }
            let file_size = builder.finish()?;
            builder.sync()?;
            edit.new_files.push((
                0,
                FileMetaData {
                    number: file_number,
                    file_size,
                    smallest,
                    largest,
                },
            ));
        }
        // Stage the first rotation's segment number while the version set
        // is still exclusively ours; writers replenish it afterwards.
        if let Some(v) = &vlog_rt {
            v.stage_segment(versions.new_file_number());
        }
        versions.log_and_apply(edit)?;

        let metrics = DbMetrics::new(&obs.registry);
        let table_cache =
            TableCache::new(dir.clone(), options.clone(), 1000).with_trace(Arc::clone(&obs.trace));
        let last_sequence = versions.last_sequence;
        let l0_files = versions.current().num_files(0);
        let mem = Arc::new(mem);
        let inner = Arc::new(DbInner {
            dir,
            options,
            engine,
            obs,
            metrics,
            state: Mutex::new(DbState {
                mem: Arc::clone(&mem),
                imm: None,
                imm_boundary_seq: 0,
                versions,
                log_file_number: log_number,
                bg_error: None,
                offloads_in_flight: 0,
                conflicts: ConflictChecker::new(),
                flush_in_progress: false,
                force_compact_level: None,
                snapshots: BTreeMap::new(),
                pending_outputs: HashSet::new(),
                stats: DbStats::default(),
            }),
            epoch: sync_shim::Mutex::new(WalEpoch { wal: log, mem }),
            commit_queue: sync_shim::Mutex::new(VecDeque::new()),
            reserver: SeqReserver::new(last_sequence),
            ledger: ApplyLedger::new(last_sequence),
            has_bg_error: AtomicBool::new(false),
            l0_hint: AtomicUsize::new(l0_files),
            active_mem_bytes: AtomicUsize::new(0),
            work_done: Condvar::new(),
            bg_work: Condvar::new(),
            table_cache,
            vlog: vlog_rt,
            wal_retain_floor: AtomicU64::new(u64::MAX),
            shutting_down: AtomicBool::new(false),
        });

        let workers = inner.options.background_threads.max(1);
        let bg_threads = (0..workers)
            .map(|i| {
                let bg_inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("lsm-background-{i}"))
                    .spawn(move || background_thread(bg_inner))
                    // PANIC-OK: thread spawn fails only on resource
                    // exhaustion at open(); no store state exists yet.
                    .expect("spawn background thread")
            })
            .collect();

        let db = Db { inner, bg_threads };
        db.inner.delete_obsolete_files();
        Ok(db)
    }

    /// Inserts or overwrites `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.put(key, value);
        self.write(batch, WriteOptions::default())
    }

    /// Deletes `key`.
    pub fn delete(&self, key: &[u8]) -> Result<()> {
        let mut batch = WriteBatch::new();
        batch.delete(key);
        self.write(batch, WriteOptions::default())
    }

    // ------------------------------------------------------ replication

    /// The visible sequence: every write at or below it is applied and
    /// readable. Leaders hand it to clients as a read-your-writes token;
    /// replicas compare it against tokens to decide wait-or-redirect.
    pub fn visible_sequence(&self) -> u64 {
        self.inner.ledger.visible()
    }

    /// The active WAL segment's file number (segments below it are
    /// sealed).
    pub fn current_log_number(&self) -> u64 {
        self.inner.state.lock().log_file_number // LOCK-ORDER: db.state 10
    }

    /// Pins WAL segments numbered `floor` and above against deletion so
    /// replication cursors inside them stay serveable. `u64::MAX`
    /// (the default) disables pinning. The leader keeps this at the
    /// slowest registered replica's acknowledged segment.
    pub fn set_wal_retention_floor(&self, floor: u64) {
        self.inner
            .wal_retain_floor
            .store(floor, AtomicOrdering::Release);
    }

    /// The earliest cursor this store can serve a replica from: the
    /// oldest WAL segment still on disk that recovery would replay.
    pub fn repl_start_cursor(&self) -> Result<WalCursor> {
        let (log_number, active) = {
            let state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
            (state.versions.log_number, state.log_file_number)
        };
        let names = self.inner.options.env.list_dir(&self.inner.dir)?;
        let mut earliest = active;
        for name in names {
            if let Some(FileType::Log(n)) = parse_file_name(&name) {
                if n >= log_number && n < earliest {
                    earliest = n;
                }
            }
        }
        Ok(WalCursor {
            segment: earliest,
            offset: 0,
        })
    }

    /// Reads up to `max_bytes` of logical replication records starting
    /// at `cursor`. Lock-free with respect to the write path: the tailer
    /// races appends and rotations by design (see [`crate::repl`]).
    pub fn repl_read_chunk(&self, cursor: WalCursor, max_bytes: usize) -> Result<ReplChunk> {
        let active = self.current_log_number();
        let ctx = repl::TailContext {
            env: self.inner.options.env.as_ref(),
            dir: &self.inner.dir,
            vlog: self.inner.vlog.as_ref(),
            active_segment: active,
        };
        repl::read_chunk(&ctx, cursor, max_bytes)
    }

    /// Pushes buffered WAL (and, when dirty, value-log) bytes out far
    /// enough for the tailer to read them. The feed loop calls this when
    /// a chunk comes back `CaughtUp` so buffered commits don't stall the
    /// stream until the next sync.
    pub fn repl_flush(&self) -> Result<()> {
        let mut epoch = shim_lock(&self.inner.epoch); // LOCK-ORDER: db.epoch 20
        if let Some(v) = &self.inner.vlog {
            // The tailer re-inlines pointers by reading segment files,
            // so the value bytes must be readable before the WAL record
            // that references them becomes so.
            v.sync_if_dirty()?;
        }
        epoch.wal.flush()
    }

    /// Approximate bytes of WAL the stream position `from` has not yet
    /// consumed — the `repl.lag.bytes` gauge.
    pub fn repl_lag_bytes(&self, from: WalCursor) -> u64 {
        repl::lag_bytes(self.inner.options.env.as_ref(), &self.inner.dir, from)
    }

    /// Applies one record from a leader's replication stream — the
    /// replica half of WAL shipping. The record is WAL-appended and
    /// applied exactly like a local group of one, except the sequence
    /// range arrives leader-stamped ([`SeqReserver::advance_to`] instead
    /// of a local reservation), so leader and replica assign identical
    /// sequences to identical ops and the replica's own recovery path
    /// replays the shipped history unchanged.
    ///
    /// `last_seq` is the stream-declared end of the record's reserved
    /// range; it may exceed the batch's own op count when the leader
    /// skipped GC-shadowed pointer ops while re-inlining. Records at or
    /// below the current visible sequence are duplicates from a cursor
    /// replay after reconnect and are skipped whole (record boundaries
    /// are preserved by the stream, so overlap is always all-or-nothing).
    ///
    /// Returns the new visible sequence.
    pub fn apply_replicated(&self, record: &[u8], last_seq: u64, sync: bool) -> Result<u64> {
        let inner = &self.inner;
        inner.ensure_room()?;
        let batch = WriteBatch::from_data(record)?;
        let base = batch.sequence();
        let count = u64::from(batch.count());
        let end_seq = last_seq.max(base + count.saturating_sub(1));
        if end_seq <= inner.ledger.visible() {
            return Ok(inner.ledger.visible());
        }
        // Re-run this store's own separation policy over the raw values;
        // the pin guards freshly appended segments against GC until the
        // apply is visible, mirroring `write_inner`.
        let (batch, _append_pin) = match &inner.vlog {
            Some(v) => {
                let (mut rewritten, pin) = v.separate_batch(&batch)?;
                if v.needs_stage() {
                    let n = inner.state.lock().versions.new_file_number(); // LOCK-ORDER: db.state 10
                    v.stage_segment(n);
                }
                rewritten.set_sequence(base);
                (rewritten, pin)
            }
            None => (batch, None),
        };
        let epoch_result = {
            let mut epoch = shim_lock(&inner.epoch); // LOCK-ORDER: db.epoch 20
            if inner.has_bg_error.load(AtomicOrdering::Acquire) {
                None
            } else {
                inner.reserver.advance_to(end_seq);
                let commit = (|| -> Result<()> {
                    epoch.wal.add_record(batch.data())?;
                    if sync {
                        if let Some(v) = &inner.vlog {
                            v.sync_if_dirty()?;
                        }
                        epoch.wal.sync()?;
                    }
                    Ok(())
                })();
                let group_id = inner.ledger.register(end_seq, 1);
                Some((Arc::clone(&epoch.mem), group_id, commit))
            }
        };
        let Some((mem, group_id, commit)) = epoch_result else {
            let msg = inner
                .state
                .lock() // LOCK-ORDER: db.state 10
                .bg_error
                .clone()
                .unwrap_or_else(|| "background error".to_string());
            return Err(Error::ReadOnly(msg));
        };
        if let Err(e) = commit {
            // Same sticky-error contract as `lead_group`: a failed append
            // leaves the WAL tail unknown, so the store goes read-only
            // and the group is marked applied to unblock the watermark.
            {
                let mut state = inner.state.lock(); // LOCK-ORDER: db.state 10
                inner.set_bg_error(&mut state, format!("wal commit failed: {e}"));
            }
            inner.ledger.finish_members(group_id, 1);
            return Err(e);
        }
        apply_batch(&mem, &batch);
        inner.ledger.finish_members(group_id, 1);
        let occupancy = mem.approximate_memory_usage();
        inner
            .active_mem_bytes
            .store(occupancy, AtomicOrdering::Relaxed);
        inner.metrics.mem_occupancy.set(occupancy as u64);
        inner.ledger.wait_visible(end_seq);
        Ok(inner.ledger.visible())
    }

    /// Applies a batch atomically, with leader-elected group commit:
    /// concurrent writers enqueue; whoever finds the queue empty becomes
    /// the leader, reserves one contiguous sequence range for the whole
    /// group, writes every member's batch to the WAL in one pass (and one
    /// sync), then hands each member its stamped batch back. Members apply
    /// into the concurrent memtable *in parallel* and acknowledge once the
    /// group's last sequence is visible, so a writer never returns before
    /// its own write is readable.
    pub fn write(&self, batch: WriteBatch, opts: WriteOptions) -> Result<()> {
        let t0 = self.inner.obs.now_micros();
        let result = self.write_inner(batch, opts);
        self.inner
            .metrics
            .put_micros
            .record(self.inner.obs.now_micros().saturating_sub(t0));
        result
    }

    fn write_inner(&self, batch: WriteBatch, opts: WriteOptions) -> Result<()> {
        let inner = &self.inner;
        inner.ensure_room()?;
        // Key-value separation happens before the commit queue: large
        // values go to the value log now (so one vlog sync by the group
        // leader covers every member) and the batch that is WAL-appended
        // and applied carries pointers/tagged inline values only.
        // `_append_pin` guards the appended values' segments against GC
        // until this write's commit is visible (it drops when this
        // function returns, which is after the visibility wait): an
        // uncommitted append is invisible to GC's liveness check, so an
        // unpinned segment could be retired out from under the write.
        let (batch, _append_pin) = match &inner.vlog {
            Some(v) => {
                let (rewritten, pin) = v.separate_batch(&batch)?;
                if v.needs_stage() {
                    // A rotation consumed the staged segment number;
                    // allocate the next one outside the vlog writer lock
                    // (the state lock ranks below it).
                    let n = inner.state.lock().versions.new_file_number(); // LOCK-ORDER: db.state 10
                    v.stage_segment(n);
                }
                (rewritten, pin)
            }
            None => (batch, None),
        };
        let sync = opts.sync || inner.options.sync_writes;
        let waiter = Arc::new(WriteWaiter::new(batch, sync, inner.obs.now_micros()));
        {
            let mut queue = shim_lock(&inner.commit_queue); // LOCK-ORDER: db.commit_queue 30
            queue.push_back(Arc::clone(&waiter));
            if queue.len() == 1 {
                // Empty queue: self-promote. A previous leader may still
                // be inside its epoch section — the new leader simply
                // blocks on the epoch lock, pipelining the two groups.
                waiter.promote_lead();
            }
        }
        match waiter.wait_assignment() {
            WaiterPhase::Lead => inner.lead_group(&waiter),
            WaiterPhase::Apply {
                mem,
                group,
                last_seq,
            } => {
                let batch = shim_lock(&waiter.slot).batch.take(); // LOCK-ORDER: db.waiter.slot 40
                if let Some(b) = &batch {
                    apply_batch(&mem, b);
                }
                inner.ledger.finish_members(group, 1);
                // Ack only once every earlier sequence is applied too:
                // after this returns, a read at "latest" sees this write.
                inner.ledger.wait_visible(last_seq);
                Ok(())
            }
            WaiterPhase::Done => shim_lock(&waiter.slot).result.take().unwrap_or(Ok(())), // LOCK-ORDER: db.waiter.slot 40
            // wait_assignment never returns Queued.
            WaiterPhase::Queued => Ok(()),
        }
    }

    /// Point lookup at the latest (or a snapshot) sequence.
    pub fn get_with(&self, key: &[u8], opts: ReadOptions) -> Result<Option<Vec<u8>>> {
        let t0 = self.inner.obs.now_micros();
        let result = self.get_with_inner(key, opts);
        self.inner
            .metrics
            .get_micros
            .record(self.inner.obs.now_micros().saturating_sub(t0));
        result
    }

    fn get_with_inner(&self, key: &[u8], opts: ReadOptions) -> Result<Option<Vec<u8>>> {
        let inner = &self.inner;
        // Reads run at the *visible* sequence — the watermark below which
        // every reserved write has been applied — so a concurrent group
        // commit can never expose a batch prefix or a sequence gap.
        let seq = opts.snapshot.unwrap_or_else(|| inner.ledger.visible());
        let Some(stored) = inner.get_stored(key, seq)? else {
            return Ok(None);
        };
        let Some(v) = &inner.vlog else {
            return Ok(Some(stored));
        };
        match v.resolve(&stored) {
            Ok(value) => Ok(Some(value)),
            // A GC pass may retire a segment between the lookup above and
            // this dereference. The rewrite that replaced the pointer is
            // already visible (GC installs it before the segment goes
            // away), so one retry at a fresh sequence reads through the
            // new copy. Snapshot reads never race this way: GC defers
            // segment removal while any snapshot is registered.
            Err(Error::Corruption(_)) if opts.snapshot.is_none() => {
                match inner.get_stored(key, inner.ledger.visible())? {
                    Some(stored) => v.resolve(&stored).map(Some),
                    None => Ok(None),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Point lookup at the latest sequence.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        self.get_with(key, ReadOptions::default())
    }

    /// Takes a consistent snapshot for reads.
    pub fn snapshot(&self) -> Snapshot {
        // LOCK-ORDER: db.state 10
        let mut state = self.inner.state.lock();
        // Sampled under the state lock so a concurrent compaction cannot
        // capture a smallest-snapshot above this sequence before the
        // registration below lands.
        let seq = self.inner.ledger.visible();
        *state.snapshots.entry(seq).or_insert(0) += 1;
        Snapshot {
            inner: Arc::clone(&self.inner),
            sequence: seq,
        }
    }

    /// Creates a streaming iterator over the live contents of the store,
    /// frozen at the current (or a snapshot) sequence. The iterator holds
    /// its own snapshots of the memtables and version, so writes proceed
    /// concurrently.
    pub fn iter_with(&self, opts: ReadOptions) -> Result<crate::db_iter::DbIter> {
        let seq = opts.snapshot.unwrap_or_else(|| self.inner.ledger.visible());
        let (mem, imm, version) = {
            let state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
            (
                Arc::clone(&state.mem),
                state.imm.clone(),
                state.versions.current(),
            )
        };
        // Materialize the memtable snapshots outside the state lock; the
        // sequence cutoff inside DbIter hides any entries applied after
        // `seq` was sampled.
        let mem_entries = mem.collect_range(b"", None);
        let imm_entries = imm
            .as_ref()
            .map(|m| m.collect_range(b"", None))
            .unwrap_or_default();
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(crate::db_iter::vec_child(mem_entries));
        children.push(crate::db_iter::vec_child(imm_entries));
        for f in &version.files[0] {
            let table = self.inner.table_cache.get(f.number, f.file_size)?;
            children.push(Box::new(table.iter()));
        }
        for level in 1..NUM_LEVELS {
            if version.files[level].is_empty() {
                continue;
            }
            let tables: Result<Vec<_>> = version.files[level]
                .iter()
                .map(|f| self.inner.table_cache.get(f.number, f.file_size))
                .collect();
            children.push(Box::new(crate::compaction::ChainIterator::new(tables?)));
        }
        Ok(crate::db_iter::DbIter::new(
            children,
            seq,
            self.inner.vlog.clone(),
        ))
    }

    /// Streaming iterator at the latest sequence.
    pub fn iter(&self) -> Result<crate::db_iter::DbIter> {
        self.iter_with(ReadOptions::default())
    }

    /// Scans all live user keys in `[start, end)` (end `None` = unbounded),
    /// returning up to `limit` pairs. This is the range-query path YCSB
    /// workload E exercises.
    pub fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(self
            .scan_with(ReadOptions::default(), start, end, limit, usize::MAX)?
            .pairs)
    }

    /// Range scan with an additional byte budget: collection stops before
    /// a pair would push the accumulated cost (key + value +
    /// [`SCAN_PAIR_OVERHEAD`] each) past `byte_budget`, and
    /// [`ScanOutcome::complete`] reports whether the range was exhausted.
    /// Serving layers use the budget to keep one scan reply under their
    /// frame cap. A first pair larger than the whole budget yields an
    /// empty, incomplete outcome — the caller must fall back to a point
    /// read for that key.
    pub fn scan_with(
        &self,
        opts: ReadOptions,
        start: &[u8],
        end: Option<&[u8]>,
        limit: usize,
        byte_budget: usize,
    ) -> Result<ScanOutcome> {
        let mut it = self.iter_with(opts)?;
        it.seek(start);
        let mut pairs = Vec::new();
        let mut used = 0usize;
        let mut complete = true;
        while it.valid() {
            if let Some(end) = end {
                if it.key() >= end {
                    break;
                }
            }
            if pairs.len() >= limit {
                complete = false;
                break;
            }
            let cost = it.key().len() + it.value().len() + SCAN_PAIR_OVERHEAD;
            if used.saturating_add(cost) > byte_budget {
                complete = false;
                break;
            }
            used += cost;
            pairs.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        it.status()?;
        Ok(ScanOutcome { pairs, complete })
    }

    /// Garbage-collects sealed value-log segments: live values are
    /// rewritten to the active segment (through the configured engine's
    /// maintenance slot, so GC contends with compactions for engine
    /// time), dead segments are removed. No-op when separation is off.
    ///
    /// Removal is deferred while any snapshot is registered — a snapshot
    /// reader may still hold pointers into the old segment. Open
    /// [`crate::db_iter::DbIter`]s do *not* pin segments; do not run GC
    /// while holding an iterator across it.
    pub fn collect_value_log(&self) -> Result<VlogGcReport> {
        let inner = &self.inner;
        let Some(v) = &inner.vlog else {
            return Ok(VlogGcReport::default());
        };
        let mut report = VlogGcReport::default();
        let mut remaining_dead = 0u64;
        for segment in v.sealed_segments()? {
            let mut outcome: Result<SegmentGc> = Ok(SegmentGc::Deferred { dead_bytes: 0 });
            inner
                .engine
                .run_maintenance(&mut || outcome = inner.gc_segment(v, segment));
            report.segments_scanned += 1;
            match outcome? {
                SegmentGc::Retired {
                    live_rewritten,
                    bytes_rewritten,
                } => {
                    report.segments_retired += 1;
                    report.values_rewritten += live_rewritten;
                    report.bytes_rewritten += bytes_rewritten;
                }
                SegmentGc::Deferred { dead_bytes } => {
                    report.segments_deferred += 1;
                    remaining_dead += dead_bytes;
                }
            }
        }
        v.publish_gc_gauges(remaining_dead);
        report.dead_bytes_remaining = remaining_dead;
        Ok(report)
    }

    /// Forces the current memtable out and waits until it is flushed.
    pub fn flush(&self) -> Result<()> {
        {
            let mut state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
            if state.mem.is_empty() && state.imm.is_none() {
                return Ok(());
            }
            if !state.mem.is_empty() {
                // Wait for any existing imm first. A background error
                // stops all flush progress, so bail out instead of
                // waiting forever on work that will never happen.
                while state.imm.is_some() {
                    if let Some(e) = &state.bg_error {
                        return Err(Error::ReadOnly(e.clone()));
                    }
                    self.inner.work_done.wait(&mut state);
                }
                state = self.inner.rotate_memtable(state)?;
                let _ = &state;
            }
        }
        self.wait_for_background_quiescence();
        // LOCK-ORDER: db.state 10
        if let Some(e) = self.inner.state.lock().bg_error.clone() {
            return Err(Error::ReadOnly(e));
        }
        Ok(())
    }

    /// Manually compacts the whole key space down, level by level, until
    /// every level above the bottom-most populated one is empty (LevelDB's
    /// `CompactRange`, full-range form). Useful before read-heavy phases
    /// and in benchmarks.
    pub fn compact_all(&self) -> Result<()> {
        self.flush()?;
        for level in 0..NUM_LEVELS - 1 {
            loop {
                {
                    let mut state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
                    if let Some(e) = &state.bg_error {
                        return Err(Error::ReadOnly(e.clone()));
                    }
                    if state.versions.current().num_files(level) == 0 {
                        state.force_compact_level = None;
                        break;
                    }
                    state.force_compact_level = Some(level);
                    self.inner.wake_workers(&state);
                }
                self.wait_for_background_quiescence();
            }
        }
        Ok(())
    }

    /// Blocks until no flush or compaction work is pending or in flight.
    pub fn wait_for_background_quiescence(&self) {
        let mut state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
        self.inner.wake_workers(&state);
        loop {
            let needs_work = state.imm.is_some()
                || state.flush_in_progress
                || state.conflicts.in_flight() > 0
                || state.versions.pick_compaction().is_some()
                || state
                    .force_compact_level
                    .is_some_and(|l| state.versions.pick_compaction_at(l).is_some());
            if !needs_work || state.bg_error.is_some() {
                return;
            }
            self.inner.work_done.wait(&mut state);
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> DbStats {
        let mut stats = self.inner.state.lock().stats.clone(); // LOCK-ORDER: db.state 10
        let (hits, misses) = self.inner.table_cache.block_cache_stats();
        stats.block_cache_hits = hits;
        stats.block_cache_misses = misses;
        stats
    }

    /// Number of files at each level (diagnostic).
    pub fn level_file_counts(&self) -> Vec<usize> {
        let state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
        let v = state.versions.current();
        (0..NUM_LEVELS).map(|l| v.num_files(l)).collect()
    }

    /// The observability bundle this store records into (the one from
    /// [`Options::obs`], or the private wall-clock bundle created at
    /// open).
    pub fn obs(&self) -> Arc<obs::Obs> {
        Arc::clone(&self.inner.obs)
    }

    /// LevelDB `GetProperty`-style named introspection. Returns `None`
    /// for unknown names. Supported:
    ///
    /// * `lsm.num-files-at-level<N>` — file count at level `N`
    /// * `lsm.stats` — human-readable per-level report (below)
    /// * `lsm.metrics` — metric registry, text format
    /// * `lsm.metrics-json` — metric registry, JSON
    /// * `lsm.trace` — buffered trace events, text format
    pub fn property(&self, name: &str) -> Option<String> {
        if let Some(rest) = name.strip_prefix("lsm.num-files-at-level") {
            let level: usize = rest.parse().ok()?;
            if level >= NUM_LEVELS {
                return None;
            }
            let state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
            return Some(state.versions.current().num_files(level).to_string());
        }
        match name {
            "lsm.stats" => Some(self.stats_report()),
            "lsm.metrics" => {
                self.refresh_level_gauges();
                Some(self.inner.obs.registry.export_text())
            }
            "lsm.metrics-json" => {
                self.refresh_level_gauges();
                Some(self.inner.obs.registry.export_json())
            }
            "lsm.trace" => Some(self.inner.obs.trace.export_text()),
            _ => None,
        }
    }

    /// Updates the `lsm.num-files-at-level<N>` gauges from the current
    /// version so metric exports carry the live file counts. The names
    /// keep LevelDB's literal `<N>` property spelling — including the
    /// angle brackets — which is exactly what the JSON export's string
    /// escaping must keep valid.
    fn refresh_level_gauges(&self) {
        let counts = self.level_file_counts();
        for (level, count) in counts.into_iter().enumerate() {
            self.inner
                .obs
                .registry
                .gauge(&format!("lsm.num-files-at-level<{level}>"))
                .set(count as u64);
        }
    }

    /// Human-readable counterpart of LevelDB's `leveldb.stats` property:
    /// one row per level (files, resident bytes, compaction traffic)
    /// plus the aggregate write-path counters.
    pub fn stats_report(&self) -> String {
        use std::fmt::Write as _;
        let (stats, rows) = {
            let state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
            let v = state.versions.current();
            let rows: Vec<(usize, u64)> = (0..NUM_LEVELS)
                .map(|l| {
                    (
                        v.num_files(l),
                        v.files[l].iter().map(|f| f.file_size).sum::<u64>(),
                    )
                })
                .collect();
            (state.stats.clone(), rows)
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "level  files  size_kb  compactions  read_kb  write_kb  files_merged"
        );
        for (level, (files, bytes)) in rows.iter().enumerate() {
            let lv = stats.per_level[level];
            let _ = writeln!(
                out,
                "{level:>5}  {files:>5}  {:>7}  {:>11}  {:>7}  {:>8}  {:>12}",
                bytes / 1024,
                lv.compactions,
                lv.bytes_read / 1024,
                lv.bytes_written / 1024,
                lv.files_merged
            );
        }
        let _ = writeln!(
            out,
            "flushes={} engine_compactions={} sw_fallbacks={} trivial_moves={}",
            stats.flushes,
            stats.engine_compactions,
            stats.sw_fallback_compactions,
            stats.trivial_moves
        );
        let _ = writeln!(
            out,
            "stall_micros={} group_commits={} grouped_writes={}",
            stats.stall_time.as_micros(),
            stats.group_commits,
            stats.grouped_writes
        );
        out
    }

    /// The configured engine's name.
    pub fn engine_name(&self) -> String {
        self.inner.engine.name().to_string()
    }
}

impl Drop for Db {
    fn drop(&mut self) {
        self.inner
            .shutting_down
            .store(true, AtomicOrdering::Release);
        self.inner.bg_work.notify_all();
        for handle in self.bg_threads.drain(..) {
            let _ = handle.join();
        }
    }
}

// ------------------------------------------------------------------ inner

type StateGuard<'a> = parking_lot::MutexGuard<'a, DbState>;

impl DbInner {
    /// Fast write admission: when nothing needs the slow path (no
    /// background error, no engine backpressure, healthy L0, memtable not
    /// full) the writer proceeds on atomics alone, without touching the
    /// state lock. Otherwise it falls back to the full LevelDB
    /// `MakeRoomForWrite` loop (slowdowns, stalls, rotation).
    fn ensure_room(&self) -> Result<()> {
        if !self.has_bg_error.load(AtomicOrdering::Acquire)
            && self.engine.write_pressure() == WritePressure::None
            && self.l0_hint.load(AtomicOrdering::Relaxed) < L0_SLOWDOWN_WRITES_TRIGGER
            && self.active_mem_bytes.load(AtomicOrdering::Relaxed) <= self.options.write_buffer_size
        {
            return Ok(());
        }
        let state = self.state.lock(); // LOCK-ORDER: db.state 10
        let state = self.make_room_for_write(state)?;
        drop(state);
        Ok(())
    }

    /// Raw stored bytes for `key` at `seq` — the tagged encoding when
    /// separation is on, the plain value otherwise. `None` covers both
    /// absent and deleted.
    fn get_stored(&self, key: &[u8], seq: u64) -> Result<Option<Vec<u8>>> {
        let (mem, imm, version) = {
            let state = self.state.lock(); // LOCK-ORDER: db.state 10
            (
                Arc::clone(&state.mem),
                state.imm.clone(),
                state.versions.current(),
            )
        };
        self.get_stored_in(key, seq, &mem, imm.as_ref(), &version)
    }

    /// Lookup against an explicit memtable/version capture. The value-log
    /// GC calls this while holding the state and epoch locks; the only
    /// lock taken inside is the table cache's, which ranks above both.
    fn get_stored_in(
        &self,
        key: &[u8],
        seq: u64,
        mem: &MemTable,
        imm: Option<&Arc<MemTable>>,
        version: &Version,
    ) -> Result<Option<Vec<u8>>> {
        let lookup = LookupKey::new(key, seq);
        match mem.get(&lookup) {
            MemGet::Value(v) => return Ok(Some(v)),
            MemGet::Deleted => return Ok(None),
            MemGet::NotFound => {}
        }
        if let Some(imm_ref) = imm {
            match imm_ref.get(&lookup) {
                MemGet::Value(v) => return Ok(Some(v)),
                MemGet::Deleted => return Ok(None),
                MemGet::NotFound => {}
            }
        }

        let icmp = InternalKeyComparator::default();
        for (_, meta) in version.files_for_get(&icmp, key) {
            let table = self.table_cache.get(meta.number, meta.file_size)?;
            if let Some((found_key, value)) = table.get(lookup.internal_key())? {
                if let Some(parsed) = parse_internal_key(&found_key) {
                    if parsed.user_key == key {
                        return match parsed.value_type {
                            ValueType::Value => Ok(Some(value)),
                            ValueType::Deletion => Ok(None),
                        };
                    }
                }
            }
        }
        Ok(None)
    }

    /// Collects one sealed value-log segment: rewrites the live records
    /// into the active segment, then removes the file once the copies are
    /// durable. Runs outside all DB locks except for the per-record
    /// install and the final retirement.
    fn gc_segment(&self, v: &Arc<VlogRuntime>, segment: u64) -> Result<SegmentGc> {
        // Cheap early defer: a registered snapshot may read old pointers
        // into this segment, so it cannot be removed yet. (Rewriting live
        // values would be safe but wasted if the next pass defers again.)
        // LOCK-ORDER: db.state 10
        if !self.state.lock().snapshots.is_empty() {
            return Ok(SegmentGc::Deferred { dead_bytes: 0 });
        }
        // A pinned segment holds records appended by a write whose WAL
        // commit is not yet visible. The liveness check below cannot see
        // such a record (its batch is not applied yet), so it would be
        // judged dead and the segment removed — and the write would then
        // commit an acknowledged pointer to a deleted file. Sealed
        // segments take no new appends, so the pin is guaranteed to
        // drain; defer until it does.
        if v.is_pinned(segment) {
            return Ok(SegmentGc::Deferred { dead_bytes: 0 });
        }
        // Pin-drained means every record's installing sequence has been
        // *reserved*; waiting for the reservation watermark makes them
        // *visible*, so the liveness pre-filter below cannot misjudge a
        // just-installed record whose group is still finishing.
        self.ledger.wait_visible(self.reserver.last_reserved());

        let (records, _seg_len) = v.read_segment(segment)?;
        let mut live_rewritten = 0u64;
        let mut bytes_rewritten = 0u64;
        let mut dead_bytes = 0u64;
        for rec in records {
            let old_stored = rec.ptr.encode();
            // Lock-free pre-filter: most records in an old segment are
            // dead (overwritten, deleted, or already rewritten); skip
            // them without touching the write path.
            if self.get_stored(&rec.key, self.ledger.visible())?.as_deref()
                != Some(old_stored.as_slice())
            {
                dead_bytes += rec.encoded_len();
                continue;
            }
            // Copy first, install second: if the install loses a race
            // with a concurrent writer the new copy is orphaned garbage
            // in the active segment — collected when *that* segment gets
            // GC'd — and nothing ever pointed at it.
            // The pin covers the rewrite from its append until the
            // install below is decided and visible (a losing install
            // leaves the copy as unreferenced garbage — unpinning it is
            // then harmless).
            let (new_ptr, _rewrite_pin) = v.append_for_gc(&rec.key, &rec.value)?;
            if v.needs_stage() {
                let n = self.state.lock().versions.new_file_number(); // LOCK-ORDER: db.state 10
                v.stage_segment(n);
            }
            if self.gc_install_if_current(&rec.key, &old_stored, new_ptr.encode())? {
                live_rewritten += 1;
                bytes_rewritten += rec.value.len() as u64;
            } else {
                dead_bytes += rec.encoded_len();
            }
        }

        // Every record judged dead (and every rewrite discarded by a
        // losing install race) was shadowed by some newer record — which
        // may still sit *unsynced* in the WAL. Removing the segment
        // before that shadow is durable would let a power cut drop the
        // shadow and leave a synced, acknowledged pointer dangling. So
        // sync unconditionally before retirement: the rewritten copies
        // (vlog first, then the WAL records that point at them) and every
        // shadowing record already in the WAL buffer become durable
        // before the only other copy of those values disappears.
        v.sync_if_dirty()?;
        {
            let mut epoch = shim_lock(&self.epoch); // LOCK-ORDER: db.epoch 20
            epoch.wal.sync()?;
        }

        // Retire under the state lock: `Db::snapshot` registers under the
        // same lock, so no snapshot can slip in between this check and
        // the removal and then observe a dangling pointer.
        let state = self.state.lock(); // LOCK-ORDER: db.state 10
        if !state.snapshots.is_empty() {
            return Ok(SegmentGc::Deferred { dead_bytes });
        }
        v.remove_segment(segment)?;
        drop(state);
        Ok(SegmentGc::Retired {
            live_rewritten,
            bytes_rewritten,
        })
    }

    /// Atomically re-points `key` at its rewritten value if and only if
    /// its current stored bytes still equal `old_stored`. Holding the
    /// epoch lock stops new sequence reservations; waiting for the
    /// in-flight ones to become visible closes the GC-resurrection race
    /// where a concurrent writer's newer value would be shadowed by the
    /// GC copy.
    fn gc_install_if_current(
        &self,
        key: &[u8],
        old_stored: &[u8],
        new_stored: Vec<u8>,
    ) -> Result<bool> {
        let mut state = self.state.lock(); // LOCK-ORDER: db.state 10
        if let Some(e) = &state.bg_error {
            return Err(Error::ReadOnly(e.clone()));
        }
        let mut epoch = shim_lock(&self.epoch); // LOCK-ORDER: db.epoch 20
                                                // In-flight groups finish their ledger bookkeeping without either
                                                // lock held here, so this wait cannot deadlock.
        self.ledger.wait_visible(self.reserver.last_reserved());
        let seq = self.ledger.visible();
        let current = {
            let mem = Arc::clone(&state.mem);
            let imm = state.imm.clone();
            let version = state.versions.current();
            self.get_stored_in(key, seq, &mem, imm.as_ref(), &version)?
        };
        if current.as_deref() != Some(old_stored) {
            return Ok(false);
        }
        let mut batch = WriteBatch::new();
        batch.put(key, &new_stored);
        batch.set_sequence(self.reserver.reserve(1));
        let last_seq = batch.sequence();
        let commit = epoch.wal.add_record(batch.data());
        let group = self.ledger.register(last_seq, 1);
        match commit {
            Ok(()) => {
                apply_batch(&epoch.mem, &batch);
                self.ledger.finish_members(group, 1);
                Ok(true)
            }
            Err(e) => {
                // Same contract as a failed group commit: the WAL tail is
                // unknown, the store goes read-only, and the reserved
                // range is marked applied so the watermark moves past it.
                self.ledger.finish_members(group, 1);
                self.set_bg_error(&mut state, format!("vlog gc wal append failed: {e}"));
                Err(e)
            }
        }
    }

    /// Leads one group commit. The leader drains the queue (up to the
    /// group byte cap), promotes the next queued writer so the pipeline
    /// never idles, then under the epoch lock reserves the group's
    /// sequence range, appends every batch to the WAL (one sync covers
    /// them all), and registers the group with the apply ledger. Members
    /// — including the leader — then apply their own batches into the
    /// shared concurrent memtable in parallel.
    fn lead_group(&self, me: &Arc<WriteWaiter>) -> Result<()> {
        let max_group_bytes = self.options.max_group_commit_bytes.max(1);
        let mut members: Vec<Arc<WriteWaiter>> = Vec::new();
        let mut batches: Vec<WriteBatch> = Vec::new();
        let mut sync = false;

        // A sync commit costs an fsync — orders of magnitude more than
        // an enqueue — so before sealing the group give writers that
        // woke together with this leader (the previous group's members
        // all become visible at once) a scheduling window to reach the
        // queue. Without it, lock-step writers alternate groups of 1
        // and N-1 and half the fsync amortization is lost. Buffered
        // commits are too cheap to ever be worth waiting for.
        if me.sync {
            let mut prev = 1;
            for _ in 0..8 {
                std::thread::yield_now();
                let len = shim_lock(&self.commit_queue).len(); // LOCK-ORDER: db.commit_queue 30
                if len <= prev {
                    break; // nobody new arrived during the last yield
                }
                prev = len;
            }
        }

        // Epoch section: group collection, sequence reservation, WAL
        // append, ledger registration. Holding the epoch lock across all
        // four pins one (WAL, memtable) pair and makes WAL order,
        // sequence order, and ledger order identical — which is what
        // recovery and the visibility watermark both rely on. Collecting
        // *inside* the lock is what makes grouping effective: while the
        // previous leader's commit (and fsync) held the lock, followers
        // piled up in the queue, so group size tracks commit latency.
        let epoch_result = {
            let mut epoch = shim_lock(&self.epoch); // LOCK-ORDER: db.epoch 20
            {
                let mut queue = shim_lock(&self.commit_queue); // LOCK-ORDER: db.commit_queue 30
                debug_assert!(queue.front().is_some_and(|w| Arc::ptr_eq(w, me)));
                let mut bytes = 0usize;
                while let Some(front) = queue.front() {
                    let size = front.batch_size();
                    if !members.is_empty() && bytes + size > max_group_bytes {
                        break;
                    }
                    bytes += size;
                    let Some(w) = queue.pop_front() else { break };
                    members.push(w);
                }
                // The next queued writer leads the following group; it
                // will block on the epoch lock until this commit is done,
                // collecting its own group as writers keep arriving.
                if let Some(next) = queue.front() {
                    next.promote_lead();
                }
            }
            if self.has_bg_error.load(AtomicOrdering::Acquire) {
                // Writes queued behind a sticky background error are
                // rejected as a group (reads keep working).
                None
            } else {
                for w in &members {
                    sync |= w.sync;
                    let b = shim_lock(&w.slot).batch.take(); // LOCK-ORDER: db.waiter.slot 40
                    batches.push(b.unwrap_or_else(WriteBatch::new));
                }
                let total: u64 = batches.iter().map(|b| u64::from(b.count())).sum();
                let start = self.reserver.reserve(total);
                let mut seq = start;
                for b in &mut batches {
                    b.set_sequence(seq);
                    seq += u64::from(b.count());
                }
                let last_seq = seq.saturating_sub(1);
                let commit = (|| -> Result<()> {
                    for b in &batches {
                        epoch.wal.add_record(b.data())?;
                    }
                    if sync {
                        // Durability ordering: the value bytes behind any
                        // pointer in this group must be durable before the
                        // WAL sync that acknowledges the pointer. Appends
                        // racing in from later groups may get synced early
                        // here — harmless, their own leader re-checks.
                        if let Some(v) = &self.vlog {
                            v.sync_if_dirty()?;
                        }
                        epoch.wal.sync()?;
                    }
                    Ok(())
                })();
                let group_id = self.ledger.register(last_seq, members.len());
                Some((Arc::clone(&epoch.mem), group_id, last_seq, commit))
            }
        };

        let Some((mem, group_id, last_seq, commit)) = epoch_result else {
            let msg = self
                .state
                .lock() // LOCK-ORDER: db.state 10
                .bg_error
                .clone()
                .unwrap_or_else(|| "background error".to_string());
            self.metrics.readonly_rejects.add(members.len() as u64);
            for w in members.iter().skip(1) {
                w.complete(Err(Error::ReadOnly(msg.clone())));
            }
            return Err(Error::ReadOnly(msg));
        };

        let now = self.obs.now_micros();
        self.metrics.write_leader.inc();
        self.metrics
            .write_follower
            .add(members.len().saturating_sub(1) as u64);
        self.metrics.group_size.record(members.len() as u64);
        for w in &members {
            self.metrics
                .seq_reserve
                .record(now.saturating_sub(w.enqueued_micros));
        }

        if let Err(e) = commit {
            // A failed append or sync leaves the WAL tail in an unknown
            // state; appending further records behind it could replay as
            // garbage (or silently drop acknowledged writes). First
            // failure is sticky: the store goes read-only. The group is
            // marked fully applied so the visibility watermark skips its
            // (never-persisted, never-acknowledged) sequence range.
            {
                let mut state = self.state.lock(); // LOCK-ORDER: db.state 10
                self.set_bg_error(&mut state, format!("wal commit failed: {e}"));
            }
            self.ledger.finish_members(group_id, members.len());
            for w in members.iter().skip(1) {
                w.complete(Err(replicate_err(&e)));
            }
            return Err(replicate_err(&e));
        }

        // 5. Hand every follower its stamped batch first, then apply our
        // own — members insert into disjoint memtable shards in parallel.
        let mut stamped = batches.into_iter();
        let my_batch = stamped.next().unwrap_or_default();
        for (w, b) in members.iter().skip(1).zip(stamped) {
            w.hand_apply(b, Arc::clone(&mem), group_id, last_seq);
        }
        apply_batch(&mem, &my_batch);
        self.ledger.finish_members(group_id, 1);

        let occupancy = mem.approximate_memory_usage();
        self.active_mem_bytes
            .store(occupancy, AtomicOrdering::Relaxed);
        self.metrics.mem_occupancy.set(occupancy as u64);
        {
            let mut state = self.state.lock(); // LOCK-ORDER: db.state 10
            state.stats.group_commits += 1;
            state.stats.grouped_writes += members.len() as u64;
        }
        self.ledger.wait_visible(last_seq);
        Ok(())
    }

    /// Records a fatal background error. The first error wins and is
    /// sticky: the store is read-only from here on (writes return
    /// [`Error::ReadOnly`]), reads keep working, and everything blocked
    /// on background progress is woken so it can observe the state.
    // LOCK-HELD: db.state -- takes the guarded DbState by &mut.
    fn set_bg_error(&self, state: &mut DbState, msg: String) {
        if state.bg_error.is_none() {
            state.bg_error = Some(msg.clone());
            self.has_bg_error.store(true, AtomicOrdering::Release);
            self.metrics.bg_error_set.inc();
            self.obs.event(obs::EventKind::BgError { message: msg });
        }
        self.work_done.notify_all();
    }

    /// Refreshes the lock-free L0 hint after a version change.
    fn refresh_l0_hint(&self, state: &DbState) {
        self.l0_hint.store(
            state.versions.current().num_files(0),
            AtomicOrdering::Relaxed,
        );
    }

    /// Folds the apply ledger's visibility watermark into
    /// `versions.last_sequence` before it is persisted in a manifest
    /// write (reservations bypass the state lock, so the version set's
    /// copy lags between syncs).
    fn sync_last_sequence(&self, state: &mut DbState) {
        let visible = self.ledger.visible();
        if visible > state.versions.last_sequence {
            state.versions.last_sequence = visible;
        }
    }

    /// Accounts one writer stall: DbStats, the stall counter, and a
    /// `write_stall` trace event.
    fn note_stall(&self, state: &mut DbState, elapsed: Duration) {
        state.stats.stall_time += elapsed;
        let micros = elapsed.as_micros() as u64;
        self.metrics.stall_micros.add(micros);
        self.obs.event(obs::EventKind::WriteStall { micros });
    }

    /// LevelDB `MakeRoomForWrite`: apply slowdown/stop triggers (the DB's
    /// own L0 triggers plus the engine's [`WritePressure`] signal) and
    /// rotate the memtable when full.
    // LOCK-HELD: db.state via state
    fn make_room_for_write<'a>(&'a self, mut state: StateGuard<'a>) -> Result<StateGuard<'a>> {
        let mut allow_delay = true;
        let mut allow_pressure_delay = true;
        loop {
            if let Some(e) = &state.bg_error {
                self.metrics.readonly_rejects.inc();
                return Err(Error::ReadOnly(e.clone()));
            }
            let pressure = self.engine.write_pressure();
            let background_busy =
                state.conflicts.in_flight() > 0 || state.imm.is_some() || state.flush_in_progress;
            if pressure == WritePressure::Stop && background_busy {
                // The offload queue is full: stall this writer until some
                // background work completes, like the L0 stop trigger.
                let t0 = Instant::now();
                self.wake_workers(&state);
                self.work_done.wait(&mut state);
                state.stats.backpressure_stalls += 1;
                self.note_stall(&mut state, t0.elapsed());
                continue;
            }
            if pressure != WritePressure::None && allow_pressure_delay {
                allow_pressure_delay = false;
                state.stats.backpressure_slowdowns += 1;
                state = self.slowdown_write(state);
                continue;
            }
            let l0_files = state.versions.current().num_files(0);
            if allow_delay && l0_files >= L0_SLOWDOWN_WRITES_TRIGGER {
                // Gentle backpressure: one 1 ms pause per write.
                allow_delay = false;
                state = self.slowdown_write(state);
                continue;
            }
            if state.mem.approximate_memory_usage() <= self.options.write_buffer_size {
                return Ok(state);
            }
            if state.imm.is_some() {
                // Previous memtable still flushing.
                if state.offloads_in_flight > 0 && !state.flush_in_progress {
                    // Paper's scheduler: the device is busy compacting, so
                    // the host performs the flush itself, concurrently.
                    state.stats.concurrent_flushes += 1;
                    state = self.flush_immutable(state)?;
                    continue;
                }
                let t0 = Instant::now();
                self.wake_workers(&state);
                self.work_done.wait(&mut state);
                self.note_stall(&mut state, t0.elapsed());
                continue;
            }
            if state.versions.current().num_files(0) >= L0_STOP_WRITES_TRIGGER {
                let t0 = Instant::now();
                self.wake_workers(&state);
                self.work_done.wait(&mut state);
                self.note_stall(&mut state, t0.elapsed());
                continue;
            }
            state = self.rotate_memtable(state)?;
        }
    }

    /// One 1 ms write delay (simulated when `slowdown_sleep` is off).
    // LOCK-HELD: db.state via state
    fn slowdown_write<'a>(&'a self, mut state: StateGuard<'a>) -> StateGuard<'a> {
        if self.options.slowdown_sleep {
            let t0 = Instant::now();
            drop(state);
            std::thread::sleep(Duration::from_millis(1));
            state = self.state.lock(); // LOCK-ORDER: db.state 10
            self.note_stall(&mut state, t0.elapsed());
        } else {
            self.note_stall(&mut state, Duration::from_millis(1));
        }
        state
    }

    /// Epoch handoff: swaps in a fresh memtable + WAL. The old memtable
    /// becomes `imm`; writers already inside a group commit keep applying
    /// into it through the `Arc` they captured under the epoch lock, and
    /// the recorded boundary sequence tells the flush how long to wait
    /// for them. Readers are never blocked — they keep reading whichever
    /// `Arc`s they captured.
    // LOCK-HELD: db.state via state
    fn rotate_memtable<'a>(&'a self, mut state: StateGuard<'a>) -> Result<StateGuard<'a>> {
        debug_assert!(state.imm.is_none());
        let new_log_number = state.versions.new_file_number();
        let file = self
            .options
            .env
            .create_writable(&log_file_name(&self.dir, new_log_number))?;
        // The new WAL's directory entry must survive a power cut or every
        // synced record inside it is unreachable on recovery.
        self.options.env.sync_dir(&self.dir)?;
        let fresh = Arc::new(MemTable::with_shards(
            InternalKeyComparator::default(),
            self.options.memtable_shards,
        ));
        {
            // LOCK-ORDER: db.epoch 20
            let mut epoch = shim_lock(&self.epoch);
            // Sync the retiring WAL before installing its successor.
            // Without this, a later `sync: true` write only reaches the
            // new WAL, and a power cut could drop acknowledged records
            // stranded in the old WAL's unsynced tail — breaking "a synced
            // write makes every prior acknowledged write durable". With
            // separation on, the vlog syncs first for the same reason the
            // group leader does it: the retiring WAL's pointers must not
            // become durable ahead of their value bytes.
            if let Some(v) = &self.vlog {
                v.sync_if_dirty()?;
            }
            epoch.wal.sync()?;
            epoch.wal = LogWriter::new(file);
            let old_mem = std::mem::replace(&mut epoch.mem, Arc::clone(&fresh));
            // Every sequence reserved so far went through the old epoch
            // (reservation happens under this lock), so `last_reserved` is
            // exactly the boundary between the two memtables.
            state.imm_boundary_seq = self.reserver.last_reserved();
            state.imm = Some(old_mem);
            state.mem = fresh;
        }
        self.active_mem_bytes.store(0, AtomicOrdering::Relaxed);
        state.log_file_number = new_log_number;
        self.wake_workers(&state);
        Ok(state)
    }

    /// Wakes every idle background worker to re-scan for work. Cheap:
    /// workers that find nothing go back to sleep.
    // LOCK-HELD: db.state -- takes the guarded DbState by ref.
    fn wake_workers(&self, _state: &DbState) {
        if !self.shutting_down.load(AtomicOrdering::Acquire) {
            self.bg_work.notify_all();
        }
    }

    /// Builds an SSTable from the immutable memtable and installs it at
    /// level 0 (the paper's first compaction type). Callable from the
    /// background thread or — during an offloaded compaction — from a
    /// writer thread.
    // LOCK-HELD: db.state via state
    fn flush_immutable<'a>(&'a self, mut state: StateGuard<'a>) -> Result<StateGuard<'a>> {
        let Some(imm) = state.imm.clone() else {
            return Ok(state);
        };
        debug_assert!(!state.flush_in_progress);
        state.flush_in_progress = true;
        let file_number = state.versions.new_file_number();
        state.pending_outputs.insert(file_number);
        let log_number = state.log_file_number;
        let boundary = state.imm_boundary_seq;

        // Long-running build happens outside the lock.
        drop(state);
        // Rotation barrier: writers that reserved sequences before the
        // epoch swap may still be applying into this memtable. Once the
        // boundary sequence is visible, every such group has finished, so
        // the iteration below sees a complete table.
        self.ledger.wait_visible(boundary);
        let t0 = self.obs.now_micros();
        let result = self.build_memtable_table(&imm, file_number);
        let flush_micros = self.obs.now_micros().saturating_sub(t0);
        let mut state = self.state.lock(); // LOCK-ORDER: db.state 10
        state.flush_in_progress = false;

        let mut flushed_bytes = 0u64;
        match result {
            Ok(meta) => {
                let mut edit = VersionEdit {
                    log_number: Some(log_number),
                    ..Default::default()
                };
                if let Some(meta) = meta {
                    flushed_bytes = meta.file_size;
                    edit.new_files.push((0, meta));
                }
                self.sync_last_sequence(&mut state);
                if let Err(e) = state.versions.log_and_apply(edit) {
                    // The manifest write failed: the table (if any) is on
                    // disk but not referenced, the WAL still covers the
                    // data, and no further flush can make progress.
                    state.pending_outputs.remove(&file_number);
                    self.set_bg_error(&mut state, format!("flush manifest write failed: {e}"));
                    return Err(e);
                }
            }
            Err(e) => {
                state.pending_outputs.remove(&file_number);
                self.set_bg_error(&mut state, format!("flush failed: {e}"));
                return Err(e);
            }
        }
        state.imm = None;
        state.pending_outputs.remove(&file_number);
        self.refresh_l0_hint(&state);
        state.stats.flushes += 1;
        self.metrics.flush_count.inc();
        self.metrics.flush_bytes.add(flushed_bytes);
        self.obs.event(obs::EventKind::Flush {
            bytes: flushed_bytes,
            micros: flush_micros,
        });
        self.work_done.notify_all();
        self.delete_obsolete_files_locked(&mut state);
        Ok(state)
    }

    fn build_memtable_table(
        &self,
        imm: &Arc<MemTable>,
        file_number: u64,
    ) -> Result<Option<FileMetaData>> {
        let mut it = imm.iter();
        it.seek_to_first();
        if !it.valid() {
            return Ok(None);
        }
        let path = table_file_name(&self.dir, file_number);
        let file = self.options.env.create_writable(&path)?;
        let mut builder = TableBuilder::new(self.options.table_builder_options(), file);
        let smallest = InternalKey::from_encoded(it.key().to_vec());
        let mut largest = InternalKey::from_encoded(it.key().to_vec());
        while it.valid() {
            builder.add(it.key(), it.value())?;
            largest = InternalKey::from_encoded(it.key().to_vec());
            it.next();
        }
        let file_size = builder.finish()?;
        builder.sync()?;
        Ok(Some(FileMetaData {
            number: file_number,
            file_size,
            smallest,
            largest,
        }))
    }

    /// Finds the next piece of admissible background work while holding
    /// the state lock. Trivial moves are applied inline (they only touch
    /// metadata); the scan then restarts because the version changed.
    /// Returns `None` when nothing can start right now — either there is
    /// no work, or every candidate conflicts with an in-flight job.
    fn find_work(&self, state: &mut DbState) -> Option<CompactionJob> {
        'rescan: loop {
            if state.imm.is_some() && !state.flush_in_progress {
                return Some(CompactionJob::Flush);
            }

            // Candidate levels: the forced level (manual compaction)
            // first, then every level over its score threshold, most
            // urgent first. The first candidate that passes admission
            // wins; conflicting candidates stay for a later scan.
            let mut levels: Vec<usize> = Vec::new();
            if let Some(l) = state.force_compact_level {
                levels.push(l);
            }
            for l in state.versions.candidate_levels() {
                if !levels.contains(&l) {
                    levels.push(l);
                }
            }
            for level in levels {
                let Some(compaction) = state.versions.pick_compaction_at(level) else {
                    if state.force_compact_level == Some(level) {
                        // A forced level with nothing left to do is done.
                        state.force_compact_level = None;
                        self.work_done.notify_all();
                    }
                    continue;
                };
                let Some(ticket) = state.conflicts.try_admit(job_shape(&compaction)) else {
                    continue;
                };

                if compaction.is_trivial_move() {
                    let f = &compaction.inputs[0][0];
                    let mut edit = VersionEdit::default();
                    edit.deleted_files.push((compaction.level, f.number));
                    edit.new_files.push((compaction.level + 1, (**f).clone()));
                    edit.compact_pointers
                        .push((compaction.level, compaction.largest_input_key.clone()));
                    self.sync_last_sequence(state);
                    let result = state.versions.log_and_apply(edit);
                    state.conflicts.release(ticket);
                    if let Err(e) = result {
                        self.set_bg_error(state, format!("trivial move failed: {e}"));
                        return None;
                    }
                    self.refresh_l0_hint(state);
                    state.stats.trivial_moves += 1;
                    self.work_done.notify_all();
                    continue 'rescan;
                }

                let concurrent = state.conflicts.in_flight() as u64;
                state.stats.max_concurrent_compactions =
                    state.stats.max_concurrent_compactions.max(concurrent);

                // Capture the request context under the lock (paper §IV
                // steps 1-3): L0 files are separate inputs (newest
                // first); deeper-level runs concatenate into one.
                let smallest_snapshot = state
                    .snapshots
                    .keys()
                    .next()
                    .copied()
                    .unwrap_or_else(|| self.ledger.visible());
                let bottommost = {
                    let v = state.versions.current();
                    ((level + 2)..NUM_LEVELS).all(|l| v.num_files(l) == 0)
                };
                let mut input_metas: Vec<Vec<Arc<FileMetaData>>> = Vec::new();
                if level == 0 {
                    for f in &compaction.inputs[0] {
                        input_metas.push(vec![Arc::clone(f)]);
                    }
                } else if !compaction.inputs[0].is_empty() {
                    input_metas.push(compaction.inputs[0].clone());
                }
                if !compaction.inputs[1].is_empty() {
                    input_metas.push(compaction.inputs[1].clone());
                }
                return Some(CompactionJob::Compact(Box::new(AdmittedCompaction {
                    compaction,
                    ticket,
                    smallest_snapshot,
                    bottommost,
                    input_metas,
                })));
            }
            return None;
        }
    }

    /// Executes one admitted compaction outside the state lock and
    /// installs the result. The admission ticket is always released.
    fn execute_compaction(&self, job: AdmittedCompaction) {
        let AdmittedCompaction {
            compaction,
            ticket,
            smallest_snapshot,
            bottommost,
            input_metas,
        } = job;
        let level = compaction.level;

        let mut inputs = Vec::with_capacity(input_metas.len());
        for metas in &input_metas {
            let tables: Result<Vec<_>> = metas
                .iter()
                .map(|m| self.table_cache.get(m.number, m.file_size))
                .collect();
            match tables {
                Ok(tables) => inputs.push(CompactionInput { tables }),
                Err(e) => {
                    let mut state = self.state.lock(); // LOCK-ORDER: db.state 10
                    state.conflicts.release(ticket);
                    self.set_bg_error(&mut state, format!("compaction open failed: {e}"));
                    return;
                }
            }
        }
        let req = CompactionRequest {
            level,
            inputs,
            smallest_snapshot,
            bottommost,
            builder_options: self.options.table_builder_options(),
            max_output_file_size: self.options.max_file_size,
        };

        let input_files: usize = input_metas.iter().map(|m| m.len()).sum();
        let input_bytes: u64 = input_metas.iter().flatten().map(|m| m.file_size).sum();
        self.obs.event(obs::EventKind::CompactionStart {
            level,
            files: input_files,
            bytes: input_bytes,
        });
        let t0 = self.obs.now_micros();

        // Engine dispatch (Fig. 6): offload when the device can take the
        // input count, otherwise software compaction.
        let use_engine = req.inputs.len() <= self.engine.max_inputs();
        let is_offload = use_engine && self.engine.name() != "cpu";
        if is_offload {
            self.state.lock().offloads_in_flight += 1; // LOCK-ORDER: db.state 10
        }
        let factory = DbOutputFactory {
            inner: self,
            allocated: std::sync::Mutex::new(Vec::new()),
        };
        // Transient I/O errors get a bounded number of retries with
        // exponential backoff. Each attempt allocates fresh output file
        // numbers, so a half-written attempt is never installed — its
        // orphans are swept by the obsolete-file GC below (exactly-once
        // install). The backoff is accounted on metrics/trace (injectable
        // clock time); a real sleep happens only under `slowdown_sleep`,
        // keeping deterministic tests free of wall-clock waits.
        let mut attempt: u32 = 0;
        let result = loop {
            let r = if use_engine {
                self.engine.compact(&req, &factory)
            } else {
                CpuCompactionEngine.compact(&req, &factory)
            };
            match r {
                Err(e) if attempt < self.options.compaction_max_retries && is_transient_io(&e) => {
                    attempt += 1;
                    let backoff = self
                        .options
                        .compaction_retry_backoff_micros
                        .saturating_mul(1u64 << (attempt - 1).min(20));
                    self.metrics.compact_retries.inc();
                    self.metrics.compact_retry_backoff.add(backoff);
                    self.obs.event(obs::EventKind::CompactionRetry {
                        level,
                        attempt,
                        backoff_micros: backoff,
                    });
                    if self.options.slowdown_sleep {
                        std::thread::sleep(Duration::from_micros(backoff));
                    }
                }
                r => break r,
            }
        };

        let mut state = self.state.lock(); // LOCK-ORDER: db.state 10
        if is_offload {
            state.offloads_in_flight -= 1;
        }
        state.conflicts.release(ticket);
        // Un-protect exactly this job's outputs: on success they enter
        // the version below (same lock hold, so GC cannot run between);
        // on failure the orphaned files become collectable.
        let allocated = factory.allocated.lock().unwrap_or_else(|e| e.into_inner()); // LOCK-ORDER: db.factory.outputs 60
        for number in allocated.iter() {
            state.pending_outputs.remove(number);
        }
        drop(allocated);
        match result {
            Ok(outcome) => {
                let mut edit = VersionEdit::default();
                for metas in &input_metas {
                    for m in metas {
                        // An input file may appear only once.
                        edit.deleted_files.push((
                            if compaction.inputs[0].iter().any(|f| f.number == m.number) {
                                level
                            } else {
                                level + 1
                            },
                            m.number,
                        ));
                    }
                }
                for out in &outcome.outputs {
                    edit.new_files.push((
                        level + 1,
                        FileMetaData {
                            number: out.number,
                            file_size: out.file_size,
                            smallest: out.smallest.clone(),
                            largest: out.largest.clone(),
                        },
                    ));
                }
                edit.compact_pointers
                    .push((level, compaction.largest_input_key.clone()));
                self.sync_last_sequence(&mut state);
                if let Err(e) = state.versions.log_and_apply(edit) {
                    self.set_bg_error(&mut state, format!("compaction install failed: {e}"));
                } else {
                    self.refresh_l0_hint(&state);
                    let stats = &mut state.stats;
                    if use_engine {
                        stats.engine_compactions += 1;
                    } else {
                        stats.sw_fallback_compactions += 1;
                    }
                    stats.compaction_bytes_read += outcome.bytes_read;
                    stats.compaction_bytes_written += outcome.bytes_written;
                    stats.compaction_time += outcome.wall_time;
                    if let Some(t) = outcome.modeled_kernel_time {
                        stats.modeled_kernel_time += t;
                    }
                    if let Some(t) = outcome.modeled_transfer_time {
                        stats.modeled_transfer_time += t;
                    }
                    let lv = &mut stats.per_level[level];
                    lv.compactions += 1;
                    lv.bytes_read += outcome.bytes_read;
                    lv.bytes_written += outcome.bytes_written;
                    lv.files_merged += input_files as u64;
                    let registry = &self.obs.registry;
                    registry
                        .counter(&format!("lsm.compact.l{level}.count"))
                        .inc();
                    registry
                        .counter(&format!("lsm.compact.l{level}.bytes_read"))
                        .add(outcome.bytes_read);
                    registry
                        .counter(&format!("lsm.compact.l{level}.bytes_written"))
                        .add(outcome.bytes_written);
                    registry
                        .counter(&format!("lsm.compact.l{level}.files_merged"))
                        .add(input_files as u64);
                    self.obs.event(obs::EventKind::CompactionFinish {
                        level,
                        bytes_read: outcome.bytes_read,
                        bytes_written: outcome.bytes_written,
                        micros: self.obs.now_micros().saturating_sub(t0),
                    });
                }
            }
            Err(e) => {
                self.set_bg_error(&mut state, format!("compaction failed: {e}"));
            }
        }
        // Completion may unblock both waiters and conflicting candidates.
        self.work_done.notify_all();
        self.wake_workers(&state);
        self.delete_obsolete_files_locked(&mut state);
    }

    /// Removes files no longer referenced by the current version.
    fn delete_obsolete_files(&self) {
        let mut state = self.state.lock(); // LOCK-ORDER: db.state 10
        self.delete_obsolete_files_locked(&mut state);
    }

    // LOCK-HELD: db.state -- takes the guarded DbState by &mut.
    fn delete_obsolete_files_locked(&self, state: &mut DbState) {
        let mut live: HashSet<u64> = state.versions.live_files().into_iter().collect();
        live.extend(state.pending_outputs.iter().copied());
        let log_number = state.versions.log_number;
        let retain_floor = self.wal_retain_floor.load(AtomicOrdering::Acquire);
        let Ok(names) = self.options.env.list_dir(&self.dir) else {
            return;
        };
        for name in names {
            let Some(ft) = parse_file_name(&name) else {
                continue;
            };
            let (remove, number) = match ft {
                // A rotated-away log is obsolete for recovery, but a
                // replication cursor may still be tailing it: the floor
                // pins every segment a registered replica has not yet
                // acknowledged past.
                FileType::Log(n) => (n < log_number && n < retain_floor, n),
                FileType::Table(n) => (!live.contains(&n), n),
                FileType::Temp(n) => (true, n),
                // Value-log segments are not tracked by the version set;
                // only the GC pass (`Db::collect_value_log`) may remove
                // them, after proving every record is dead or rewritten.
                FileType::ValueLog(_) => continue,
                _ => continue,
            };
            if remove {
                let _ = self.options.env.remove_file(&self.dir.join(&name));
                if matches!(ft, FileType::Table(_)) {
                    self.table_cache.evict(number);
                }
            }
        }
    }
}

/// Reproduces an error for fan-out to every writer in a group (the
/// underlying `std::io::Error` is not `Clone`).
fn replicate_err(e: &Error) -> Error {
    match e {
        Error::ReadOnly(m) => Error::ReadOnly(m.clone()),
        Error::Io(io) => Error::Io(std::io::Error::new(io.kind(), io.to_string())),
        Error::Corruption(m) => Error::Corruption(m.clone()),
        other => Error::Corruption(other.to_string()),
    }
}

/// Transient I/O errors are worth retrying; corruption and logic errors
/// are not (retrying cannot make a bad checksum good).
fn is_transient_io(e: &Error) -> bool {
    matches!(e, Error::Io(_) | Error::Table(sstable::Error::Io(_)))
}

/// One unit of admitted background work.
enum CompactionJob {
    /// Flush the immutable memtable (always runs under the same lock hold
    /// that discovered it, so two workers cannot both take it).
    Flush,
    /// An admitted table compaction, executed outside the lock.
    Compact(Box<AdmittedCompaction>),
}

/// A compaction that passed conflict admission, with its request context
/// captured under the lock that admitted it.
struct AdmittedCompaction {
    compaction: crate::version::Compaction,
    ticket: JobTicket,
    smallest_snapshot: u64,
    bottommost: bool,
    input_metas: Vec<Vec<Arc<FileMetaData>>>,
}

/// The conflict footprint of a picked compaction: both input levels'
/// file numbers and the union of their user-key ranges (outputs land
/// anywhere inside it).
fn job_shape(compaction: &crate::version::Compaction) -> JobShape {
    let mut files = HashSet::new();
    let mut smallest: Option<&[u8]> = None;
    let mut largest: Option<&[u8]> = None;
    for f in compaction.inputs.iter().flatten() {
        files.insert(f.number);
        let lo = f.smallest.user_key();
        let hi = f.largest.user_key();
        if smallest.is_none_or(|s| lo < s) {
            smallest = Some(lo);
        }
        if largest.is_none_or(|l| hi > l) {
            largest = Some(hi);
        }
    }
    JobShape {
        level: compaction.level,
        smallest_user: smallest.unwrap_or_default().to_vec(),
        largest_user: largest.unwrap_or_default().to_vec(),
        files,
    }
}

/// Allocates compaction output files inside the DB directory, remembering
/// the numbers it handed out so a failed job releases exactly its own
/// `pending_outputs` entries.
struct DbOutputFactory<'a> {
    inner: &'a DbInner,
    allocated: std::sync::Mutex<Vec<u64>>,
}

impl OutputFileFactory for DbOutputFactory<'_> {
    fn new_output(&self) -> Result<(u64, Box<dyn WritableFile>)> {
        let number = {
            let mut state = self.inner.state.lock(); // LOCK-ORDER: db.state 10
            let n = state.versions.new_file_number();
            state.pending_outputs.insert(n);
            n
        };
        self.allocated
            .lock() // LOCK-ORDER: db.factory.outputs 60
            .unwrap_or_else(|e| e.into_inner())
            .push(number);
        let path = table_file_name(&self.inner.dir, number);
        // DURABILITY-OK: the compaction executor syncs every output
        // (TableBuilder::sync) before the version install references it.
        let file = self.inner.options.env.create_writable(&path)?;
        Ok((number, file))
    }
}

/// Background worker: flushes and compactions until shutdown. All workers
/// run this loop; the conflict checker keeps their picks disjoint.
fn background_thread(inner: Arc<DbInner>) {
    loop {
        let job = {
            let mut state = inner.state.lock(); // LOCK-ORDER: db.state 10
            loop {
                if inner.shutting_down.load(AtomicOrdering::Acquire) {
                    return;
                }
                if state.bg_error.is_none() {
                    match inner.find_work(&mut state) {
                        Some(CompactionJob::Flush) => {
                            // Consumes the guard; `flush_in_progress` is
                            // set before the lock drops for table I/O.
                            match inner.flush_immutable(state) {
                                Ok(s) => state = s,
                                Err(_) => state = inner.state.lock(), // LOCK-ORDER: db.state 10
                            }
                            // L0 grew (or an error idled us): re-scan.
                            inner.wake_workers(&state);
                            continue;
                        }
                        Some(CompactionJob::Compact(job)) => break job,
                        None => {}
                    }
                }
                inner.bg_work.wait(&mut state);
            }
        };
        inner.execute_compaction(*job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::env::MemEnv;

    fn test_options(env: Arc<MemEnv>) -> Options {
        Options {
            env,
            write_buffer_size: 64 << 10,
            slowdown_sleep: false,
            ..Options::default()
        }
    }

    /// A separated store reopened WITHOUT the separation option must
    /// still resolve pointers (resolve-only recovery) — the alternative
    /// is handing tagged stored bytes to the caller, i.e. silent
    /// garbage from tools that open with default options.
    #[test]
    fn separated_store_reopens_readable_without_option() {
        let env = Arc::new(MemEnv::new());
        let with_vlog = Options {
            value_log_threshold_bytes: Some(64),
            value_log_segment_bytes: 4 << 10,
            ..test_options(Arc::clone(&env))
        };
        let big = vec![0xabu8; 512];
        {
            let db = Db::open("/sep", with_vlog).unwrap();
            for i in 0..50u32 {
                db.put(format!("k{i:04}").as_bytes(), &big).unwrap();
                db.put(format!("s{i:04}").as_bytes(), b"small").unwrap();
            }
            db.flush().unwrap();
        }
        let db = Db::open("/sep", test_options(Arc::clone(&env))).unwrap();
        for i in 0..50u32 {
            let got = db.get(format!("k{i:04}").as_bytes()).unwrap();
            assert_eq!(got.as_deref(), Some(big.as_slice()), "pointer k{i:04}");
            let small = db.get(format!("s{i:04}").as_bytes()).unwrap();
            assert_eq!(small.as_deref(), Some(b"small".as_ref()));
        }
        // New writes stay inline (threshold is effectively infinite)
        // but coexist with resolved pointers.
        db.put(b"post", &big).unwrap();
        assert_eq!(db.get(b"post").unwrap().as_deref(), Some(big.as_slice()));
        assert_eq!(
            db.get(b"k0007").unwrap().as_deref(),
            Some(big.as_slice()),
            "old pointers readable after new inline writes"
        );
    }

    /// The tentpole invariant: writers on several threads share group
    /// commits, every acknowledged write is immediately readable, and the
    /// store's contents match a single-threaded model afterwards — across
    /// memtable rotations and flushes.
    #[test]
    fn concurrent_writers_group_commit_and_read_back() {
        let env = Arc::new(MemEnv::new());
        let db = Db::open("/mw", test_options(env)).unwrap();
        const WRITERS: u64 = 4;
        const OPS: u64 = 300;
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let db = &db;
                s.spawn(move || {
                    for i in 0..OPS {
                        let key = format!("w{w}-{i:05}");
                        let value = key.repeat(8);
                        let mut batch = WriteBatch::new();
                        batch.put(key.as_bytes(), value.as_bytes());
                        if i % 7 == 0 && i > 0 {
                            // Batches with several ops keep sequence
                            // ranges wider than one.
                            batch.delete(format!("w{w}-{:05}", i - 1).as_bytes());
                        }
                        let opts = WriteOptions { sync: i % 64 == 0 };
                        db.write(batch, opts).unwrap();
                        if i % 50 == 0 {
                            // Read-your-writes: the ack implies
                            // visibility.
                            let got = db.get(key.as_bytes()).unwrap();
                            assert_eq!(got.as_deref(), Some(value.as_bytes()));
                        }
                    }
                });
            }
        });
        // Model check: every key written and not later deleted is present
        // with the right value; deleted keys are gone.
        for w in 0..WRITERS {
            for i in 0..OPS {
                let key = format!("w{w}-{i:05}");
                let expect_deleted = i + 1 < OPS && (i + 1) % 7 == 0;
                let got = db.get(key.as_bytes()).unwrap();
                if expect_deleted {
                    assert_eq!(got, None, "key {key} should be deleted");
                } else {
                    assert_eq!(
                        got.as_deref(),
                        Some(key.repeat(8).as_bytes()),
                        "key {key} missing or wrong"
                    );
                }
            }
        }
        let stats = db.stats();
        assert!(stats.group_commits >= 1);
        assert!(stats.grouped_writes >= stats.group_commits);
        let metrics = db.property("lsm.metrics").unwrap();
        assert!(metrics.contains("lsm.write.leader"));
        assert!(metrics.contains("lsm.write.seq_reserve"));
    }

    /// A snapshot taken between two concurrent write phases stays frozen
    /// while later writes proceed, and iterators agree with point reads.
    #[test]
    fn snapshot_isolation_under_concurrent_writes() {
        let env = Arc::new(MemEnv::new());
        let db = Db::open("/snap", test_options(env)).unwrap();
        for i in 0..100u32 {
            db.put(format!("k{i:03}").as_bytes(), b"v1").unwrap();
        }
        let snap = db.snapshot();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let db = &db;
                s.spawn(move || {
                    for i in 0..100u32 {
                        db.put(format!("k{i:03}").as_bytes(), b"v2").unwrap();
                    }
                });
            }
        });
        let opts = ReadOptions {
            snapshot: Some(snap.sequence),
        };
        for i in 0..100u32 {
            let key = format!("k{i:03}");
            assert_eq!(
                db.get_with(key.as_bytes(), opts).unwrap().as_deref(),
                Some(&b"v1"[..])
            );
            assert_eq!(db.get(key.as_bytes()).unwrap().as_deref(), Some(&b"v2"[..]));
        }
        let mut it = db.iter().unwrap();
        it.seek_to_first();
        let mut n = 0;
        while it.valid() {
            assert_eq!(it.value(), b"v2");
            n += 1;
            it.next();
        }
        assert_eq!(n, 100);
    }
}
