//! In-memory write buffer: an arena-backed skiplist over internal keys
//! (the paper's *MemTable* / *Immutable MemTable*, Fig. 1).
//!
//! The skiplist uses index-based links into a node vector instead of raw
//! pointers, which keeps it entirely safe Rust while preserving the
//! O(log n) insert/seek structure of LevelDB's `SkipList`. All entry bytes
//! live in one arena, so a 4 MiB memtable performs a handful of large
//! allocations rather than millions of small ones.

use std::cmp::Ordering;
use std::sync::Arc;

use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::ikey::{
    append_internal_key, parse_internal_key, LookupKey, SequenceNumber, ValueType,
};
use sstable::iterator::InternalIterator;

const MAX_HEIGHT: usize = 12;
/// Branching factor 4, as in LevelDB.
const BRANCHING: u32 = 4;

/// Outcome of a memtable point lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum MemGet {
    /// Found a live value.
    Value(Vec<u8>),
    /// Found a tombstone: the key is definitely deleted at this snapshot.
    Deleted,
    /// No entry for the key; check older structures.
    NotFound,
}

struct Node {
    /// (offset, len) of the internal key in the arena.
    key: (u32, u32),
    /// (offset, len) of the value in the arena.
    value: (u32, u32),
    /// next[i] = index of the next node at level i; 0 = none (head is 0).
    next: [u32; MAX_HEIGHT],
}

/// The memtable.
pub struct MemTable {
    cmp: InternalKeyComparator,
    arena: Vec<u8>,
    /// nodes[0] is the head sentinel.
    nodes: Vec<Node>,
    max_height: usize,
    /// Cheap xorshift state for height selection (deterministic).
    rng_state: u32,
    /// Approximate memory usage (arena + node overhead).
    approx_bytes: usize,
    entries: usize,
}

impl MemTable {
    /// Creates an empty memtable.
    pub fn new(cmp: InternalKeyComparator) -> Self {
        let head = Node {
            key: (0, 0),
            value: (0, 0),
            next: [0; MAX_HEIGHT],
        };
        MemTable {
            cmp,
            arena: Vec::with_capacity(1 << 16),
            nodes: vec![head],
            max_height: 1,
            rng_state: 0xdead_beef,
            approx_bytes: 0,
            entries: 0,
        }
    }

    /// Approximate bytes used (drives the flush trigger).
    pub fn approximate_memory_usage(&self) -> usize {
        self.approx_bytes
    }

    /// Number of entries inserted.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True if no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    fn random_height(&mut self) -> usize {
        let mut height = 1;
        while height < MAX_HEIGHT {
            // xorshift32
            let mut x = self.rng_state;
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            self.rng_state = x;
            if x.is_multiple_of(BRANCHING) {
                height += 1;
            } else {
                break;
            }
        }
        height
    }

    fn node_key(&self, idx: u32) -> &[u8] {
        let n = &self.nodes[idx as usize];
        &self.arena[n.key.0 as usize..(n.key.0 + n.key.1) as usize]
    }

    fn node_value(&self, idx: u32) -> &[u8] {
        let n = &self.nodes[idx as usize];
        &self.arena[n.value.0 as usize..(n.value.0 + n.value.1) as usize]
    }

    /// Finds, for each level, the last node whose key is < `key`.
    fn find_splice(&self, key: &[u8]) -> [u32; MAX_HEIGHT] {
        let mut prev = [0u32; MAX_HEIGHT];
        let mut x = 0u32; // head
        for (level, slot) in prev.iter_mut().enumerate().take(self.max_height).rev() {
            loop {
                let next = self.nodes[x as usize].next[level];
                if next != 0 && self.cmp.compare(self.node_key(next), key) == Ordering::Less {
                    x = next;
                } else {
                    break;
                }
            }
            *slot = x;
        }
        prev
    }

    /// First node with key >= `key` (0 if none).
    fn find_greater_or_equal(&self, key: &[u8]) -> u32 {
        let prev = self.find_splice(key);
        self.nodes[prev[0] as usize].next[0]
    }

    /// Inserts an entry. Internal keys are unique because sequence numbers
    /// are unique, so no overwrite case exists.
    pub fn add(
        &mut self,
        seq: SequenceNumber,
        value_type: ValueType,
        user_key: &[u8],
        value: &[u8],
    ) {
        let key_off = self.arena.len() as u32;
        append_internal_key(&mut self.arena, user_key, seq, value_type);
        let key_len = (self.arena.len() - key_off as usize) as u32;
        let value_off = self.arena.len() as u32;
        self.arena.extend_from_slice(value);

        let height = self.random_height();
        if height > self.max_height {
            self.max_height = height;
        }

        let key_range = (key_off as usize, (key_off + key_len) as usize);
        // Borrow-split: compute the splice against the arena before pushing.
        let key_bytes = self.arena[key_range.0..key_range.1].to_vec();
        let prev = self.find_splice(&key_bytes);

        let new_idx = self.nodes.len() as u32;
        let mut node = Node {
            key: (key_off, key_len),
            value: (value_off, value.len() as u32),
            next: [0; MAX_HEIGHT],
        };
        for (level, slot) in node.next.iter_mut().enumerate().take(height) {
            *slot = self.nodes[prev[level] as usize].next[level];
        }
        self.nodes.push(node);
        for (level, &p) in prev.iter().enumerate().take(height) {
            self.nodes[p as usize].next[level] = new_idx;
        }

        self.entries += 1;
        self.approx_bytes += key_len as usize + value.len() + std::mem::size_of::<Node>();
    }

    /// Point lookup at the snapshot encoded in `lookup`.
    pub fn get(&self, lookup: &LookupKey) -> MemGet {
        let idx = self.find_greater_or_equal(lookup.internal_key());
        if idx == 0 {
            return MemGet::NotFound;
        }
        let ikey = self.node_key(idx);
        let Some(parsed) = parse_internal_key(ikey) else {
            return MemGet::NotFound;
        };
        if parsed.user_key != lookup.user_key() {
            return MemGet::NotFound;
        }
        match parsed.value_type {
            ValueType::Value => MemGet::Value(self.node_value(idx).to_vec()),
            ValueType::Deletion => MemGet::Deleted,
        }
    }

    /// Creates an iterator over internal keys. The memtable must outlive
    /// iteration, which the `Arc`-based ownership in the DB guarantees.
    pub fn iter(self: &Arc<Self>) -> MemTableIterator {
        MemTableIterator {
            mem: Arc::clone(self),
            current: 0,
        }
    }

    /// Copies out all entries whose user key is in `[start, end)` as
    /// `(internal_key, value)` pairs, in internal-key order. Used by the
    /// scan path, which needs an owned snapshot it can merge without
    /// holding the DB lock.
    pub fn collect_range(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Vec<u8>, Vec<u8>)> {
        let lk = LookupKey::new(start, sstable::ikey::MAX_SEQUENCE_NUMBER);
        let mut idx = self.find_greater_or_equal(lk.internal_key());
        let mut out = Vec::new();
        while idx != 0 {
            let ikey = self.node_key(idx);
            if let (Some(end), Some(parsed)) = (end, parse_internal_key(ikey)) {
                if parsed.user_key >= end {
                    break;
                }
            }
            out.push((ikey.to_vec(), self.node_value(idx).to_vec()));
            idx = self.nodes[idx as usize].next[0];
        }
        out
    }
}

/// Iterator over a frozen (or momentarily stable) memtable.
pub struct MemTableIterator {
    mem: Arc<MemTable>,
    /// Node index; 0 (head) means invalid.
    current: u32,
}

impl InternalIterator for MemTableIterator {
    fn valid(&self) -> bool {
        self.current != 0
    }

    fn seek_to_first(&mut self) {
        self.current = self.mem.nodes[0].next[0];
    }

    fn seek_to_last(&mut self) {
        let mut x = 0u32;
        for level in (0..self.mem.max_height).rev() {
            loop {
                let next = self.mem.nodes[x as usize].next[level];
                if next != 0 {
                    x = next;
                } else {
                    break;
                }
            }
        }
        self.current = x;
    }

    fn seek(&mut self, target: &[u8]) {
        self.current = self.mem.find_greater_or_equal(target);
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        self.current = self.mem.nodes[self.current as usize].next[0];
    }

    fn prev(&mut self) {
        debug_assert!(self.valid());
        // Skiplists have no back links; re-search for the predecessor.
        let key = self.mem.node_key(self.current).to_vec();
        let prev = self.mem.find_splice(&key);
        self.current = prev[0];
    }

    fn key(&self) -> &[u8] {
        self.mem.node_key(self.current)
    }

    fn value(&self) -> &[u8] {
        self.mem.node_value(self.current)
    }

    fn status(&self) -> sstable::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memtable() -> MemTable {
        MemTable::new(InternalKeyComparator::default())
    }

    #[test]
    fn get_returns_latest_version() {
        let mut m = memtable();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(2, ValueType::Value, b"k", b"v2");
        // Snapshot at seq 10 sees v2.
        assert_eq!(
            m.get(&LookupKey::new(b"k", 10)),
            MemGet::Value(b"v2".to_vec())
        );
        // Snapshot at seq 1 sees v1.
        assert_eq!(
            m.get(&LookupKey::new(b"k", 1)),
            MemGet::Value(b"v1".to_vec())
        );
        // Snapshot at seq 0 predates both.
        assert_eq!(m.get(&LookupKey::new(b"k", 0)), MemGet::NotFound);
    }

    #[test]
    fn tombstones_report_deleted() {
        let mut m = memtable();
        m.add(1, ValueType::Value, b"k", b"v");
        m.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(&LookupKey::new(b"k", 10)), MemGet::Deleted);
        assert_eq!(
            m.get(&LookupKey::new(b"k", 1)),
            MemGet::Value(b"v".to_vec())
        );
        assert_eq!(m.get(&LookupKey::new(b"other", 10)), MemGet::NotFound);
    }

    #[test]
    fn iterator_yields_sorted_internal_keys() {
        let mut m = memtable();
        // Insert out of order.
        for (i, k) in [(3u64, "c"), (1, "a"), (2, "b"), (5, "a"), (4, "d")] {
            m.add(
                i,
                ValueType::Value,
                k.as_bytes(),
                format!("v{i}").as_bytes(),
            );
        }
        let m = Arc::new(m);
        let mut it = m.iter();
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            let p = parse_internal_key(it.key()).unwrap();
            seen.push((p.user_key.to_vec(), p.sequence));
            it.next();
        }
        // "a" seq5 before "a" seq1 (descending seq), then b, c, d.
        assert_eq!(
            seen,
            vec![
                (b"a".to_vec(), 5),
                (b"a".to_vec(), 1),
                (b"b".to_vec(), 2),
                (b"c".to_vec(), 3),
                (b"d".to_vec(), 4),
            ]
        );
    }

    #[test]
    fn iterator_seek_and_prev() {
        let mut m = memtable();
        for i in 0..100u64 {
            m.add(
                i + 1,
                ValueType::Value,
                format!("key{i:03}").as_bytes(),
                b"v",
            );
        }
        let m = Arc::new(m);
        let mut it = m.iter();
        let lk = LookupKey::new(b"key050", u64::MAX >> 8);
        it.seek(lk.internal_key());
        assert!(it.valid());
        assert_eq!(parse_internal_key(it.key()).unwrap().user_key, b"key050");
        it.prev();
        assert_eq!(parse_internal_key(it.key()).unwrap().user_key, b"key049");
        it.seek_to_last();
        assert_eq!(parse_internal_key(it.key()).unwrap().user_key, b"key099");
        it.prev();
        assert_eq!(parse_internal_key(it.key()).unwrap().user_key, b"key098");
    }

    #[test]
    fn memory_usage_grows() {
        let mut m = memtable();
        let before = m.approximate_memory_usage();
        m.add(1, ValueType::Value, b"key", &[0u8; 1000]);
        assert!(m.approximate_memory_usage() >= before + 1000);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn large_insert_stays_sorted() {
        let mut m = memtable();
        let mut keys: Vec<u64> = (0..5000).collect();
        // Deterministic shuffle.
        let mut s = 12345u64;
        for i in (1..keys.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            keys.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for (seq, k) in keys.iter().enumerate() {
            m.add(
                seq as u64 + 1,
                ValueType::Value,
                format!("{k:08}").as_bytes(),
                b"",
            );
        }
        let m = Arc::new(m);
        let mut it = m.iter();
        it.seek_to_first();
        let mut count = 0u64;
        let mut last: Option<Vec<u8>> = None;
        while it.valid() {
            let uk = parse_internal_key(it.key()).unwrap().user_key.to_vec();
            if let Some(l) = &last {
                assert!(l < &uk);
            }
            last = Some(uk);
            count += 1;
            it.next();
        }
        assert_eq!(count, 5000);
    }
}
