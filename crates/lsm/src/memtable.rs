//! In-memory write buffer: a *sharded* arena-backed skiplist over
//! internal keys (the paper's *MemTable* / *Immutable MemTable*, Fig. 1),
//! supporting concurrent multi-reader/multi-writer inserts.
//!
//! Each shard is the original safe-Rust skiplist: index-based links into
//! a node vector instead of raw pointers (preserving the O(log n)
//! insert/seek structure of LevelDB's `SkipList`), with all entry bytes
//! in one arena so a 4 MiB memtable performs a handful of large
//! allocations rather than millions of small ones. A user key is routed
//! to a shard by an FNV-1a hash, so every version of a key lives in one
//! shard and a point lookup locks exactly one shard. Concurrent writers
//! on different shards proceed in parallel; writers on the same shard
//! serialize only against each other — this is the sharded-arena
//! variant of KVLite's multi-reader/multi-writer memtable, kept entirely
//! in safe Rust.
//!
//! Size accounting (`approximate_memory_usage`, the flush trigger) is
//! atomic so the write path can poll it without any lock. Iteration
//! (`iter`, `collect_range`) merges the shards' sorted runs; iterators
//! own their snapshot of the entries, so they never hold shard locks
//! across calls and tolerate concurrent inserts.

use std::cmp::Ordering;

use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::ikey::{
    append_internal_key, parse_internal_key, LookupKey, SequenceNumber, ValueType,
};
use sstable::iterator::InternalIterator;

use crate::sync_shim::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use crate::sync_shim::{lock, Mutex};

const MAX_HEIGHT: usize = 12;
/// Branching factor 4, as in LevelDB.
const BRANCHING: u32 = 4;

/// Default shard count for the concurrent memtable; see
/// [`crate::Options::memtable_shards`].
pub const DEFAULT_MEMTABLE_SHARDS: usize = 8;
/// Shard counts are clamped to this (routing uses a 64-bit hash, so more
/// shards buy nothing but per-shard overhead).
pub const MAX_MEMTABLE_SHARDS: usize = 64;

/// Outcome of a memtable point lookup.
#[derive(Debug, PartialEq, Eq)]
pub enum MemGet {
    /// Found a live value.
    Value(Vec<u8>),
    /// Found a tombstone: the key is definitely deleted at this snapshot.
    Deleted,
    /// No entry for the key; check older structures.
    NotFound,
}

struct Node {
    /// (offset, len) of the internal key in the arena.
    key: (u32, u32),
    /// (offset, len) of the value in the arena.
    value: (u32, u32),
    /// next[i] = index of the next node at level i; 0 = none (head is 0).
    next: [u32; MAX_HEIGHT],
}

/// One shard: the original single-writer index-linked skiplist.
struct Core {
    arena: Vec<u8>,
    /// nodes[0] is the head sentinel.
    nodes: Vec<Node>,
    max_height: usize,
    /// Cheap xorshift state for height selection (deterministic per
    /// shard given its insert order).
    rng_state: u32,
}

impl Core {
    fn new(shard_index: usize) -> Self {
        let head = Node {
            key: (0, 0),
            value: (0, 0),
            next: [0; MAX_HEIGHT],
        };
        Core {
            arena: Vec::with_capacity(1 << 16),
            nodes: vec![head],
            max_height: 1,
            // Distinct deterministic seed per shard (must be nonzero for
            // xorshift).
            rng_state: (0xdead_beef ^ (shard_index as u32).wrapping_mul(0x9e37_79b9)) | 1,
        }
    }

    fn random_height(&mut self) -> usize {
        let mut height = 1;
        while height < MAX_HEIGHT {
            // xorshift32
            let mut x = self.rng_state;
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            self.rng_state = x;
            if x.is_multiple_of(BRANCHING) {
                height += 1;
            } else {
                break;
            }
        }
        height
    }

    fn node_key(&self, idx: u32) -> &[u8] {
        let n = &self.nodes[idx as usize];
        &self.arena[n.key.0 as usize..(n.key.0 + n.key.1) as usize]
    }

    fn node_value(&self, idx: u32) -> &[u8] {
        let n = &self.nodes[idx as usize];
        &self.arena[n.value.0 as usize..(n.value.0 + n.value.1) as usize]
    }

    /// Finds, for each level, the last node whose key is < `key`.
    fn find_splice(&self, cmp: &InternalKeyComparator, key: &[u8]) -> [u32; MAX_HEIGHT] {
        let mut prev = [0u32; MAX_HEIGHT];
        let mut x = 0u32; // head
        for (level, slot) in prev.iter_mut().enumerate().take(self.max_height).rev() {
            loop {
                let next = self.nodes[x as usize].next[level];
                if next != 0 && cmp.compare(self.node_key(next), key) == Ordering::Less {
                    x = next;
                } else {
                    break;
                }
            }
            *slot = x;
        }
        prev
    }

    /// First node with key >= `key` (0 if none).
    fn find_greater_or_equal(&self, cmp: &InternalKeyComparator, key: &[u8]) -> u32 {
        let prev = self.find_splice(cmp, key);
        self.nodes[prev[0] as usize].next[0]
    }

    /// Inserts an entry; returns the bytes charged to the size counter.
    fn add(
        &mut self,
        cmp: &InternalKeyComparator,
        seq: SequenceNumber,
        value_type: ValueType,
        user_key: &[u8],
        value: &[u8],
    ) -> usize {
        let key_off = self.arena.len() as u32;
        append_internal_key(&mut self.arena, user_key, seq, value_type);
        let key_len = (self.arena.len() - key_off as usize) as u32;
        let value_off = self.arena.len() as u32;
        self.arena.extend_from_slice(value);

        let height = self.random_height();
        if height > self.max_height {
            self.max_height = height;
        }

        let key_range = (key_off as usize, (key_off + key_len) as usize);
        // Borrow-split: compute the splice against the arena before pushing.
        let key_bytes = self.arena[key_range.0..key_range.1].to_vec();
        let prev = self.find_splice(cmp, &key_bytes);

        let new_idx = self.nodes.len() as u32;
        let mut node = Node {
            key: (key_off, key_len),
            value: (value_off, value.len() as u32),
            next: [0; MAX_HEIGHT],
        };
        for (level, slot) in node.next.iter_mut().enumerate().take(height) {
            *slot = self.nodes[prev[level] as usize].next[level];
        }
        self.nodes.push(node);
        for (level, &p) in prev.iter().enumerate().take(height) {
            self.nodes[p as usize].next[level] = new_idx;
        }

        key_len as usize + value.len() + std::mem::size_of::<Node>()
    }

    /// Copies out `(internal_key, value)` pairs starting at the first
    /// node with internal key >= `from`, stopping at a user key >= `end`
    /// (when given). The run is sorted in internal-key order.
    fn collect_from(
        &self,
        cmp: &InternalKeyComparator,
        from: &[u8],
        end: Option<&[u8]>,
    ) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut idx = self.find_greater_or_equal(cmp, from);
        let mut out = Vec::new();
        while idx != 0 {
            let ikey = self.node_key(idx);
            if let (Some(end), Some(parsed)) = (end, parse_internal_key(ikey)) {
                if parsed.user_key >= end {
                    break;
                }
            }
            out.push((ikey.to_vec(), self.node_value(idx).to_vec()));
            idx = self.nodes[idx as usize].next[0];
        }
        out
    }
}

/// The concurrent memtable: N independently locked skiplist shards.
pub struct MemTable {
    cmp: InternalKeyComparator,
    shards: Box<[Mutex<Core>]>,
    /// Approximate memory usage (arena + node overhead), readable
    /// lock-free (drives the flush trigger on the write fast path).
    approx_bytes: AtomicUsize,
    entries: AtomicUsize,
}

impl MemTable {
    /// Creates an empty memtable with the default shard count.
    pub fn new(cmp: InternalKeyComparator) -> Self {
        Self::with_shards(cmp, DEFAULT_MEMTABLE_SHARDS)
    }

    /// Creates an empty memtable with `shards` skiplist shards (clamped
    /// to `1..=`[`MAX_MEMTABLE_SHARDS`]). One shard reproduces the old
    /// single-skiplist layout (all writers serialize on it).
    pub fn with_shards(cmp: InternalKeyComparator, shards: usize) -> Self {
        let n = shards.clamp(1, MAX_MEMTABLE_SHARDS);
        MemTable {
            cmp,
            shards: (0..n).map(|i| Mutex::new(Core::new(i))).collect(),
            approx_bytes: AtomicUsize::new(0),
            entries: AtomicUsize::new(0),
        }
    }

    /// The shard a user key routes to (FNV-1a; every version of a user
    /// key lands in the same shard).
    fn shard_for(&self, user_key: &[u8]) -> &Mutex<Core> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in user_key {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Approximate bytes used (drives the flush trigger). Lock-free.
    pub fn approximate_memory_usage(&self) -> usize {
        self.approx_bytes.load(AtomicOrdering::Acquire)
    }

    /// Number of entries inserted. Lock-free.
    pub fn len(&self) -> usize {
        self.entries.load(AtomicOrdering::Acquire)
    }

    /// True if no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts an entry. Internal keys are unique because sequence
    /// numbers are unique, so no overwrite case exists. `&self`:
    /// concurrent writers are legal and serialize only per shard.
    pub fn add(&self, seq: SequenceNumber, value_type: ValueType, user_key: &[u8], value: &[u8]) {
        let charged = {
            let mut core = lock(self.shard_for(user_key)); // LOCK-ORDER: mem.shard 80
            core.add(&self.cmp, seq, value_type, user_key, value)
        };
        self.entries.fetch_add(1, AtomicOrdering::AcqRel);
        self.approx_bytes.fetch_add(charged, AtomicOrdering::AcqRel);
    }

    /// Point lookup at the snapshot encoded in `lookup`. Locks exactly
    /// the shard owning the user key.
    pub fn get(&self, lookup: &LookupKey) -> MemGet {
        let core = lock(self.shard_for(lookup.user_key())); // LOCK-ORDER: mem.shard 80
        let idx = core.find_greater_or_equal(&self.cmp, lookup.internal_key());
        if idx == 0 {
            return MemGet::NotFound;
        }
        let ikey = core.node_key(idx);
        let Some(parsed) = parse_internal_key(ikey) else {
            return MemGet::NotFound;
        };
        if parsed.user_key != lookup.user_key() {
            return MemGet::NotFound;
        }
        match parsed.value_type {
            ValueType::Value => MemGet::Value(core.node_value(idx).to_vec()),
            ValueType::Deletion => MemGet::Deleted,
        }
    }

    /// Creates an iterator over internal keys. The iterator owns a
    /// merged snapshot of the shards' sorted runs taken at creation, so
    /// it holds no locks afterwards; entries inserted concurrently after
    /// creation may be missing (the flush path only iterates frozen
    /// memtables, and the write path's visibility ledger guarantees
    /// every entry at or below the read sequence is already inserted).
    pub fn iter(&self) -> MemTableIterator {
        MemTableIterator {
            entries: self.collect_range(b"", None),
            pos: usize::MAX,
        }
    }

    /// Copies out all entries whose user key is in `[start, end)` as
    /// `(internal_key, value)` pairs, in internal-key order. Used by the
    /// scan path, which needs an owned snapshot it can merge without
    /// holding any memtable lock.
    pub fn collect_range(&self, start: &[u8], end: Option<&[u8]>) -> Vec<(Vec<u8>, Vec<u8>)> {
        let lk = LookupKey::new(start, sstable::ikey::MAX_SEQUENCE_NUMBER);
        let runs: Vec<Vec<(Vec<u8>, Vec<u8>)>> = self
            .shards
            .iter()
            .map(|s| lock(s).collect_from(&self.cmp, lk.internal_key(), end)) // LOCK-ORDER: mem.shard 80
            .collect();
        merge_sorted_runs(&self.cmp, runs)
    }
}

/// K-way merge of per-shard sorted runs into one internal-key-ordered
/// vector. Shard runs never contain equal internal keys (sequence
/// numbers are unique), so ties cannot occur.
fn merge_sorted_runs(
    cmp: &InternalKeyComparator,
    runs: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<(Vec<u8>, Vec<u8>)>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heads: Vec<Option<(Vec<u8>, Vec<u8>)>> = iters.iter_mut().map(Iterator::next).collect();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for i in 0..heads.len() {
            let Some((key, _)) = &heads[i] else { continue };
            best = match best {
                None => Some(i),
                Some(b) => {
                    let best_key: &[u8] = match &heads[b] {
                        Some((k, _)) => k,
                        None => &[],
                    };
                    if cmp.compare(key, best_key) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        if let Some(entry) = heads[b].take() {
            out.push(entry);
        }
        heads[b] = iters[b].next();
    }
    out
}

/// Iterator over a frozen (or momentarily stable) memtable: an owned,
/// merged, internal-key-sorted snapshot of every shard.
pub struct MemTableIterator {
    entries: Vec<(Vec<u8>, Vec<u8>)>,
    /// Index into `entries`; `usize::MAX` (or past-end) means invalid.
    pos: usize,
}

impl InternalIterator for MemTableIterator {
    fn valid(&self) -> bool {
        self.pos < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.pos = if self.entries.is_empty() {
            usize::MAX
        } else {
            0
        };
    }

    fn seek_to_last(&mut self) {
        self.pos = match self.entries.len() {
            0 => usize::MAX,
            n => n - 1,
        };
    }

    fn seek(&mut self, target: &[u8]) {
        let cmp = InternalKeyComparator::default();
        self.pos = self
            .entries
            .partition_point(|(k, _)| cmp.compare(k, target) == Ordering::Less);
        if self.pos >= self.entries.len() {
            self.pos = usize::MAX;
        }
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        self.pos = match self.pos.checked_add(1) {
            Some(p) if p < self.entries.len() => p,
            _ => usize::MAX,
        };
    }

    fn prev(&mut self) {
        debug_assert!(self.valid());
        self.pos = match self.pos.checked_sub(1) {
            Some(p) => p,
            None => usize::MAX,
        };
    }

    fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.entries[self.pos].1
    }

    fn status(&self) -> sstable::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memtable() -> MemTable {
        MemTable::new(InternalKeyComparator::default())
    }

    #[test]
    fn get_returns_latest_version() {
        let m = memtable();
        m.add(1, ValueType::Value, b"k", b"v1");
        m.add(2, ValueType::Value, b"k", b"v2");
        // Snapshot at seq 10 sees v2.
        assert_eq!(
            m.get(&LookupKey::new(b"k", 10)),
            MemGet::Value(b"v2".to_vec())
        );
        // Snapshot at seq 1 sees v1.
        assert_eq!(
            m.get(&LookupKey::new(b"k", 1)),
            MemGet::Value(b"v1".to_vec())
        );
        // Snapshot at seq 0 predates both.
        assert_eq!(m.get(&LookupKey::new(b"k", 0)), MemGet::NotFound);
    }

    #[test]
    fn tombstones_report_deleted() {
        let m = memtable();
        m.add(1, ValueType::Value, b"k", b"v");
        m.add(2, ValueType::Deletion, b"k", b"");
        assert_eq!(m.get(&LookupKey::new(b"k", 10)), MemGet::Deleted);
        assert_eq!(
            m.get(&LookupKey::new(b"k", 1)),
            MemGet::Value(b"v".to_vec())
        );
        assert_eq!(m.get(&LookupKey::new(b"other", 10)), MemGet::NotFound);
    }

    #[test]
    fn iterator_yields_sorted_internal_keys() {
        let m = memtable();
        // Insert out of order.
        for (i, k) in [(3u64, "c"), (1, "a"), (2, "b"), (5, "a"), (4, "d")] {
            m.add(
                i,
                ValueType::Value,
                k.as_bytes(),
                format!("v{i}").as_bytes(),
            );
        }
        let mut it = m.iter();
        it.seek_to_first();
        let mut seen = Vec::new();
        while it.valid() {
            let p = parse_internal_key(it.key()).unwrap();
            seen.push((p.user_key.to_vec(), p.sequence));
            it.next();
        }
        // "a" seq5 before "a" seq1 (descending seq), then b, c, d.
        assert_eq!(
            seen,
            vec![
                (b"a".to_vec(), 5),
                (b"a".to_vec(), 1),
                (b"b".to_vec(), 2),
                (b"c".to_vec(), 3),
                (b"d".to_vec(), 4),
            ]
        );
    }

    #[test]
    fn iterator_seek_and_prev() {
        let m = memtable();
        for i in 0..100u64 {
            m.add(
                i + 1,
                ValueType::Value,
                format!("key{i:03}").as_bytes(),
                b"v",
            );
        }
        let mut it = m.iter();
        let lk = LookupKey::new(b"key050", u64::MAX >> 8);
        it.seek(lk.internal_key());
        assert!(it.valid());
        assert_eq!(parse_internal_key(it.key()).unwrap().user_key, b"key050");
        it.prev();
        assert_eq!(parse_internal_key(it.key()).unwrap().user_key, b"key049");
        it.seek_to_last();
        assert_eq!(parse_internal_key(it.key()).unwrap().user_key, b"key099");
        it.prev();
        assert_eq!(parse_internal_key(it.key()).unwrap().user_key, b"key098");
    }

    #[test]
    fn memory_usage_grows() {
        let m = memtable();
        let before = m.approximate_memory_usage();
        m.add(1, ValueType::Value, b"key", &[0u8; 1000]);
        assert!(m.approximate_memory_usage() >= before + 1000);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn large_insert_stays_sorted() {
        let m = memtable();
        let mut keys: Vec<u64> = (0..5000).collect();
        // Deterministic shuffle.
        let mut s = 12345u64;
        for i in (1..keys.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            keys.swap(i, (s % (i as u64 + 1)) as usize);
        }
        for (seq, k) in keys.iter().enumerate() {
            m.add(
                seq as u64 + 1,
                ValueType::Value,
                format!("{k:08}").as_bytes(),
                b"",
            );
        }
        let mut it = m.iter();
        it.seek_to_first();
        let mut count = 0u64;
        let mut last: Option<Vec<u8>> = None;
        while it.valid() {
            let uk = parse_internal_key(it.key()).unwrap().user_key.to_vec();
            if let Some(l) = &last {
                assert!(l < &uk);
            }
            last = Some(uk);
            count += 1;
            it.next();
        }
        assert_eq!(count, 5000);
    }

    #[test]
    fn one_shard_matches_sharded_contents() {
        let sharded = MemTable::with_shards(InternalKeyComparator::default(), 8);
        let single = MemTable::with_shards(InternalKeyComparator::default(), 1);
        for i in 0..500u64 {
            let k = format!("k{:04}", (i * 37) % 500);
            sharded.add(i + 1, ValueType::Value, k.as_bytes(), b"v");
            single.add(i + 1, ValueType::Value, k.as_bytes(), b"v");
        }
        assert_eq!(
            sharded.collect_range(b"", None),
            single.collect_range(b"", None)
        );
        assert_eq!(sharded.len(), single.len());
    }

    /// Multi-writer stress: concurrent inserts from several threads must
    /// all land, stay sorted, and serve concurrent point reads. Under
    /// `--cfg loom` the shard locks cross scheduling points; under the
    /// TSan CI job this is the data-race probe for the sharded memtable.
    #[test]
    fn concurrent_writers_and_readers() {
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 400;
        let m = MemTable::new(InternalKeyComparator::default());
        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let m = &m;
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        // Interleave key ranges so threads collide on shards.
                        let key = format!("key{:06}", i * WRITERS + w);
                        let seq = w * PER_WRITER + i + 1;
                        m.add(seq, ValueType::Value, key.as_bytes(), key.as_bytes());
                    }
                });
            }
            // A reader polls for a key the first writer inserts early.
            let m = &m;
            s.spawn(move || {
                let key = format!("key{:06}", 0);
                for _ in 0..1000 {
                    match m.get(&LookupKey::new(key.as_bytes(), u64::MAX >> 8)) {
                        MemGet::Value(v) => {
                            assert_eq!(v, key.as_bytes());
                            return;
                        }
                        MemGet::NotFound => std::thread::yield_now(),
                        MemGet::Deleted => panic!("never deleted"),
                    }
                }
            });
        });
        assert_eq!(m.len() as u64, WRITERS * PER_WRITER);
        let all = m.collect_range(b"", None);
        assert_eq!(all.len() as u64, WRITERS * PER_WRITER);
        assert!(all
            .windows(2)
            .all(|w| parse_internal_key(&w[0].0).unwrap().user_key
                < parse_internal_key(&w[1].0).unwrap().user_key));
        for w in 0..WRITERS {
            let key = format!("key{:06}", w);
            assert_eq!(
                m.get(&LookupKey::new(key.as_bytes(), u64::MAX >> 8)),
                MemGet::Value(key.into_bytes())
            );
        }
    }
}
