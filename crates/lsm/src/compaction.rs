//! Compaction execution: the [`CompactionEngine`] abstraction the paper's
//! architecture introduces (Fig. 6), plus the software (CPU) engine.
//!
//! The DB builds a [`CompactionRequest`] describing the inputs exactly the
//! way the paper's host side does (§IV step 2): for level 0 every SSTable
//! is its own input because key ranges overlap; for deeper levels the
//! sorted, disjoint run of SSTables is concatenated into a single input.
//! The engine merges the inputs and produces new SSTables; whether that
//! happens on the CPU or on the (simulated) FPGA is the paper's entire
//! subject.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::env::WritableFile;
use sstable::ikey::{parse_internal_key, InternalKey, SequenceNumber, ValueType};
use sstable::iterator::{InternalIterator, MergingIterator};
use sstable::table::Table;
use sstable::table_builder::{TableBuilder, TableBuilderOptions};

use crate::{Error, Result};

/// One merge input: a run of tables that is internally sorted and
/// disjoint (a single table for L0 inputs; the whole level-i+1 overlap
/// run otherwise).
pub struct CompactionInput {
    /// Tables in ascending key order.
    pub tables: Vec<Arc<Table>>,
}

impl CompactionInput {
    /// Total bytes across the input's tables.
    pub fn bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.file_size()).sum()
    }
}

/// Everything an engine needs to execute one compaction.
pub struct CompactionRequest {
    /// Source level of the compaction (`0` for L0 -> L1). Schedulers use
    /// it to prioritize shallow compactions, which unblock writers.
    pub level: usize,
    /// Merge inputs (the paper's `N`).
    pub inputs: Vec<CompactionInput>,
    /// Entries at or below this sequence that are shadowed by newer
    /// entries for the same user key can be dropped.
    pub smallest_snapshot: SequenceNumber,
    /// True when the output level is the bottommost level containing this
    /// key range: deletion tombstones themselves can then be dropped.
    pub bottommost: bool,
    /// Output table shape.
    pub builder_options: TableBuilderOptions,
    /// Target output file size (paper §V-A: e.g. 2 MiB).
    pub max_output_file_size: u64,
}

/// Metadata of one produced table.
#[derive(Debug, Clone)]
pub struct OutputTableMeta {
    /// File number assigned by the factory.
    pub number: u64,
    /// Final file size.
    pub file_size: u64,
    /// Smallest internal key written.
    pub smallest: InternalKey,
    /// Largest internal key written.
    pub largest: InternalKey,
    /// Entries written.
    pub entries: u64,
}

/// What a compaction produced, plus accounting the experiments report.
#[derive(Debug, Default)]
pub struct CompactionOutcome {
    /// Output tables, in key order.
    pub outputs: Vec<OutputTableMeta>,
    /// Bytes read from inputs.
    pub bytes_read: u64,
    /// Bytes written to outputs.
    pub bytes_written: u64,
    /// Entries dropped (shadowed or tombstoned).
    pub entries_dropped: u64,
    /// Entries written.
    pub entries_written: u64,
    /// Wall-clock execution time of the engine.
    pub wall_time: Duration,
    /// For simulated engines: the modeled device kernel time. The system
    /// simulator charges this, not `wall_time`.
    pub modeled_kernel_time: Option<Duration>,
    /// For offloaded engines: modeled host<->device transfer time.
    pub modeled_transfer_time: Option<Duration>,
}

/// Allocates output files for an engine.
pub trait OutputFileFactory: Send + Sync {
    /// Creates a new output table file, returning its number and writer.
    fn new_output(&self) -> Result<(u64, Box<dyn WritableFile>)>;
}

/// Backpressure advice an engine (or a scheduling service wrapping one)
/// gives the write path. The DB translates this into the same slowdown /
/// stall mechanics as its L0 triggers, so a saturated offload queue slows
/// writers *before* L0 piles up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WritePressure {
    /// Keep writing at full speed.
    #[default]
    None,
    /// Inject the 1 ms write delay (queue is filling).
    Slowdown,
    /// Stall writes until background work completes (queue is full).
    Stop,
}

/// Executes compactions; implemented by the CPU merge here and by the
/// simulated FPGA engine in the `fcae` crate.
pub trait CompactionEngine: Send + Sync {
    /// Engine name for logs and stats.
    fn name(&self) -> &str;
    /// Maximum number of inputs the engine accepts (the paper's `N`);
    /// requests with more inputs fall back to software (Fig. 6).
    fn max_inputs(&self) -> usize;
    /// Runs the compaction.
    fn compact(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
    ) -> Result<CompactionOutcome>;
    /// Current backpressure toward writers. Plain engines never push back
    /// (the DB's own L0 triggers still apply); scheduling services
    /// override this to surface queue saturation.
    fn write_pressure(&self) -> WritePressure {
        WritePressure::None
    }
    /// Runs a maintenance job (value-log GC) through the engine's
    /// scheduler so it contends with compactions for engine slots.
    /// Plain engines run it inline; scheduling services override this to
    /// queue it at maintenance priority.
    fn run_maintenance(&self, job: &mut dyn FnMut()) {
        job();
    }
}

/// Iterates a run of internally-sorted, disjoint tables back to back.
pub struct ChainIterator {
    tables: Vec<Arc<Table>>,
    current: Option<(usize, sstable::table::TableIterator)>,
}

impl ChainIterator {
    /// Creates an iterator over `tables` (ascending key order).
    pub fn new(tables: Vec<Arc<Table>>) -> Self {
        ChainIterator {
            tables,
            current: None,
        }
    }

    fn set_table(&mut self, idx: usize) -> bool {
        if idx >= self.tables.len() {
            self.current = None;
            return false;
        }
        self.current = Some((idx, self.tables[idx].iter()));
        true
    }
}

impl InternalIterator for ChainIterator {
    fn valid(&self) -> bool {
        self.current.as_ref().is_some_and(|(_, it)| it.valid())
    }

    fn seek_to_first(&mut self) {
        let mut idx = 0;
        while self.set_table(idx) {
            // PANIC-OK: set_table(idx) returning true fills self.current.
            let (_, it) = self.current.as_mut().unwrap();
            it.seek_to_first();
            if it.valid() {
                return;
            }
            idx += 1;
        }
    }

    fn seek_to_last(&mut self) {
        let mut idx = self.tables.len();
        while idx > 0 {
            idx -= 1;
            self.set_table(idx);
            // PANIC-OK: idx < tables.len() here, so set_table filled
            // self.current.
            let (_, it) = self.current.as_mut().unwrap();
            it.seek_to_last();
            if it.valid() {
                return;
            }
        }
        self.current = None;
    }

    fn seek(&mut self, target: &[u8]) {
        // Tables are disjoint and ordered: scan for the first table whose
        // contents can reach `target`, then seek within it.
        let mut idx = 0;
        while self.set_table(idx) {
            // PANIC-OK: set_table(idx) returning true fills self.current.
            let (_, it) = self.current.as_mut().unwrap();
            it.seek(target);
            if it.valid() {
                return;
            }
            idx += 1;
        }
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        // PANIC-OK: InternalIterator contract — next() only on a valid
        // iterator, and valid() requires current to be Some.
        let (idx, it) = self.current.as_mut().unwrap();
        let idx = *idx;
        it.next();
        if !it.valid() {
            let mut next_idx = idx + 1;
            while self.set_table(next_idx) {
                // PANIC-OK: set_table returning true fills self.current.
                let (_, it) = self.current.as_mut().unwrap();
                it.seek_to_first();
                if it.valid() {
                    return;
                }
                next_idx += 1;
            }
        }
    }

    fn prev(&mut self) {
        debug_assert!(self.valid());
        // PANIC-OK: InternalIterator contract — prev() only on a valid
        // iterator, and valid() requires current to be Some.
        let (idx, it) = self.current.as_mut().unwrap();
        let idx = *idx;
        it.prev();
        if !it.valid() {
            let mut prev_idx = idx;
            while prev_idx > 0 {
                prev_idx -= 1;
                self.set_table(prev_idx);
                // PANIC-OK: prev_idx < tables.len(), so set_table filled
                // self.current.
                let (_, it) = self.current.as_mut().unwrap();
                it.seek_to_last();
                if it.valid() {
                    return;
                }
            }
            self.current = None;
        }
    }

    fn key(&self) -> &[u8] {
        self.current
            .as_ref()
            // PANIC-OK: InternalIterator contract — key() only when valid().
            .expect("key on invalid iterator")
            .1
            .key()
    }

    fn value(&self) -> &[u8] {
        self.current
            .as_ref()
            // PANIC-OK: InternalIterator contract — value() only when valid().
            .expect("value on invalid iterator")
            .1
            .value()
    }

    fn status(&self) -> sstable::Result<()> {
        match &self.current {
            Some((_, it)) => it.status(),
            None => Ok(()),
        }
    }
}

/// Decides, entry by entry, whether a merged internal key survives
/// compaction. This implements LevelDB's `DoCompactionWork` drop rules and
/// is the exact contract the paper's *Validity Check* module enforces in
/// hardware, so both engines share it.
#[derive(Clone)]
pub struct DropFilter {
    smallest_snapshot: SequenceNumber,
    bottommost: bool,
    /// Previous entry's user key, in a buffer reused across entries so
    /// the per-entry path never allocates (only grows capacity when a
    /// longer key than any before arrives).
    last_user_key: Vec<u8>,
    has_last_user_key: bool,
    /// Sequence of the previous (newer) entry for the current user key;
    /// `None` on the first occurrence of a key.
    prev_sequence_for_key: Option<SequenceNumber>,
}

impl DropFilter {
    /// Creates the filter for one compaction.
    pub fn new(smallest_snapshot: SequenceNumber, bottommost: bool) -> Self {
        DropFilter {
            smallest_snapshot,
            bottommost,
            last_user_key: Vec::new(),
            has_last_user_key: false,
            prev_sequence_for_key: None,
        }
    }

    /// Returns true if the entry with internal key `ikey` must be dropped.
    /// Must be called in merged key order.
    pub fn should_drop(&mut self, ikey: &[u8]) -> bool {
        let Some(parsed) = parse_internal_key(ikey) else {
            // Unparseable keys are passed through so corruption stays
            // visible downstream rather than silently vanishing.
            self.has_last_user_key = false;
            self.prev_sequence_for_key = None;
            return false;
        };
        let first_occurrence =
            !self.has_last_user_key || self.last_user_key.as_slice() != parsed.user_key;
        if first_occurrence {
            self.last_user_key.clear();
            self.last_user_key.extend_from_slice(parsed.user_key);
            self.has_last_user_key = true;
            self.prev_sequence_for_key = None;
        }

        let drop = match self.prev_sequence_for_key {
            // A newer entry for this user key is already visible at the
            // oldest snapshot: this one is shadowed.
            Some(prev) if prev <= self.smallest_snapshot => true,
            _ => {
                parsed.value_type == ValueType::Deletion
                    && parsed.sequence <= self.smallest_snapshot
                    && self.bottommost
            }
        };
        self.prev_sequence_for_key = Some(parsed.sequence);
        drop
    }
}

/// The software baseline: a single-threaded merge through the standard
/// iterator stack, building standard tables (what LevelDB's background
/// thread does on the CPU).
pub struct CpuCompactionEngine;

impl CompactionEngine for CpuCompactionEngine {
    fn name(&self) -> &str {
        "cpu"
    }

    fn max_inputs(&self) -> usize {
        usize::MAX
    }

    fn compact(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
    ) -> Result<CompactionOutcome> {
        let start = Instant::now();
        let icmp: Arc<dyn Comparator> = Arc::new(InternalKeyComparator::default());
        let children: Vec<Box<dyn InternalIterator>> = req
            .inputs
            .iter()
            .map(|input| {
                Box::new(ChainIterator::new(input.tables.clone())) as Box<dyn InternalIterator>
            })
            .collect();
        let mut merger = MergingIterator::new(children, icmp);
        merger.seek_to_first();

        let mut outcome = CompactionOutcome {
            bytes_read: req.inputs.iter().map(|i| i.bytes()).sum(),
            ..Default::default()
        };
        let mut filter = DropFilter::new(req.smallest_snapshot, req.bottommost);
        let mut builder: Option<(u64, TableBuilder)> = None;
        let mut smallest: Option<InternalKey> = None;
        // Reused per-entry; materialized as an InternalKey only when a
        // table closes, so the hot loop never allocates for it.
        let mut largest_buf: Vec<u8> = Vec::new();

        while merger.valid() {
            let key = merger.key();
            if filter.should_drop(key) {
                outcome.entries_dropped += 1;
                merger.next();
                continue;
            }
            if builder.is_none() {
                let (number, file) = out.new_output()?;
                builder = Some((number, TableBuilder::new(req.builder_options.clone(), file)));
                smallest = Some(InternalKey::from_encoded(key.to_vec()));
            }
            // PANIC-OK: the branch above creates the builder when None.
            let (_, b) = builder.as_mut().expect("builder initialized above");
            b.add(key, merger.value())?;
            outcome.entries_written += 1;
            largest_buf.clear();
            largest_buf.extend_from_slice(key);
            if b.file_size() >= req.max_output_file_size {
                // PANIC-OK: only reachable inside the Some(builder) path.
                let (number, mut b) = builder.take().expect("builder present when splitting");
                let entries = b.num_entries();
                let size = b.finish()?;
                // Outputs must be durable before the manifest can
                // reference them; a power cut between install and a
                // lazy sync would tear a live table.
                b.sync()?;
                outcome.bytes_written += size;
                outcome.outputs.push(OutputTableMeta {
                    number,
                    file_size: size,
                    // PANIC-OK: smallest is set whenever a builder opens.
                    smallest: smallest.take().expect("smallest set with builder"),
                    largest: InternalKey::from_encoded(largest_buf.clone()),
                    entries,
                });
            }
            merger.next();
        }
        merger.status().map_err(Error::from)?;

        if let Some((number, mut b)) = builder.take() {
            let entries = b.num_entries();
            let size = b.finish()?;
            b.sync()?;
            outcome.bytes_written += size;
            outcome.outputs.push(OutputTableMeta {
                number,
                file_size: size,
                // PANIC-OK: smallest is set whenever a builder opens.
                smallest: smallest.take().expect("smallest set with builder"),
                largest: InternalKey::from_encoded(largest_buf),
                entries,
            });
        }
        outcome.wall_time = start.elapsed();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::ikey::MAX_SEQUENCE_NUMBER;

    fn ik(user: &str, seq: u64, t: ValueType) -> Vec<u8> {
        InternalKey::new(user.as_bytes(), seq, t).encoded().to_vec()
    }

    #[test]
    fn drop_filter_keeps_newest_visible_version() {
        let mut f = DropFilter::new(MAX_SEQUENCE_NUMBER, false);
        // Two versions of "a": newest kept, older shadowed.
        assert!(!f.should_drop(&ik("a", 10, ValueType::Value)));
        assert!(f.should_drop(&ik("a", 5, ValueType::Value)));
        assert!(f.should_drop(&ik("a", 1, ValueType::Value)));
        // New user key resets.
        assert!(!f.should_drop(&ik("b", 3, ValueType::Value)));
    }

    #[test]
    fn drop_filter_respects_snapshots() {
        // Snapshot at sequence 7: versions above 7 do not shadow those
        // at/below 7 until one at/below 7 is seen.
        let mut f = DropFilter::new(7, false);
        assert!(!f.should_drop(&ik("a", 10, ValueType::Value))); // visible now
        assert!(!f.should_drop(&ik("a", 6, ValueType::Value))); // visible at snapshot 7
        assert!(f.should_drop(&ik("a", 2, ValueType::Value))); // shadowed by seq 6
    }

    #[test]
    fn tombstones_dropped_only_at_bottom() {
        let mut f = DropFilter::new(MAX_SEQUENCE_NUMBER, false);
        assert!(!f.should_drop(&ik("a", 5, ValueType::Deletion)));

        let mut f = DropFilter::new(MAX_SEQUENCE_NUMBER, true);
        assert!(f.should_drop(&ik("a", 5, ValueType::Deletion)));
        // The value under the tombstone is shadowed regardless.
        assert!(f.should_drop(&ik("a", 3, ValueType::Value)));
    }

    #[test]
    fn tombstone_above_snapshot_survives_even_at_bottom() {
        let mut f = DropFilter::new(4, true);
        assert!(!f.should_drop(&ik("a", 9, ValueType::Deletion)));
        // Version visible at the snapshot survives under it.
        assert!(!f.should_drop(&ik("a", 3, ValueType::Value)));
    }
}
