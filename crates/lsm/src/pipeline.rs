//! A staged, multi-threaded software compaction engine.
//!
//! The FPGA pipeline of the paper overlaps its stages in hardware; this
//! module is the software analogue for the CPU-fallback path: per-input
//! *read/decode* threads, one *merge* thread (loser-tree selection +
//! drop filtering), and the *encode* stage on the calling thread, all
//! connected by bounded channels so a slow stage backpressures the ones
//! before it instead of buffering unboundedly.
//!
//! Key-value pairs travel between stages in flat byte batches (length-
//! prefixed entries packed into one `Vec<u8>`), so channel traffic is a
//! few large sends per block's worth of data rather than two allocations
//! per pair.
//!
//! [`PipelinedCompactionEngine`] produces byte-identical output files to
//! [`CpuCompactionEngine`](crate::compaction::CpuCompactionEngine): the
//! same merge order (ties by input index, as `MergingIterator` prefers
//! earlier children), the same drop rules, the same table split points.

use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;
use std::time::Instant;

use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::ikey::InternalKey;
use sstable::iterator::InternalIterator;
use sstable::losertree::LoserTree;
use sstable::table::Table;
use sstable::table_builder::TableBuilder;

use crate::compaction::{
    ChainIterator, CompactionEngine, CompactionOutcome, CompactionRequest, DropFilter,
    OutputFileFactory, OutputTableMeta,
};
use crate::{Error, Result};

/// A batch of length-prefixed entries, or a stage error.
type BatchResult = std::result::Result<Vec<u8>, Error>;

/// The staged software engine. Construction is config-only; every
/// `compact` call spins up its own scoped threads and channels.
pub struct PipelinedCompactionEngine {
    /// Target flat-batch size between stages.
    batch_bytes: usize,
    /// Bounded channel depth (batches in flight per edge).
    queue_depth: usize,
}

impl Default for PipelinedCompactionEngine {
    fn default() -> Self {
        PipelinedCompactionEngine {
            batch_bytes: 256 << 10,
            queue_depth: 4,
        }
    }
}

impl PipelinedCompactionEngine {
    /// Creates an engine with explicit batch size and queue depth
    /// (defaults: 256 KiB batches, depth 4). Small values are useful in
    /// tests to force many batch boundaries.
    pub fn new(batch_bytes: usize, queue_depth: usize) -> Self {
        PipelinedCompactionEngine {
            batch_bytes: batch_bytes.max(1),
            queue_depth: queue_depth.max(1),
        }
    }
}

/// Appends one `[u32 klen][u32 vlen][key][value]` entry.
fn push_entry(batch: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    batch.extend_from_slice(&(key.len() as u32).to_le_bytes());
    batch.extend_from_slice(&(value.len() as u32).to_le_bytes());
    batch.extend_from_slice(key);
    batch.extend_from_slice(value);
}

/// Parses the entry at `pos`, returning (key range, value range, next
/// pos). The framing is internal to this module, so a short batch is a
/// logic bug, not input corruption.
fn parse_entry(batch: &[u8], pos: usize) -> ((usize, usize), (usize, usize), usize) {
    let klen = u32::from_le_bytes(batch[pos..pos + 4].try_into().unwrap()) as usize;
    let vlen = u32::from_le_bytes(batch[pos + 4..pos + 8].try_into().unwrap()) as usize;
    let kstart = pos + 8;
    let vstart = kstart + klen;
    ((kstart, vstart), (vstart, vstart + vlen), vstart + vlen)
}

/// Read stage: walks one input's table run and ships batches. A send
/// failure means downstream hung up (error or early exit) — just stop.
fn read_stage(tables: Vec<Arc<Table>>, batch_bytes: usize, tx: SyncSender<BatchResult>) {
    let mut it = ChainIterator::new(tables);
    it.seek_to_first();
    let mut batch = Vec::with_capacity(batch_bytes + 1024);
    while it.valid() {
        push_entry(&mut batch, it.key(), it.value());
        if batch.len() >= batch_bytes {
            let full = std::mem::replace(&mut batch, Vec::with_capacity(batch_bytes + 1024));
            if tx.send(Ok(full)).is_err() {
                return;
            }
        }
        it.next();
    }
    if let Err(e) = it.status() {
        let _ = tx.send(Err(e.into()));
        return;
    }
    if !batch.is_empty() {
        let _ = tx.send(Ok(batch));
    }
}

/// One merge-side input: the current batch plus the entry cursor on it.
struct MergeInput {
    rx: Receiver<BatchResult>,
    batch: Vec<u8>,
    pos: usize,
    key: (usize, usize),
    value: (usize, usize),
    valid: bool,
}

impl MergeInput {
    fn new(rx: Receiver<BatchResult>) -> Self {
        MergeInput {
            rx,
            batch: Vec::new(),
            pos: 0,
            key: (0, 0),
            value: (0, 0),
            valid: false,
        }
    }

    fn key(&self) -> &[u8] {
        &self.batch[self.key.0..self.key.1]
    }

    fn value(&self) -> &[u8] {
        &self.batch[self.value.0..self.value.1]
    }

    /// Moves to the next entry, blocking on the reader when the current
    /// batch is drained. `valid` goes false at end of input.
    fn advance(&mut self) -> Result<()> {
        loop {
            if self.pos < self.batch.len() {
                let (k, v, next) = parse_entry(&self.batch, self.pos);
                (self.key, self.value, self.pos) = (k, v, next);
                self.valid = true;
                return Ok(());
            }
            match self.rx.recv() {
                Ok(Ok(b)) => {
                    self.batch = b;
                    self.pos = 0;
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    self.valid = false;
                    return Ok(());
                }
            }
        }
    }
}

/// Merge stage: loser-tree k-way merge + drop filtering. Returns the
/// number of entries dropped. A send failure means the encoder hung up.
fn merge_stage(
    rxs: Vec<Receiver<BatchResult>>,
    mut filter: DropFilter,
    batch_bytes: usize,
    tx: SyncSender<BatchResult>,
) -> Result<u64> {
    let icmp = InternalKeyComparator::default();
    let mut inputs: Vec<MergeInput> = rxs.into_iter().map(MergeInput::new).collect();
    for input in &mut inputs {
        if let Err(e) = input.advance() {
            let _ = tx.send(Err(e.clone_as_corruption()));
            return Err(e);
        }
    }
    let beats = |inputs: &[MergeInput], a: usize, b: usize| match (inputs[a].valid, inputs[b].valid)
    {
        (true, false) => true,
        (false, _) => false,
        (true, true) => match icmp.compare(inputs[a].key(), inputs[b].key()) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        },
    };
    let mut tree = LoserTree::new(inputs.len());
    tree.rebuild(|a, b| beats(&inputs, a, b));

    let mut dropped = 0u64;
    let mut out = Vec::with_capacity(batch_bytes + 1024);
    while !inputs.is_empty() {
        let w = tree.winner();
        if !inputs[w].valid {
            break;
        }
        if filter.should_drop(inputs[w].key()) {
            dropped += 1;
        } else {
            push_entry(&mut out, inputs[w].key(), inputs[w].value());
            if out.len() >= batch_bytes {
                let full = std::mem::replace(&mut out, Vec::with_capacity(batch_bytes + 1024));
                if tx.send(Ok(full)).is_err() {
                    return Ok(dropped);
                }
            }
        }
        if let Err(e) = inputs[w].advance() {
            let _ = tx.send(Err(e.clone_as_corruption()));
            return Err(e);
        }
        tree.update(w, |a, b| beats(&inputs, a, b));
    }
    if !out.is_empty() {
        let _ = tx.send(Ok(out));
    }
    Ok(dropped)
}

impl Error {
    /// Channel messages need an owned error while the stage also returns
    /// one; I/O errors aren't `Clone`, so the copy is stringly.
    fn clone_as_corruption(&self) -> Error {
        Error::Corruption(self.to_string())
    }
}

impl CompactionEngine for PipelinedCompactionEngine {
    fn name(&self) -> &str {
        "cpu-pipelined"
    }

    fn max_inputs(&self) -> usize {
        usize::MAX
    }

    fn compact(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
    ) -> Result<CompactionOutcome> {
        let start = Instant::now();
        let mut outcome = CompactionOutcome {
            bytes_read: req.inputs.iter().map(|i| i.bytes()).sum(),
            ..Default::default()
        };
        if req.inputs.is_empty() {
            outcome.wall_time = start.elapsed();
            return Ok(outcome);
        }

        let (batch_bytes, depth) = (self.batch_bytes, self.queue_depth);
        let encode_err = std::thread::scope(|s| -> Result<()> {
            let mut rxs = Vec::with_capacity(req.inputs.len());
            for input in &req.inputs {
                let (tx, rx) = std::sync::mpsc::sync_channel(depth);
                let tables = input.tables.clone();
                s.spawn(move || read_stage(tables, batch_bytes, tx));
                rxs.push(rx);
            }
            let (mtx, mrx) = std::sync::mpsc::sync_channel(depth);
            let filter = DropFilter::new(req.smallest_snapshot, req.bottommost);
            let merger = s.spawn(move || merge_stage(rxs, filter, batch_bytes, mtx));

            // Encode stage, on the calling thread: identical bookkeeping
            // to CpuCompactionEngine's loop.
            let mut builder: Option<(u64, TableBuilder)> = None;
            let mut smallest: Option<InternalKey> = None;
            let mut largest_buf: Vec<u8> = Vec::new();
            let mut encode = || -> Result<()> {
                for batch in mrx.iter() {
                    let batch = batch?;
                    let mut pos = 0;
                    while pos < batch.len() {
                        let (k, v, next) = parse_entry(&batch, pos);
                        let (key, value) = (&batch[k.0..k.1], &batch[v.0..v.1]);
                        pos = next;
                        if builder.is_none() {
                            let (number, file) = out.new_output()?;
                            builder = Some((
                                number,
                                TableBuilder::new(req.builder_options.clone(), file),
                            ));
                            smallest = Some(InternalKey::from_encoded(key.to_vec()));
                        }
                        let (_, b) = builder.as_mut().expect("builder initialized above");
                        b.add(key, value)?;
                        outcome.entries_written += 1;
                        largest_buf.clear();
                        largest_buf.extend_from_slice(key);
                        if b.file_size() >= req.max_output_file_size {
                            let (number, mut b) =
                                builder.take().expect("builder present when splitting");
                            let entries = b.num_entries();
                            let size = b.finish()?;
                            outcome.bytes_written += size;
                            outcome.outputs.push(OutputTableMeta {
                                number,
                                file_size: size,
                                smallest: smallest.take().expect("smallest set with builder"),
                                largest: InternalKey::from_encoded(largest_buf.clone()),
                                entries,
                            });
                        }
                    }
                }
                Ok(())
            };
            let encode_result = encode();
            // Drain the channel on error so the merge thread can exit,
            // then surface the most upstream failure first.
            drop(mrx);
            let merge_result = merger.join().expect("merge stage panicked");
            match merge_result {
                Ok(dropped) => outcome.entries_dropped = dropped,
                Err(e) => return Err(e),
            }
            encode_result?;
            if let Some((number, mut b)) = builder.take() {
                let entries = b.num_entries();
                let size = b.finish()?;
                outcome.bytes_written += size;
                outcome.outputs.push(OutputTableMeta {
                    number,
                    file_size: size,
                    smallest: smallest.take().expect("smallest set with builder"),
                    largest: InternalKey::from_encoded(std::mem::take(&mut largest_buf)),
                    entries,
                });
            }
            Ok(())
        });
        encode_err?;
        outcome.wall_time = start.elapsed();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::{CompactionInput, CpuCompactionEngine};
    use sstable::env::{MemEnv, StorageEnv, WritableFile};
    use sstable::ikey::{InternalKey, ValueType};
    use sstable::table::{Table, TableReadOptions};
    use sstable::table_builder::TableBuilderOptions;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Factory {
        env: MemEnv,
        prefix: &'static str,
        counter: AtomicU64,
    }

    impl Factory {
        fn new(env: MemEnv, prefix: &'static str) -> Self {
            Factory {
                env,
                prefix,
                counter: AtomicU64::new(0),
            }
        }
    }

    impl OutputFileFactory for Factory {
        fn new_output(&self) -> Result<(u64, Box<dyn WritableFile>)> {
            let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
            let file = self
                .env
                .create_writable(Path::new(&format!("/{}-{n}", self.prefix)))?;
            Ok((n, file))
        }
    }

    fn opts() -> TableBuilderOptions {
        TableBuilderOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            block_size: 512,
            ..Default::default()
        }
    }

    fn build_input(env: &MemEnv, name: &str, stride: u32, offset: u32, n: u32) -> CompactionInput {
        let f = env.create_writable(Path::new(name)).unwrap();
        let mut b = TableBuilder::new(opts(), f);
        for e in 0..n {
            let i = e * stride + offset;
            // Interleave deletions to exercise the drop filter.
            let (t, v) = if i.is_multiple_of(7) {
                (ValueType::Deletion, String::new())
            } else {
                (ValueType::Value, format!("value-{i}"))
            };
            let k = InternalKey::new(format!("key{i:06}").as_bytes(), u64::from(i) + 1, t);
            b.add(k.encoded(), v.as_bytes()).unwrap();
        }
        let size = b.finish().unwrap();
        let ropts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        let file = env.open_random_access(Path::new(name)).unwrap();
        CompactionInput {
            tables: vec![Table::open(file, size, ropts).unwrap()],
        }
    }

    fn request(env: &MemEnv) -> CompactionRequest {
        CompactionRequest {
            level: 0,
            inputs: (0..4)
                .map(|i| build_input(env, &format!("/in{i}"), 4, i, 500))
                .collect(),
            smallest_snapshot: 1 << 40,
            bottommost: true,
            builder_options: opts(),
            max_output_file_size: 64 << 10,
        }
    }

    #[test]
    fn pipelined_matches_cpu_engine_byte_for_byte() {
        let env = MemEnv::new();
        let cpu_out = Factory::new(env.clone(), "cpu");
        let cpu = CpuCompactionEngine
            .compact(&request(&env), &cpu_out)
            .unwrap();

        // Tiny batches force many batch boundaries through the pipeline.
        for (label, engine) in [
            ("default", PipelinedCompactionEngine::default()),
            ("tiny", PipelinedCompactionEngine::new(97, 1)),
        ] {
            let pipe_out = Factory::new(env.clone(), "pipe");
            let pipe = engine.compact(&request(&env), &pipe_out).unwrap();
            assert_eq!(pipe.entries_written, cpu.entries_written, "{label}");
            assert_eq!(pipe.entries_dropped, cpu.entries_dropped, "{label}");
            assert_eq!(pipe.outputs.len(), cpu.outputs.len(), "{label}");
            for (i, (a, b)) in cpu.outputs.iter().zip(&pipe.outputs).enumerate() {
                assert_eq!(a.file_size, b.file_size, "{label} table {i}");
                assert_eq!(a.entries, b.entries, "{label} table {i}");
                let fa = env
                    .open_random_access(Path::new(&format!("/cpu-{}", a.number)))
                    .unwrap()
                    .read_all()
                    .unwrap();
                let fb = env
                    .open_random_access(Path::new(&format!("/pipe-{}", b.number)))
                    .unwrap()
                    .read_all()
                    .unwrap();
                assert_eq!(fa, fb, "{label} table {i} bytes");
            }
        }
    }

    #[test]
    fn empty_request_produces_nothing() {
        let env = MemEnv::new();
        let fac = Factory::new(env.clone(), "o");
        let req = CompactionRequest {
            level: 0,
            inputs: vec![],
            smallest_snapshot: 0,
            bottommost: false,
            builder_options: opts(),
            max_output_file_size: 1 << 20,
        };
        let outcome = PipelinedCompactionEngine::default()
            .compact(&req, &fac)
            .unwrap();
        assert!(outcome.outputs.is_empty());
        assert_eq!(outcome.entries_written, 0);
    }
}
