//! A staged, multi-threaded software compaction engine.
//!
//! The FPGA pipeline of the paper overlaps its stages in hardware; this
//! module is the software analogue for the CPU-fallback path: per-input
//! *read/decode* threads, one *merge* thread (loser-tree selection +
//! drop filtering), and the *encode* stage on the calling thread, all
//! connected by bounded channels so a slow stage backpressures the ones
//! before it instead of buffering unboundedly.
//!
//! Key-value pairs travel between stages in flat byte batches (length-
//! prefixed entries packed into one `Vec<u8>`), so channel traffic is a
//! few large sends per block's worth of data rather than two allocations
//! per pair.
//!
//! [`PipelinedCompactionEngine`] produces byte-identical output files to
//! [`CpuCompactionEngine`](crate::compaction::CpuCompactionEngine): the
//! same merge order (ties by input index, as `MergingIterator` prefers
//! earlier children), the same drop rules, the same table split points.

use std::sync::Arc;
use std::time::Instant;

use crate::sync_shim::{sync_channel, Receiver, SyncSender};

use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::ikey::InternalKey;
use sstable::iterator::InternalIterator;
use sstable::losertree::LoserTree;
use sstable::table::Table;
use sstable::table_builder::TableBuilder;

use crate::compaction::{
    ChainIterator, CompactionEngine, CompactionOutcome, CompactionRequest, DropFilter,
    OutputFileFactory, OutputTableMeta,
};
use crate::{Error, Result};

/// A batch of length-prefixed entries, or a stage error.
pub(crate) type BatchResult = std::result::Result<Vec<u8>, Error>;

/// Runs a stage body, converting a panic into an explicit `Err` batch on
/// the stage's output channel (plus an `Err` return) instead of letting
/// the unwound sender drop masquerade as clean end-of-input. Without
/// this, a panicking read stage would silently *truncate* the merge
/// (disconnect is how readers signal exhaustion), and a panicking merge
/// stage would re-panic the encode thread mid-scope. The channel may
/// itself be full or hung up; both are fine — a full channel means the
/// consumer is alive and will drain to our error, and a hangup means the
/// consumer is already gone and nobody needs it.
pub(crate) fn catch_stage_panic<T>(
    tx: &SyncSender<BatchResult>,
    stage: &str,
    body: impl FnOnce() -> Result<T>,
) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
        Ok(result) => result,
        Err(_) => {
            let err = Error::Corruption(format!("{stage} stage panicked"));
            let _ = tx.send(Err(err.clone_as_corruption()));
            Err(err)
        }
    }
}

/// The staged software engine. Construction is config-only; every
/// `compact` call spins up its own scoped threads and channels.
pub struct PipelinedCompactionEngine {
    /// Target flat-batch size between stages.
    batch_bytes: usize,
    /// Bounded channel depth (batches in flight per edge).
    queue_depth: usize,
}

impl Default for PipelinedCompactionEngine {
    fn default() -> Self {
        PipelinedCompactionEngine {
            batch_bytes: 256 << 10,
            queue_depth: 4,
        }
    }
}

impl PipelinedCompactionEngine {
    /// Creates an engine with explicit batch size and queue depth
    /// (defaults: 256 KiB batches, depth 4). Small values are useful in
    /// tests to force many batch boundaries.
    pub fn new(batch_bytes: usize, queue_depth: usize) -> Self {
        PipelinedCompactionEngine {
            batch_bytes: batch_bytes.max(1),
            queue_depth: queue_depth.max(1),
        }
    }
}

/// Appends one `[u32 klen][u32 vlen][key][value]` entry.
fn push_entry(batch: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    batch.extend_from_slice(&(key.len() as u32).to_le_bytes());
    batch.extend_from_slice(&(value.len() as u32).to_le_bytes());
    batch.extend_from_slice(key);
    batch.extend_from_slice(value);
}

/// Parses the entry at `pos`, returning (key range, value range, next
/// pos). The framing is internal to this module, so a short batch is a
/// logic bug, not input corruption.
fn parse_entry(batch: &[u8], pos: usize) -> ((usize, usize), (usize, usize), usize) {
    // PANIC-OK: framing is produced by push_entry in this module (see doc
    // above); a short slice is a logic bug worth aborting on.
    let klen = u32::from_le_bytes(batch[pos..pos + 4].try_into().unwrap()) as usize;
    // PANIC-OK: same framing invariant as the line above.
    let vlen = u32::from_le_bytes(batch[pos + 4..pos + 8].try_into().unwrap()) as usize;
    let kstart = pos + 8;
    let vstart = kstart + klen;
    ((kstart, vstart), (vstart, vstart + vlen), vstart + vlen)
}

/// Read stage: walks one input's table run and ships batches. A send
/// failure means downstream hung up (error or early exit) — just stop.
/// Panics inside the walk surface as an `Err` batch (see
/// [`catch_stage_panic`]), never as a silently shorter stream.
pub(crate) fn read_stage(tables: Vec<Arc<Table>>, batch_bytes: usize, tx: SyncSender<BatchResult>) {
    let _ = catch_stage_panic(&tx, "read", || read_stage_inner(tables, batch_bytes, &tx));
}

fn read_stage_inner(
    tables: Vec<Arc<Table>>,
    batch_bytes: usize,
    tx: &SyncSender<BatchResult>,
) -> Result<()> {
    let mut it = ChainIterator::new(tables);
    it.seek_to_first();
    let mut batch = Vec::with_capacity(batch_bytes + 1024);
    while it.valid() {
        push_entry(&mut batch, it.key(), it.value());
        if batch.len() >= batch_bytes {
            let full = std::mem::replace(&mut batch, Vec::with_capacity(batch_bytes + 1024));
            if tx.send(Ok(full)).is_err() {
                return Ok(());
            }
        }
        it.next();
    }
    if let Err(e) = it.status() {
        let _ = tx.send(Err(e.into()));
        return Ok(());
    }
    if !batch.is_empty() {
        let _ = tx.send(Ok(batch));
    }
    Ok(())
}

/// One merge-side input: the current batch plus the entry cursor on it.
pub(crate) struct MergeInput {
    rx: Receiver<BatchResult>,
    batch: Vec<u8>,
    pos: usize,
    key: (usize, usize),
    value: (usize, usize),
    valid: bool,
}

impl MergeInput {
    fn new(rx: Receiver<BatchResult>) -> Self {
        MergeInput {
            rx,
            batch: Vec::new(),
            pos: 0,
            key: (0, 0),
            value: (0, 0),
            valid: false,
        }
    }

    fn key(&self) -> &[u8] {
        &self.batch[self.key.0..self.key.1]
    }

    fn value(&self) -> &[u8] {
        &self.batch[self.value.0..self.value.1]
    }

    /// Moves to the next entry, blocking on the reader when the current
    /// batch is drained. `valid` goes false at end of input.
    fn advance(&mut self) -> Result<()> {
        loop {
            if self.pos < self.batch.len() {
                let (k, v, next) = parse_entry(&self.batch, self.pos);
                (self.key, self.value, self.pos) = (k, v, next);
                self.valid = true;
                return Ok(());
            }
            match self.rx.recv() {
                Ok(Ok(b)) => {
                    self.batch = b;
                    self.pos = 0;
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    self.valid = false;
                    return Ok(());
                }
            }
        }
    }
}

/// Merge stage: loser-tree k-way merge + drop filtering. Returns the
/// number of entries dropped. A send failure means the encoder hung up.
/// Panics inside the merge surface as an `Err` batch to the encoder (see
/// [`catch_stage_panic`]) rather than re-panicking the join.
pub(crate) fn merge_stage(
    rxs: Vec<Receiver<BatchResult>>,
    filter: DropFilter,
    batch_bytes: usize,
    tx: SyncSender<BatchResult>,
) -> Result<u64> {
    catch_stage_panic(&tx, "merge", || {
        merge_stage_inner(rxs, filter, batch_bytes, &tx)
    })
}

fn merge_stage_inner(
    rxs: Vec<Receiver<BatchResult>>,
    mut filter: DropFilter,
    batch_bytes: usize,
    tx: &SyncSender<BatchResult>,
) -> Result<u64> {
    let icmp = InternalKeyComparator::default();
    let mut inputs: Vec<MergeInput> = rxs.into_iter().map(MergeInput::new).collect();
    for input in &mut inputs {
        if let Err(e) = input.advance() {
            let _ = tx.send(Err(e.clone_as_corruption()));
            return Err(e);
        }
    }
    let beats = |inputs: &[MergeInput], a: usize, b: usize| match (inputs[a].valid, inputs[b].valid)
    {
        (true, false) => true,
        (false, _) => false,
        (true, true) => match icmp.compare(inputs[a].key(), inputs[b].key()) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        },
    };
    let mut tree = LoserTree::new(inputs.len());
    tree.rebuild(|a, b| beats(&inputs, a, b));

    let mut dropped = 0u64;
    let mut out = Vec::with_capacity(batch_bytes + 1024);
    while !inputs.is_empty() {
        let w = tree.winner();
        if !inputs[w].valid {
            break;
        }
        if filter.should_drop(inputs[w].key()) {
            dropped += 1;
        } else {
            push_entry(&mut out, inputs[w].key(), inputs[w].value());
            if out.len() >= batch_bytes {
                let full = std::mem::replace(&mut out, Vec::with_capacity(batch_bytes + 1024));
                if tx.send(Ok(full)).is_err() {
                    return Ok(dropped);
                }
            }
        }
        if let Err(e) = inputs[w].advance() {
            let _ = tx.send(Err(e.clone_as_corruption()));
            return Err(e);
        }
        tree.update(w, |a, b| beats(&inputs, a, b));
    }
    if !out.is_empty() {
        let _ = tx.send(Ok(out));
    }
    Ok(dropped)
}

impl Error {
    /// Channel messages need an owned error while the stage also returns
    /// one; I/O errors aren't `Clone`, so the copy is stringly.
    fn clone_as_corruption(&self) -> Error {
        Error::Corruption(self.to_string())
    }
}

impl CompactionEngine for PipelinedCompactionEngine {
    fn name(&self) -> &str {
        "cpu-pipelined"
    }

    fn max_inputs(&self) -> usize {
        usize::MAX
    }

    fn compact(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
    ) -> Result<CompactionOutcome> {
        let start = Instant::now();
        let mut outcome = CompactionOutcome {
            bytes_read: req.inputs.iter().map(|i| i.bytes()).sum(),
            ..Default::default()
        };
        if req.inputs.is_empty() {
            outcome.wall_time = start.elapsed();
            return Ok(outcome);
        }

        let (batch_bytes, depth) = (self.batch_bytes, self.queue_depth);
        let encode_err = std::thread::scope(|s| -> Result<()> {
            let mut rxs = Vec::with_capacity(req.inputs.len());
            for input in &req.inputs {
                let (tx, rx) = sync_channel(depth);
                let tables = input.tables.clone();
                s.spawn(move || read_stage(tables, batch_bytes, tx));
                rxs.push(rx);
            }
            let (mtx, mrx) = sync_channel(depth);
            let filter = DropFilter::new(req.smallest_snapshot, req.bottommost);
            let merger = s.spawn(move || merge_stage(rxs, filter, batch_bytes, mtx));

            // Encode stage, on the calling thread: identical bookkeeping
            // to CpuCompactionEngine's loop.
            let mut builder: Option<(u64, TableBuilder)> = None;
            let mut smallest: Option<InternalKey> = None;
            let mut largest_buf: Vec<u8> = Vec::new();
            let mut encode = || -> Result<()> {
                for batch in &mrx {
                    let batch = batch?;
                    let mut pos = 0;
                    while pos < batch.len() {
                        let (k, v, next) = parse_entry(&batch, pos);
                        let (key, value) = (&batch[k.0..k.1], &batch[v.0..v.1]);
                        pos = next;
                        if builder.is_none() {
                            let (number, file) = out.new_output()?;
                            builder = Some((
                                number,
                                TableBuilder::new(req.builder_options.clone(), file),
                            ));
                            smallest = Some(InternalKey::from_encoded(key.to_vec()));
                        }
                        // PANIC-OK: the branch above creates the
                        // builder when None.
                        let (_, b) = builder.as_mut().expect("builder initialized above");
                        b.add(key, value)?;
                        outcome.entries_written += 1;
                        largest_buf.clear();
                        largest_buf.extend_from_slice(key);
                        if b.file_size() >= req.max_output_file_size {
                            let (number, mut b) = builder
                                .take()
                                // PANIC-OK: only reachable inside the
                                // Some(builder) path.
                                .expect("builder present when splitting");
                            let entries = b.num_entries();
                            let size = b.finish()?;
                            // Durable before the manifest references it
                            // (same discipline as the CPU engine).
                            b.sync()?;
                            outcome.bytes_written += size;
                            outcome.outputs.push(OutputTableMeta {
                                number,
                                file_size: size,
                                // PANIC-OK: smallest is set whenever
                                // a builder opens.
                                smallest: smallest.take().expect("smallest set with builder"),
                                largest: InternalKey::from_encoded(largest_buf.clone()),
                                entries,
                            });
                        }
                    }
                }
                Ok(())
            };
            let encode_result = encode();
            // Drain the channel on error so the merge thread can exit,
            // then surface the most upstream failure first. The merge
            // thread converts its own panics into `Err` returns
            // (catch_stage_panic), so a failed join here can only mean a
            // panic in that conversion itself — still surfaced as an
            // error, never a deadlock or a cross-thread re-panic.
            drop(mrx);
            let merge_result = merger
                .join()
                .unwrap_or_else(|_| Err(Error::Corruption("merge stage panicked".into())));
            match merge_result {
                Ok(dropped) => outcome.entries_dropped = dropped,
                Err(e) => return Err(e),
            }
            encode_result?;
            if let Some((number, mut b)) = builder.take() {
                let entries = b.num_entries();
                let size = b.finish()?;
                b.sync()?;
                outcome.bytes_written += size;
                outcome.outputs.push(OutputTableMeta {
                    number,
                    file_size: size,
                    // PANIC-OK: smallest is set whenever a builder opens.
                    smallest: smallest.take().expect("smallest set with builder"),
                    largest: InternalKey::from_encoded(std::mem::take(&mut largest_buf)),
                    entries,
                });
            }
            Ok(())
        });
        encode_err?;
        outcome.wall_time = start.elapsed();
        Ok(outcome)
    }
}

/// Loom models of the pipeline's channel protocol, built and run only
/// under `RUSTFLAGS="--cfg loom"` (see `scripts/check.sh` and the
/// `static-analysis` CI job). They explore the interleavings `cargo test`
/// cannot pin down: shutdown while a bounded channel is full,
/// backpressure release, and panic teardown.
#[cfg(all(loom, test))]
mod loom_models {
    use super::*;
    use sstable::ikey::{InternalKey, ValueType};

    /// One length-prefixed batch holding `keys` as internal keys.
    fn batch_of(keys: &[(&[u8], u64)]) -> Vec<u8> {
        let mut b = Vec::new();
        for (user_key, seq) in keys {
            let ik = InternalKey::new(user_key, *seq, ValueType::Value);
            push_entry(&mut b, ik.encoded(), user_key);
        }
        b
    }

    /// A sender blocked on a full bounded channel must wake and exit when
    /// the receiver hangs up mid-stream — the pipeline's early-shutdown
    /// path (encoder error). A deadlock here hangs the model and fails
    /// the suite's timeout.
    #[test]
    fn shutdown_while_channel_full_releases_sender() {
        loom::model(|| {
            let (tx, rx) = sync_channel::<BatchResult>(1);
            let producer = loom::thread::spawn(move || {
                let mut sent = 0u32;
                // Keep producing until downstream hangs up; with depth 1
                // the channel is full almost immediately.
                while tx.send(Ok(batch_of(&[(b"k", 1)]))).is_ok() {
                    sent += 1;
                    if sent > 64 {
                        panic!("receiver hangup never observed");
                    }
                }
                sent
            });
            let first = rx.recv().expect("producer sent at least one batch");
            assert!(first.is_ok());
            drop(rx); // shutdown with the channel possibly full
            let sent = producer.join().expect("producer must exit, not deadlock");
            assert!(sent >= 1);
        });
    }

    /// Backpressure release: a depth-1 channel forces the producer to
    /// block on every batch; the consumer must still observe every batch
    /// in order, and the producer must terminate cleanly at end-of-input.
    #[test]
    fn backpressure_release_preserves_order_and_completeness() {
        loom::model(|| {
            let (tx, rx) = sync_channel::<BatchResult>(1);
            let producer = loom::thread::spawn(move || {
                for i in 0u8..6 {
                    tx.send(Ok(vec![i])).expect("consumer drains all batches");
                }
            });
            let got: Vec<u8> = rx.iter().map(|b| b.expect("no errors")[0]).collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
            producer.join().expect("producer exits after last send");
        });
    }

    /// A read stage that panics mid-stream must surface as a merge
    /// *error*, not as a silently truncated (but "successful") merge —
    /// the channel-teardown bug class the guards exist for.
    #[test]
    fn reader_panic_is_an_error_not_truncation() {
        // The injected panics are expected; keep the model output clean.
        std::panic::set_hook(Box::new(|_| {}));
        loom::model(|| {
            let (tx, rx) = sync_channel(1);
            let feeder = loom::thread::spawn(move || {
                let _ = catch_stage_panic(&tx, "read", || -> Result<()> {
                    let _ = tx.send(Ok(batch_of(&[(b"a", 1)])));
                    panic!("injected reader fault");
                });
            });
            let (mtx, mrx) = sync_channel(1);
            let filter = DropFilter::new(u64::MAX, false);
            let merger = loom::thread::spawn(move || merge_stage(vec![rx], filter, 64, mtx));
            // Drain the merge output; the last batch must be the error.
            let mut saw_err = false;
            for b in mrx.iter() {
                saw_err = b.is_err();
            }
            assert!(saw_err, "merge output ended without surfacing the panic");
            let merged = merger.join().expect("merge thread itself must not panic");
            assert!(merged.is_err(), "panicking reader produced a clean merge");
            feeder
                .join()
                .expect("guarded feeder must not propagate panic");
        });
        let _ = std::panic::take_hook();
    }

    /// Three concurrent readers feed the loser-tree merge through
    /// depth-1 channels; across all interleavings the merge must emit
    /// every key exactly once, in global internal-key order.
    #[test]
    fn concurrent_feed_merges_sorted_and_complete() {
        loom::model(|| {
            let mut rxs = Vec::new();
            let mut feeders = Vec::new();
            for input in 0u64..3 {
                let (tx, rx) = sync_channel(1);
                rxs.push(rx);
                feeders.push(loom::thread::spawn(move || {
                    // Keys interleave across inputs: input 0 owns 0,3,6…
                    for j in (input..30).step_by(3) {
                        let key = format!("key{j:04}");
                        let b = batch_of(&[(key.as_bytes(), j + 1)]);
                        if tx.send(Ok(b)).is_err() {
                            return;
                        }
                    }
                }));
            }
            let (mtx, mrx) = sync_channel(1);
            let filter = DropFilter::new(u64::MAX, false);
            let merger = loom::thread::spawn(move || merge_stage(rxs, filter, 64, mtx));
            let mut keys = Vec::new();
            for b in mrx.iter() {
                let b = b.expect("clean feed");
                let mut pos = 0;
                while pos < b.len() {
                    let (k, _, next) = parse_entry(&b, pos);
                    let ik = InternalKey::from_encoded(b[k.0..k.1].to_vec());
                    keys.push(ik.user_key().to_vec());
                    pos = next;
                }
            }
            let expected: Vec<Vec<u8>> = (0u64..30)
                .map(|j| format!("key{j:04}").into_bytes())
                .collect();
            assert_eq!(keys, expected);
            assert_eq!(merger.join().unwrap().expect("merge ok"), 0);
            for f in feeders {
                f.join().expect("feeder exits");
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compaction::{CompactionInput, CpuCompactionEngine};
    use sstable::env::{MemEnv, StorageEnv, WritableFile};
    use sstable::ikey::{InternalKey, ValueType};
    use sstable::table::{Table, TableReadOptions};
    use sstable::table_builder::TableBuilderOptions;
    use std::path::Path;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Factory {
        env: MemEnv,
        prefix: &'static str,
        counter: AtomicU64,
    }

    impl Factory {
        fn new(env: MemEnv, prefix: &'static str) -> Self {
            Factory {
                env,
                prefix,
                counter: AtomicU64::new(0),
            }
        }
    }

    impl OutputFileFactory for Factory {
        fn new_output(&self) -> Result<(u64, Box<dyn WritableFile>)> {
            let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
            let file = self
                .env
                .create_writable(Path::new(&format!("/{}-{n}", self.prefix)))?;
            Ok((n, file))
        }
    }

    fn opts() -> TableBuilderOptions {
        TableBuilderOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            block_size: 512,
            ..Default::default()
        }
    }

    fn build_input(env: &MemEnv, name: &str, stride: u32, offset: u32, n: u32) -> CompactionInput {
        let f = env.create_writable(Path::new(name)).unwrap();
        let mut b = TableBuilder::new(opts(), f);
        for e in 0..n {
            let i = e * stride + offset;
            // Interleave deletions to exercise the drop filter.
            let (t, v) = if i.is_multiple_of(7) {
                (ValueType::Deletion, String::new())
            } else {
                (ValueType::Value, format!("value-{i}"))
            };
            let k = InternalKey::new(format!("key{i:06}").as_bytes(), u64::from(i) + 1, t);
            b.add(k.encoded(), v.as_bytes()).unwrap();
        }
        let size = b.finish().unwrap();
        let ropts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        let file = env.open_random_access(Path::new(name)).unwrap();
        CompactionInput {
            tables: vec![Table::open(file, size, ropts).unwrap()],
        }
    }

    fn request(env: &MemEnv) -> CompactionRequest {
        CompactionRequest {
            level: 0,
            inputs: (0..4)
                .map(|i| build_input(env, &format!("/in{i}"), 4, i, 500))
                .collect(),
            smallest_snapshot: 1 << 40,
            bottommost: true,
            builder_options: opts(),
            max_output_file_size: 64 << 10,
        }
    }

    #[test]
    fn pipelined_matches_cpu_engine_byte_for_byte() {
        let env = MemEnv::new();
        let cpu_out = Factory::new(env.clone(), "cpu");
        let cpu = CpuCompactionEngine
            .compact(&request(&env), &cpu_out)
            .unwrap();

        // Tiny batches force many batch boundaries through the pipeline.
        for (label, engine) in [
            ("default", PipelinedCompactionEngine::default()),
            ("tiny", PipelinedCompactionEngine::new(97, 1)),
        ] {
            let pipe_out = Factory::new(env.clone(), "pipe");
            let pipe = engine.compact(&request(&env), &pipe_out).unwrap();
            assert_eq!(pipe.entries_written, cpu.entries_written, "{label}");
            assert_eq!(pipe.entries_dropped, cpu.entries_dropped, "{label}");
            assert_eq!(pipe.outputs.len(), cpu.outputs.len(), "{label}");
            for (i, (a, b)) in cpu.outputs.iter().zip(&pipe.outputs).enumerate() {
                assert_eq!(a.file_size, b.file_size, "{label} table {i}");
                assert_eq!(a.entries, b.entries, "{label} table {i}");
                let fa = env
                    .open_random_access(Path::new(&format!("/cpu-{}", a.number)))
                    .unwrap()
                    .read_all()
                    .unwrap();
                let fb = env
                    .open_random_access(Path::new(&format!("/pipe-{}", b.number)))
                    .unwrap()
                    .read_all()
                    .unwrap();
                assert_eq!(fa, fb, "{label} table {i} bytes");
            }
        }
    }

    #[test]
    fn catch_stage_panic_converts_panic_into_channel_error() {
        let (tx, rx) = sync_channel(1);
        let result = catch_stage_panic(&tx, "test", || -> Result<()> {
            panic!("injected stage fault");
        });
        assert!(result.is_err(), "panic must become an Err return");
        match rx.recv() {
            Ok(Err(Error::Corruption(msg))) => assert!(msg.contains("test stage panicked")),
            other => panic!("expected an Err batch on the channel, got {other:?}"),
        }
        // Non-panicking bodies pass through untouched.
        let ok = catch_stage_panic(&tx, "test", || Ok(7u64));
        assert_eq!(ok.unwrap(), 7);
    }

    /// A reader that dies mid-stream must fail the merge; before the
    /// stage guards, the dropped sender read as clean end-of-input and
    /// the merge succeeded with silently truncated output.
    #[test]
    fn reader_panic_fails_merge_instead_of_truncating() {
        let (tx, rx) = sync_channel(1);
        let feeder = std::thread::spawn(move || {
            let _ = catch_stage_panic(&tx, "read", || -> Result<()> {
                let mut b = Vec::new();
                let ik = InternalKey::new(b"a", 1, sstable::ikey::ValueType::Value);
                push_entry(&mut b, ik.encoded(), b"va");
                let _ = tx.send(Ok(b));
                panic!("injected reader fault");
            });
        });
        let (mtx, mrx) = sync_channel(4);
        let merged = merge_stage(vec![rx], DropFilter::new(u64::MAX, false), 64, mtx);
        assert!(merged.is_err(), "panicking reader must fail the merge");
        let last = mrx.iter().last().expect("merge forwarded something");
        assert!(last.is_err(), "encoder must see the error batch");
        feeder
            .join()
            .expect("guarded feeder must not propagate panic");
    }

    #[test]
    fn empty_request_produces_nothing() {
        let env = MemEnv::new();
        let fac = Factory::new(env.clone(), "o");
        let req = CompactionRequest {
            level: 0,
            inputs: vec![],
            smallest_snapshot: 0,
            bottommost: false,
            builder_options: opts(),
            max_output_file_size: 1 << 20,
        };
        let outcome = PipelinedCompactionEngine::default()
            .compact(&req, &fac)
            .unwrap();
        assert!(outcome.outputs.is_empty());
        assert_eq!(outcome.entries_written, 0);
    }
}
