//! Building blocks of the parallel write path: atomic sequence-range
//! reservation and the ordered *apply ledger* that tracks which reserved
//! ranges have finished inserting into the concurrent memtable.
//!
//! The protocol (see DESIGN.md, "Parallel write path"):
//!
//! 1. A group-commit leader, holding the WAL epoch lock, **reserves** a
//!    contiguous sequence range with [`SeqReserver::reserve`] (an atomic
//!    `fetch_add`, so ranges are disjoint and contiguous by
//!    construction), appends the group's batches to the WAL, and
//!    **registers** the group in the [`ApplyLedger`]. Because
//!    reservation, append, and registration all happen under the epoch
//!    lock, WAL order == sequence order == ledger order.
//! 2. Each group member then inserts its own batch into the sharded
//!    memtable *in parallel* (no lock serializes the inserts) and marks
//!    itself done with [`ApplyLedger::finish_members`].
//! 3. The ledger advances the **visible sequence** — the snapshot
//!    readers use — only when every group at or below a sequence has
//!    fully applied, so a reader never observes sequence `s` while some
//!    write with sequence `< s` is still mid-insert.
//! 4. Memtable rotation records the last reserved sequence as the epoch
//!    **boundary**; the flush waits [`ApplyLedger::wait_visible`] on the
//!    boundary so every in-flight writer that holds the old memtable has
//!    landed before the table build starts.
//!
//! Built on [`crate::sync_shim`] so `RUSTFLAGS="--cfg loom"` swaps every
//! primitive for the instrumented loom versions; the model suites below
//! explore interleavings of exactly this code.

use std::collections::VecDeque;
use std::sync::PoisonError;

use crate::sync_shim::atomic::{AtomicU64, Ordering};
use crate::sync_shim::{lock, Condvar, Mutex};

/// Atomic allocator of contiguous sequence-number ranges.
///
/// Writers (group leaders) reserve whole ranges with one `fetch_add`;
/// no two reservations overlap, and the union of all reservations is
/// gapless. A reserved sequence is *not* yet readable — visibility is
/// the [`ApplyLedger`]'s job.
pub struct SeqReserver {
    /// The next unreserved sequence number.
    next: AtomicU64,
}

impl SeqReserver {
    /// Starts reserving after `last_sequence` (the recovery point).
    pub fn new(last_sequence: u64) -> Self {
        SeqReserver {
            next: AtomicU64::new(last_sequence + 1),
        }
    }

    /// Reserves `count` consecutive sequence numbers, returning the
    /// first. `count == 0` is legal (an empty batch): the returned value
    /// is the start of an empty range and nothing is consumed.
    pub fn reserve(&self, count: u64) -> u64 {
        self.next.fetch_add(count, Ordering::AcqRel)
    }

    /// The highest sequence number reserved so far. Only meaningful as a
    /// rotation boundary when the caller holds the epoch lock (no
    /// concurrent reservations), which is how the DB uses it.
    pub fn last_reserved(&self) -> u64 {
        self.next.load(Ordering::Acquire) - 1
    }

    /// Marks everything at or below `seq` as reserved, without
    /// allocating: a replica applying a leader's replication stream uses
    /// the sequences stamped by the leader instead of reserving its own,
    /// but rotation boundaries and local writes still need
    /// [`SeqReserver::last_reserved`] to cover them. `fetch_max` keeps
    /// this monotone against concurrent local reservations.
    pub fn advance_to(&self, seq: u64) {
        self.next.fetch_max(seq + 1, Ordering::AcqRel);
    }
}

/// One registered, not-yet-fully-applied commit group.
struct GroupState {
    id: u64,
    /// Last sequence number in the group's reserved range.
    end_seq: u64,
    /// Members that have not yet finished their memtable insert.
    remaining: usize,
}

struct LedgerInner {
    /// Groups in registration order == sequence order (registration
    /// happens under the epoch lock).
    groups: VecDeque<GroupState>,
    next_id: u64,
}

/// Tracks apply completion of commit groups in sequence order and
/// publishes the *visible sequence*: the largest `s` such that every
/// write with sequence <= `s` has been inserted into the memtable.
///
/// Groups may finish applying out of order (they insert in parallel);
/// the ledger only advances visibility over a fully-applied prefix.
pub struct ApplyLedger {
    /// Lock-free mirror of the visible sequence for the read path.
    visible: AtomicU64,
    inner: Mutex<LedgerInner>,
    /// Signaled whenever `visible` advances.
    advanced: Condvar,
}

impl ApplyLedger {
    /// Starts with everything at or below `last_sequence` visible.
    pub fn new(last_sequence: u64) -> Self {
        ApplyLedger {
            visible: AtomicU64::new(last_sequence),
            inner: Mutex::new(LedgerInner {
                groups: VecDeque::new(),
                next_id: 1,
            }),
            advanced: Condvar::new(),
        }
    }

    /// The current visible sequence (the default read snapshot).
    pub fn visible(&self) -> u64 {
        self.visible.load(Ordering::Acquire)
    }

    /// Registers a commit group whose reserved range ends at `end_seq`
    /// and that `members` writers will apply. Must be called in sequence
    /// order (the DB calls it under the epoch lock). Returns the group
    /// id used by [`Self::finish_members`].
    // LOCK-HELD: db.epoch -- registration order is the epoch lock's order.
    pub fn register(&self, end_seq: u64, members: usize) -> u64 {
        let mut inner = lock(&self.inner); // LOCK-ORDER: write.ledger 50
        debug_assert!(inner.groups.back().is_none_or(|g| g.end_seq <= end_seq));
        let id = inner.next_id;
        inner.next_id += 1;
        inner.groups.push_back(GroupState {
            id,
            end_seq,
            remaining: members.max(1),
        });
        id
    }

    /// Marks `count` members of group `id` as applied. When the group —
    /// and every group registered before it — has fully applied, the
    /// visible sequence advances over the whole completed prefix and
    /// waiters are woken.
    pub fn finish_members(&self, id: u64, count: usize) {
        let mut inner = lock(&self.inner); // LOCK-ORDER: write.ledger 50
        if let Some(g) = inner.groups.iter_mut().find(|g| g.id == id) {
            g.remaining = g.remaining.saturating_sub(count);
        }
        let mut new_visible = None;
        while inner.groups.front().is_some_and(|g| g.remaining == 0) {
            // PANIC-OK: the loop condition just witnessed a front element.
            let g = inner.groups.pop_front().expect("front exists");
            new_visible = Some(g.end_seq);
        }
        if let Some(v) = new_visible {
            // Publish under the lock so `wait_visible`'s re-check after
            // a wakeup always observes the latest value.
            self.visible.fetch_max(v, Ordering::AcqRel);
            self.advanced.notify_all();
        }
    }

    /// Blocks until the visible sequence reaches `seq`. Used by writers
    /// for read-your-writes acknowledgement ordering and by the flush
    /// path as the rotation-boundary barrier.
    pub fn wait_visible(&self, seq: u64) {
        if self.visible() >= seq {
            return;
        }
        let mut inner = lock(&self.inner); // LOCK-ORDER: write.ledger 50
        while self.visible() < seq {
            // A group may still be unregistered (leader between reserve
            // and register is impossible — both happen under the epoch
            // lock — but a member can finish before we start waiting):
            // re-check after every wakeup.
            inner = self
                .advanced
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn reservations_are_contiguous_and_disjoint() {
        let r = SeqReserver::new(10);
        assert_eq!(r.reserve(3), 11);
        assert_eq!(r.reserve(1), 14);
        assert_eq!(r.reserve(0), 15); // empty batch consumes nothing
        assert_eq!(r.reserve(2), 15);
        assert_eq!(r.last_reserved(), 16);
    }

    #[test]
    fn visibility_advances_only_over_completed_prefix() {
        let l = ApplyLedger::new(0);
        let g1 = l.register(5, 2);
        let g2 = l.register(8, 1);
        // g2 finishes first: nothing visible yet.
        l.finish_members(g2, 1);
        assert_eq!(l.visible(), 0);
        l.finish_members(g1, 1);
        assert_eq!(l.visible(), 0);
        // Last member of g1 completes the prefix; both groups publish.
        l.finish_members(g1, 1);
        assert_eq!(l.visible(), 8);
        l.wait_visible(8); // returns immediately
    }

    #[test]
    fn concurrent_reservations_cover_range_exactly() {
        let r = Arc::new(SeqReserver::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let mut starts = Vec::new();
                for _ in 0..50 {
                    starts.push(r.reserve(3));
                }
                starts
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // 200 reservations of 3: starts are exactly 1, 4, 7, ...
        assert_eq!(all.len(), 200);
        for (i, s) in all.iter().enumerate() {
            assert_eq!(*s, 1 + 3 * i as u64);
        }
        assert_eq!(r.last_reserved(), 600);
    }

    #[test]
    fn wait_visible_blocks_until_group_applies() {
        let l = Arc::new(ApplyLedger::new(0));
        let g = l.register(4, 1);
        let waiter = {
            let l = Arc::clone(&l);
            std::thread::spawn(move || {
                l.wait_visible(4);
                l.visible()
            })
        };
        std::thread::yield_now();
        l.finish_members(g, 1);
        assert_eq!(waiter.join().unwrap(), 4);
    }
}

/// Loom models of the write-path protocol, run under
/// `RUSTFLAGS="--cfg loom"` (see `scripts/check.sh` and the loom CI
/// job). They model the two invariants `db.rs` relies on:
///
/// * **Sequence reservation**: concurrent reservations are disjoint and
///   contiguous, and a reader never sees a visible sequence for which
///   some lower sequence is still unapplied.
/// * **Rotation handoff**: a writer that captured the pre-rotation
///   memtable lands in it before the flush barrier releases, so the
///   frozen memtable contains *exactly* the sequences at or below the
///   rotation boundary.
#[cfg(all(loom, test))]
mod loom_models {
    use super::*;
    use std::sync::Arc;

    /// Two writers reserve and apply single-sequence groups while a
    /// reader polls: the visible sequence must only ever move forward,
    /// and at every observation point all sequences <= visible must have
    /// been applied (modeled by registering/finishing in epoch order
    /// under a mutex, applying outside it).
    #[test]
    fn visible_sequence_never_exposes_unapplied_writes() {
        loom::model(|| {
            let reserver = Arc::new(SeqReserver::new(0));
            let ledger = Arc::new(ApplyLedger::new(0));
            let epoch = Arc::new(Mutex::new(()));
            let applied = Arc::new(Mutex::new(Vec::<u64>::new()));

            let mut handles = Vec::new();
            for _ in 0..2 {
                let (reserver, ledger, epoch, applied) = (
                    Arc::clone(&reserver),
                    Arc::clone(&ledger),
                    Arc::clone(&epoch),
                    Arc::clone(&applied),
                );
                handles.push(loom::thread::spawn(move || {
                    let (seq, gid) = {
                        let _ep = lock(&epoch);
                        let seq = reserver.reserve(1);
                        let gid = ledger.register(seq, 1);
                        (seq, gid)
                    };
                    // Parallel apply happens outside the epoch lock.
                    lock(&applied).push(seq);
                    ledger.finish_members(gid, 1);
                    ledger.wait_visible(seq);
                }));
            }
            let reader = {
                let (ledger, applied) = (Arc::clone(&ledger), Arc::clone(&applied));
                loom::thread::spawn(move || {
                    let mut last = 0;
                    for _ in 0..4 {
                        let v = ledger.visible();
                        assert!(v >= last, "visible moved backwards");
                        let seen = lock(&applied).clone();
                        for s in 1..=v {
                            assert!(seen.contains(&s), "seq {s} visible but unapplied");
                        }
                        last = v;
                    }
                })
            };
            for h in handles {
                h.join().unwrap();
            }
            reader.join().unwrap();
            assert_eq!(ledger.visible(), 2);
        });
    }

    /// Rotation handoff: a rotator swaps the active "memtable" (a Vec
    /// behind the epoch lock) while writers commit through it. The
    /// boundary recorded at swap time must exactly partition the
    /// sequences: after the flush barrier, the retired memtable holds
    /// every sequence <= boundary and none above.
    #[test]
    fn rotation_boundary_partitions_sequences() {
        struct Epoch {
            mem: Arc<Mutex<Vec<u64>>>,
        }
        loom::model(|| {
            let reserver = Arc::new(SeqReserver::new(0));
            let ledger = Arc::new(ApplyLedger::new(0));
            let epoch = Arc::new(Mutex::new(Epoch {
                mem: Arc::new(Mutex::new(Vec::new())),
            }));

            let mut writers = Vec::new();
            for _ in 0..2 {
                let (reserver, ledger, epoch) = (
                    Arc::clone(&reserver),
                    Arc::clone(&ledger),
                    Arc::clone(&epoch),
                );
                writers.push(loom::thread::spawn(move || {
                    for _ in 0..2 {
                        // Leader protocol: reserve + capture mem under
                        // the epoch lock, apply outside it.
                        let (seq, gid, mem) = {
                            let ep = lock(&epoch);
                            let seq = reserver.reserve(1);
                            let gid = ledger.register(seq, 1);
                            (seq, gid, Arc::clone(&ep.mem))
                        };
                        lock(&mem).push(seq);
                        ledger.finish_members(gid, 1);
                    }
                }));
            }
            let rotator = {
                let (reserver, ledger, epoch) = (
                    Arc::clone(&reserver),
                    Arc::clone(&ledger),
                    Arc::clone(&epoch),
                );
                loom::thread::spawn(move || {
                    let (old, boundary) = {
                        let mut ep = lock(&epoch);
                        let boundary = reserver.last_reserved();
                        let old = std::mem::replace(&mut ep.mem, Arc::new(Mutex::new(Vec::new())));
                        (old, boundary)
                    };
                    // Flush barrier: wait for in-flight writers that
                    // captured the old memtable.
                    ledger.wait_visible(boundary);
                    let frozen = lock(&old).clone();
                    let mut sorted = frozen.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), frozen.len(), "duplicate applies");
                    // Exactly 1..=boundary, nothing above.
                    assert_eq!(sorted.len() as u64, boundary);
                    assert!(sorted.iter().all(|s| *s <= boundary));
                })
            };
            for w in writers {
                w.join().unwrap();
            }
            rotator.join().unwrap();
            // Everything eventually applies and becomes visible.
            ledger.wait_visible(4);
        });
    }
}
