//! WiscKey-style value log: key-value separation for large values.
//!
//! With [`crate::Options::value_log_threshold_bytes`] set, values at or
//! above the threshold are appended to a checksummed, append-only value
//! log (`NNNNNN.vlog` segments in the database directory) and the LSM
//! tree stores a fixed-size pointer instead. Compaction then moves
//! ~21-byte pointer entries rather than KiB values, which is exactly the
//! large-value regime where merge cost is value-length-bound (the
//! paper's optimization 2, applied at the storage layer).
//!
//! # Stored-value encoding
//!
//! When separation is enabled every value stored in the memtable, WAL
//! and SSTables carries a one-byte tag:
//!
//! * `0x00 | raw bytes` — inline value (below the threshold);
//! * `0x01 | segment u64 | offset u64 | len u32` — pointer to a value
//!   log record (21 bytes total, fixed size).
//!
//! The tag makes the two cases self-describing on the read path. A
//! database written with separation enabled must always be opened with
//! it enabled (and vice versa); the encoding of *stored* values differs.
//!
//! # Segment record format
//!
//! `crc32c(4, masked) | klen u32 | vlen u32 | key | value`
//!
//! The CRC covers `klen | vlen | key | value` and uses the same masked
//! crc32c as the WAL. Records are never updated in place; a segment is
//! sealed when the writer rotates past
//! [`crate::Options::value_log_segment_bytes`] and becomes a candidate
//! for garbage collection.
//!
//! # Durability ordering
//!
//! A pointer must never become durable before the bytes it points at:
//!
//! 1. value appended to the vlog (writer lock);
//! 2. on a sync commit, the vlog is synced **before** the WAL
//!    ([`crate::Db`]'s group leader does this under the epoch lock);
//! 3. at rotation the retiring segment is synced before it is sealed;
//! 4. GC syncs the rewritten copies (vlog, then WAL) before removing a
//!    dead segment.
//!
//! A power cut can therefore leave a WAL record whose pointer lands past
//! the durable end of a segment only if that write was never
//! acknowledged with `sync`; recovery drops such batches. A pointer into
//! a *missing* segment or at bytes that fail the CRC is real corruption
//! and is routed to [`crate::repair_db`].

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use sstable::coding::decode_fixed32;
use sstable::crc32c;
use sstable::env::{RandomAccessFile, StorageEnv, WritableFile};

use crate::filename::{temp_file_name, vlog_file_name};
use crate::sync_shim::{self, lock as shim_lock};
use crate::write_batch::{BatchOp, WriteBatch};
use crate::{Error, Result};

/// Stored-value tag: inline bytes follow.
pub const TAG_INLINE: u8 = 0x00;
/// Stored-value tag: a [`VlogPointer`] follows.
pub const TAG_POINTER: u8 = 0x01;

/// Encoded pointer size including the tag byte.
pub const POINTER_LEN: usize = 1 + 8 + 8 + 4;

/// Per-record header: crc32c(4) + klen(4) + vlen(4).
const RECORD_HEADER: usize = 12;

/// A fixed-size reference to one value-log record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlogPointer {
    /// Segment file number (`{segment:06}.vlog`).
    pub segment: u64,
    /// Byte offset of the record header inside the segment.
    pub offset: u64,
    /// Length of the value payload.
    pub len: u32,
}

impl VlogPointer {
    /// Encodes this pointer as a tagged stored value.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(POINTER_LEN);
        out.push(TAG_POINTER);
        out.extend_from_slice(&self.segment.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out
    }
}

/// A decoded stored value: either the bytes themselves or a pointer.
#[derive(Debug, PartialEq, Eq)]
pub enum Stored<'a> {
    /// Value bytes stored inline (tag stripped).
    Inline(&'a [u8]),
    /// Value lives in the log at this pointer.
    Pointer(VlogPointer),
}

/// Wraps raw value bytes in the tagged inline encoding.
pub fn encode_inline(value: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + value.len());
    out.push(TAG_INLINE);
    out.extend_from_slice(value);
    out
}

/// Decodes a tagged stored value.
pub fn decode_stored(raw: &[u8]) -> Result<Stored<'_>> {
    match raw.first() {
        Some(&TAG_INLINE) => Ok(Stored::Inline(&raw[1..])),
        Some(&TAG_POINTER) => {
            if raw.len() != POINTER_LEN {
                return Err(Error::Corruption(format!(
                    "vlog pointer is {} bytes, want {POINTER_LEN}",
                    raw.len()
                )));
            }
            let mut seg = [0u8; 8];
            seg.copy_from_slice(&raw[1..9]);
            let mut off = [0u8; 8];
            off.copy_from_slice(&raw[9..17]);
            let mut len = [0u8; 4];
            len.copy_from_slice(&raw[17..21]);
            Ok(Stored::Pointer(VlogPointer {
                segment: u64::from_le_bytes(seg),
                offset: u64::from_le_bytes(off),
                len: u32::from_le_bytes(len),
            }))
        }
        _ => Err(Error::Corruption("unknown stored-value tag".into())),
    }
}

/// Outcome of validating a pointer against the on-disk segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointerCheck {
    /// Record present and checksummed.
    Ok,
    /// Record lies (partly) past the durable end of its segment: the
    /// expected shape of an unacknowledged write after a power cut.
    TornTail,
    /// The segment file does not exist.
    MissingSegment,
    /// Bytes are present but fail the CRC or frame structure.
    Corrupt,
}

/// One decoded value-log record.
#[derive(Debug, Clone)]
pub struct VlogRecord {
    /// User key the record was written under (used by GC liveness).
    pub key: Vec<u8>,
    /// Value payload.
    pub value: Vec<u8>,
    /// Pointer to this record.
    pub ptr: VlogPointer,
}

impl VlogRecord {
    /// On-disk footprint of this record (header + key + value).
    pub fn encoded_len(&self) -> u64 {
        (RECORD_HEADER + self.key.len() + self.value.len()) as u64
    }
}

/// Encodes one record into `out`, returning the value's pointer given
/// the record's start `offset` in `segment`.
fn encode_record(out: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    let mut body = Vec::with_capacity(8 + key.len() + value.len());
    body.extend_from_slice(&(key.len() as u32).to_le_bytes());
    body.extend_from_slice(&(value.len() as u32).to_le_bytes());
    body.extend_from_slice(key);
    body.extend_from_slice(value);
    let crc = crc32c::mask(crc32c::value(&body));
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&body);
}

/// Parses the record at `data[offset..]`. Returns `Ok(None)` when the
/// bytes end before the record does (torn tail), `Err` on CRC mismatch.
fn parse_record(data: &[u8], offset: usize) -> Result<Option<VlogRecord>> {
    if offset + RECORD_HEADER > data.len() {
        return Ok(None);
    }
    let stored_crc = crc32c::unmask(decode_fixed32(&data[offset..]));
    let klen = decode_fixed32(&data[offset + 4..]) as usize;
    let vlen = decode_fixed32(&data[offset + 8..]) as usize;
    let body_end = offset
        .checked_add(RECORD_HEADER)
        .and_then(|s| s.checked_add(klen))
        .and_then(|s| s.checked_add(vlen));
    let Some(body_end) = body_end else {
        return Err(Error::Corruption("vlog record length overflow".into()));
    };
    if body_end > data.len() {
        return Ok(None);
    }
    let body = &data[offset + 4..body_end];
    if crc32c::value(body) != stored_crc {
        return Err(Error::Corruption(format!(
            "vlog record at offset {offset} fails checksum"
        )));
    }
    let key = body[8..8 + klen].to_vec();
    let value = body[8 + klen..].to_vec();
    Ok(Some(VlogRecord {
        key,
        value,
        ptr: VlogPointer {
            segment: 0,
            offset: offset as u64,
            len: vlen as u32,
        },
    }))
}

/// Appender for the active segment.
struct VlogWriter {
    file: Box<dyn WritableFile>,
    segment: u64,
    offset: u64,
    scratch: Vec<u8>,
}

impl VlogWriter {
    fn append(&mut self, key: &[u8], value: &[u8]) -> Result<VlogPointer> {
        self.scratch.clear();
        encode_record(&mut self.scratch, key, value);
        let ptr = VlogPointer {
            segment: self.segment,
            offset: self.offset,
            len: value.len() as u32,
        };
        self.file.append(&self.scratch)?;
        self.offset += self.scratch.len() as u64;
        Ok(ptr)
    }
}

/// Open-segment handle cache for the read path (a small LRU, like the
/// table cache: handles are cheap to reopen, so eviction only bounds
/// descriptor usage).
struct VlogReaders {
    env: Arc<dyn StorageEnv>,
    dir: PathBuf,
    capacity: usize,
    inner: sync_shim::Mutex<ReadersInner>,
}

#[derive(Default)]
struct ReadersInner {
    handles: HashMap<u64, Arc<dyn RandomAccessFile>>,
    /// LRU order, most recent last.
    order: Vec<u64>,
}

impl VlogReaders {
    fn get(&self, segment: u64) -> Result<Arc<dyn RandomAccessFile>> {
        {
            let mut inner = shim_lock(&self.inner); // LOCK-ORDER: db.vlog.readers 65
            if let Some(h) = inner.handles.get(&segment).cloned() {
                inner.order.retain(|&s| s != segment);
                inner.order.push(segment);
                return Ok(h);
            }
        }
        // Open outside the lock; a racing open of the same segment just
        // wastes one handle.
        let path = vlog_file_name(&self.dir, segment);
        let file: Arc<dyn RandomAccessFile> = self
            .env
            .open_random_access(&path)
            .map_err(|e| {
                Error::Corruption(format!(
                    "vlog segment {segment:06} missing or unreadable: {e}"
                ))
            })?
            .into();
        let mut inner = shim_lock(&self.inner); // LOCK-ORDER: db.vlog.readers 65
        inner.handles.insert(segment, Arc::clone(&file));
        inner.order.retain(|&s| s != segment);
        inner.order.push(segment);
        while inner.order.len() > self.capacity {
            let evict = inner.order.remove(0);
            inner.handles.remove(&evict);
        }
        Ok(file)
    }

    fn evict(&self, segment: u64) {
        let mut inner = shim_lock(&self.inner); // LOCK-ORDER: db.vlog.readers 65
        inner.handles.remove(&segment);
        inner.order.retain(|&s| s != segment);
    }
}

/// Counters and gauges for the `lsm.vlog.*` metric family.
struct VlogMetrics {
    appends: Arc<obs::Counter>,
    appended_bytes: Arc<obs::Counter>,
    resolves: Arc<obs::Counter>,
    gc_rewrites: Arc<obs::Counter>,
    gc_rewritten_bytes: Arc<obs::Counter>,
    gc_segments_retired: Arc<obs::Counter>,
    dead_bytes: Arc<obs::Gauge>,
    segments: Arc<obs::Gauge>,
}

impl VlogMetrics {
    fn new(registry: &obs::Registry) -> Self {
        VlogMetrics {
            appends: registry.counter("lsm.vlog.appends"),
            appended_bytes: registry.counter("lsm.vlog.appended-bytes"),
            resolves: registry.counter("lsm.vlog.resolves"),
            gc_rewrites: registry.counter("lsm.vlog.gc.rewrites"),
            gc_rewritten_bytes: registry.counter("lsm.vlog.gc.rewritten-bytes"),
            gc_segments_retired: registry.counter("lsm.vlog.gc.segments-retired"),
            dead_bytes: registry.gauge("lsm.vlog.dead-bytes"),
            segments: registry.gauge("lsm.vlog.segments"),
        }
    }
}

/// Everything the `Db` needs to run key-value separation: the active
/// segment writer, the reader handle cache, and the staged next segment
/// number for rotations.
pub(crate) struct VlogRuntime {
    /// Separation threshold (values `>=` go to the log).
    pub threshold: usize,
    /// Rotation size for segments.
    segment_max: u64,
    env: Arc<dyn StorageEnv>,
    dir: PathBuf,
    writer: sync_shim::Mutex<VlogWriter>,
    /// Pre-allocated file number for the next rotation (0 = none staged;
    /// file numbers start at 2, so 0 is free as a sentinel). Staged
    /// outside the writer lock because allocating a number takes the
    /// state lock, which ranks *below* the writer lock.
    staged_segment: sync_shim::atomic::AtomicU64,
    /// Set after any append; cleared by [`Self::sync_if_dirty`].
    dirty: sync_shim::atomic::AtomicBool,
    /// Segment → count of records appended here whose WAL commit is not
    /// yet visible. A record in this window is invisible to GC's
    /// liveness check (`get_stored` cannot see an unapplied batch), so
    /// GC would judge it dead and retire the segment out from under the
    /// in-flight write — the committed pointer would then reference a
    /// deleted file. [`Self::is_pinned`] lets GC defer such segments;
    /// pins only drain once a segment is sealed (appends go to the
    /// active segment only), so deferral terminates.
    pending: sync_shim::Mutex<HashMap<u64, usize>>,
    /// Segments on disk including the active one (mirrored into the
    /// `lsm.vlog.segments` gauge).
    segment_count: sync_shim::atomic::AtomicU64,
    readers: VlogReaders,
    metrics: VlogMetrics,
}

/// RAII pin over the segments holding a write's appended values (see
/// [`VlogRuntime::pending`]). Held from the append until the write's WAL
/// commit is visible; on a failed write the drop still unpins — nothing
/// references the orphaned append, so collecting it is harmless.
pub(crate) struct AppendPin {
    runtime: Arc<VlogRuntime>,
    segments: Vec<u64>,
}

impl Drop for AppendPin {
    fn drop(&mut self) {
        let mut pending = shim_lock(&self.runtime.pending); // LOCK-ORDER: db.vlog.pending 26
        for &s in &self.segments {
            if let Some(n) = pending.get_mut(&s) {
                *n -= 1;
                if *n == 0 {
                    pending.remove(&s);
                }
            }
        }
    }
}

impl VlogRuntime {
    /// Recovers the on-disk segments and opens a *fresh* active segment
    /// (numbered `active_segment`): old segments are sealed read-only and
    /// become GC candidates; the newest one gets its torn tail truncated.
    /// The caller must have bumped the version set's file-number counter
    /// past every existing segment before allocating `active_segment`.
    pub(crate) fn recover(
        env: Arc<dyn StorageEnv>,
        dir: &Path,
        threshold: usize,
        segment_max: u64,
        active_segment: u64,
        registry: &obs::Registry,
    ) -> Result<VlogRuntime> {
        let mut segments = list_segments(env.as_ref(), dir)?;
        segments.sort_unstable();
        if let Some(&newest) = segments.last() {
            truncate_torn_tail(env.as_ref(), dir, newest)?;
        }

        let path = vlog_file_name(dir, active_segment);
        let file = env.create_writable(&path)?;
        // The new segment's directory entry must be durable before any
        // synced pointer references it.
        env.sync_dir(dir)?;

        let metrics = VlogMetrics::new(registry);
        metrics.segments.set(segments.len() as u64 + 1);
        Ok(VlogRuntime {
            threshold,
            segment_max,
            env: Arc::clone(&env),
            dir: dir.to_path_buf(),
            writer: sync_shim::Mutex::new(VlogWriter {
                file,
                segment: active_segment,
                offset: 0,
                scratch: Vec::new(),
            }),
            staged_segment: sync_shim::atomic::AtomicU64::new(0),
            dirty: sync_shim::atomic::AtomicBool::new(false),
            pending: sync_shim::Mutex::new(HashMap::new()),
            segment_count: sync_shim::atomic::AtomicU64::new(segments.len() as u64 + 1),
            readers: VlogReaders {
                env,
                dir: dir.to_path_buf(),
                capacity: 64,
                inner: sync_shim::Mutex::new(ReadersInner::default()),
            },
            metrics,
        })
    }

    /// Stages `number` as the next rotation's segment if none is staged.
    /// Returns `false` when a staged number was already present (the
    /// caller's freshly allocated number is wasted — a harmless gap).
    pub(crate) fn stage_segment(&self, number: u64) -> bool {
        use sync_shim::atomic::Ordering;
        self.staged_segment
            .compare_exchange(0, number, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// True when a rotation consumed the staged number and a new one
    /// should be allocated.
    pub(crate) fn needs_stage(&self) -> bool {
        self.staged_segment
            .load(sync_shim::atomic::Ordering::Acquire)
            == 0
    }

    /// Rewrites `batch` for storage: values at or above the threshold go
    /// to the value log and are replaced by pointers; smaller values get
    /// the inline tag. Deletions pass through. The returned batch is the
    /// one to WAL-append and apply; the pin (present iff anything was
    /// appended) must be held until the batch's WAL commit is visible —
    /// dropping it earlier reopens the retire-under-in-flight-write race
    /// described on [`VlogRuntime::pending`].
    pub(crate) fn separate_batch(
        self: &Arc<Self>,
        batch: &WriteBatch,
    ) -> Result<(WriteBatch, Option<AppendPin>)> {
        // First pass: anything to separate? (Common case for small
        // values: tag-only rewrite, no writer lock.)
        let mut any_large = false;
        batch.iterate(|op, _| {
            if let BatchOp::Put { value, .. } = op {
                any_large |= value.len() >= self.threshold;
            }
        })?;

        let mut out = WriteBatch::new();
        if !any_large {
            batch.iterate(|op, _| match op {
                BatchOp::Put { key, value } => out.put(key, &encode_inline(value)),
                BatchOp::Delete { key } => out.delete(key),
            })?;
            return Ok((out, None));
        }

        let mut append_err: Option<Error> = None;
        let mut pinned: Vec<u64> = Vec::new();
        {
            let mut w = shim_lock(&self.writer); // LOCK-ORDER: db.vlog.writer 25
            let iter_result = batch.iterate(|op, _| {
                if append_err.is_some() {
                    return;
                }
                match op {
                    BatchOp::Put { key, value } if value.len() >= self.threshold => {
                        if let Err(e) = self.rotate_if_full(&mut w) {
                            append_err = Some(e);
                            return;
                        }
                        match w.append(key, value) {
                            Ok(ptr) => {
                                self.metrics.appends.inc();
                                self.metrics.appended_bytes.add(value.len() as u64);
                                if pinned.last() != Some(&ptr.segment) {
                                    pinned.push(ptr.segment);
                                }
                                out.put(key, &ptr.encode());
                            }
                            Err(e) => append_err = Some(e),
                        }
                    }
                    BatchOp::Put { key, value } => out.put(key, &encode_inline(value)),
                    BatchOp::Delete { key } => out.delete(key),
                }
            });
            // Pin under the writer lock: rotation (which seals the
            // segment and makes it a GC candidate) needs that same lock,
            // so a sealed segment's pins are always visible to GC.
            let pin = self.pin_segments(&pinned);
            iter_result?;
            self.dirty.store(true, sync_shim::atomic::Ordering::Release);
            match append_err {
                // A failed vlog append leaves the active segment's tail
                // in an unknown state, but nothing references it: the
                // batch is rejected before its WAL append, and later
                // appends go after the partial record only if the file's
                // offset advanced — which it did not (offset moves only
                // on success).
                Some(e) => Err(e),
                None => Ok((out, pin)),
            }
        }
    }

    /// Appends one value for a GC rewrite, returning the new pointer and
    /// a pin the caller must hold until the rewrite's install (or its
    /// discard) is decided and visible.
    pub(crate) fn append_for_gc(
        self: &Arc<Self>,
        key: &[u8],
        value: &[u8],
    ) -> Result<(VlogPointer, AppendPin)> {
        let mut w = shim_lock(&self.writer); // LOCK-ORDER: db.vlog.writer 25
        self.rotate_if_full(&mut w)?;
        let ptr = w.append(key, value)?;
        let pin = self
            .pin_segments(&[ptr.segment])
            // PANIC-OK: None only for an empty slice; one segment given.
            .expect("one segment always pins");
        self.dirty.store(true, sync_shim::atomic::Ordering::Release);
        self.metrics.gc_rewrites.inc();
        self.metrics.gc_rewritten_bytes.add(value.len() as u64);
        Ok((ptr, pin))
    }

    /// Increments the in-flight append count of each segment (deduped by
    /// the caller) and returns the guard that decrements them.
    // LOCK-HELD: db.vlog.writer -- pins must be taken under the same
    // lock rotation uses, or GC could observe a sealed segment unpinned.
    fn pin_segments(self: &Arc<Self>, segments: &[u64]) -> Option<AppendPin> {
        if segments.is_empty() {
            return None;
        }
        {
            let mut pending = shim_lock(&self.pending); // LOCK-ORDER: db.vlog.pending 26
            for &s in segments {
                *pending.entry(s).or_insert(0) += 1;
            }
        }
        Some(AppendPin {
            runtime: Arc::clone(self),
            segments: segments.to_vec(),
        })
    }

    /// True while some append into `segment` has not become visible yet.
    /// Only meaningful for sealed segments (the active one is never a GC
    /// candidate): sealed segments take no new appends, so once this
    /// reads `false` it stays `false`.
    pub(crate) fn is_pinned(&self, segment: u64) -> bool {
        shim_lock(&self.pending).contains_key(&segment) // LOCK-ORDER: db.vlog.pending 26
    }

    /// Rotates the active segment when it passed the size cap and a next
    /// number is staged. Deferring rotation (nothing staged) just lets
    /// the segment grow a little past the cap.
    // LOCK-HELD: db.vlog.writer via w
    fn rotate_if_full(&self, w: &mut VlogWriter) -> Result<()> {
        use sync_shim::atomic::Ordering;
        if w.offset < self.segment_max {
            return Ok(());
        }
        let next = self.staged_segment.swap(0, Ordering::AcqRel);
        if next == 0 {
            return Ok(());
        }
        // Seal the retiring segment: sync it so the sealed-segments-are-
        // fully-durable invariant holds (recovery only tail-truncates the
        // newest segment).
        w.file.sync()?;
        let path = vlog_file_name(&self.dir, next);
        let file = self.env.create_writable(&path)?;
        self.env.sync_dir(&self.dir)?;
        w.file = file;
        w.segment = next;
        w.offset = 0;
        let count = self.segment_count.fetch_add(1, Ordering::AcqRel) + 1;
        self.metrics.segments.set(count);
        Ok(())
    }

    /// Syncs the active segment if any append happened since the last
    /// sync. Called by the group-commit leader *before* the WAL sync,
    /// and by value-log GC before retiring a segment.
    ///
    /// The dirty check happens *under the writer lock*: appends set the
    /// flag while holding it, and a failed sync restores it before
    /// releasing it. Checking the flag outside the lock would let this
    /// return "clean" while another caller's sync is still in flight —
    /// or has just failed — and the caller would then sync the WAL (or
    /// retire a segment) with value bytes that are not durable.
    pub(crate) fn sync_if_dirty(&self) -> Result<()> {
        use sync_shim::atomic::Ordering;
        let mut w = shim_lock(&self.writer); // LOCK-ORDER: db.vlog.writer 25
        if !self.dirty.swap(false, Ordering::AcqRel) {
            return Ok(());
        }
        w.file.sync().inspect_err(|_| {
            // Sync failed: appends are still unsynced.
            self.dirty.store(true, Ordering::Release);
        })?;
        Ok(())
    }

    /// The segment currently accepting appends.
    pub(crate) fn active_segment(&self) -> u64 {
        shim_lock(&self.writer).segment // LOCK-ORDER: db.vlog.writer 25
    }

    /// Resolves a tagged stored value to the user-visible bytes.
    pub(crate) fn resolve(&self, stored: &[u8]) -> Result<Vec<u8>> {
        match decode_stored(stored)? {
            Stored::Inline(v) => Ok(v.to_vec()),
            Stored::Pointer(ptr) => self.read_pointer(ptr),
        }
    }

    /// Reads and verifies the record behind `ptr`, returning the value.
    pub(crate) fn read_pointer(&self, ptr: VlogPointer) -> Result<Vec<u8>> {
        self.metrics.resolves.inc();
        let file = self.readers.get(ptr.segment)?;
        let total = RECORD_HEADER as u64 + record_body_upper_bound(ptr.len);
        let mut buf = vec![0u8; total as usize];
        let n = file.read_at(ptr.offset, &mut buf).map_err(Error::from)?;
        buf.truncate(n);
        match parse_record(&buf, 0)? {
            Some(rec) if rec.ptr.len == ptr.len => Ok(rec.value),
            Some(_) => Err(Error::Corruption(format!(
                "vlog record at {}:{} length mismatch",
                ptr.segment, ptr.offset
            ))),
            None => Err(Error::Corruption(format!(
                "vlog pointer {}:{} past end of segment",
                ptr.segment, ptr.offset
            ))),
        }
    }

    /// Classifies `ptr` without surfacing an error (WAL replay and
    /// repair use this to tell an unacknowledged torn-tail write from
    /// real corruption).
    pub(crate) fn check_pointer(&self, ptr: VlogPointer) -> PointerCheck {
        check_pointer_in(self.env.as_ref(), &self.dir, ptr)
    }

    /// Reads every record of `segment` (a sealed segment: fully durable,
    /// so a torn tail here is corruption, not a crash artifact).
    pub(crate) fn read_segment(&self, segment: u64) -> Result<(Vec<VlogRecord>, u64)> {
        let path = vlog_file_name(&self.dir, segment);
        let data = self.env.open_random_access(&path)?.read_all()?;
        let mut records = Vec::new();
        let mut offset = 0usize;
        while offset < data.len() {
            match parse_record(&data, offset)? {
                Some(mut rec) => {
                    rec.ptr.segment = segment;
                    offset += RECORD_HEADER + rec.key.len() + rec.value.len();
                    records.push(rec);
                }
                None => {
                    return Err(Error::Corruption(format!(
                        "sealed vlog segment {segment:06} ends mid-record"
                    )))
                }
            }
        }
        Ok((records, data.len() as u64))
    }

    /// Sealed (non-active) segments on disk, oldest first.
    pub(crate) fn sealed_segments(&self) -> Result<Vec<u64>> {
        let active = self.active_segment();
        let mut segs = list_segments(self.env.as_ref(), &self.dir)?;
        segs.retain(|&s| s != active);
        segs.sort_unstable();
        Ok(segs)
    }

    /// Removes a fully-collected segment and drops its reader handle.
    pub(crate) fn remove_segment(&self, segment: u64) -> Result<()> {
        self.env.remove_file(&vlog_file_name(&self.dir, segment))?;
        self.readers.evict(segment);
        self.metrics.gc_segments_retired.inc();
        use sync_shim::atomic::Ordering;
        let count = self
            .segment_count
            .fetch_sub(1, Ordering::AcqRel)
            .saturating_sub(1);
        self.metrics.segments.set(count);
        Ok(())
    }

    /// Publishes the dead-bytes estimate after a GC pass.
    pub(crate) fn publish_gc_gauges(&self, dead_bytes: u64) {
        self.metrics.dead_bytes.set(dead_bytes);
    }
}

/// Upper bound on a record's body size given its value length (the key
/// length is unknown until the header is read; reads fetch
/// header + value + a key allowance and re-read exactly when a key is
/// longer).
fn record_body_upper_bound(value_len: u32) -> u64 {
    // Keys in this store are small (the paper's workloads use 16-byte
    // keys); 4 KiB covers any realistic key without a second read.
    value_len as u64 + 4096
}

/// Lists the `.vlog` segment numbers in `dir`.
pub(crate) fn list_segments(env: &dyn StorageEnv, dir: &Path) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    for name in env.list_dir(dir)? {
        if let Some(crate::filename::FileType::ValueLog(n)) =
            crate::filename::parse_file_name(&name)
        {
            out.push(n);
        }
    }
    Ok(out)
}

/// Classifies `ptr` against the segment files in `dir`.
pub(crate) fn check_pointer_in(env: &dyn StorageEnv, dir: &Path, ptr: VlogPointer) -> PointerCheck {
    let path = vlog_file_name(dir, ptr.segment);
    if !env.file_exists(&path) {
        return PointerCheck::MissingSegment;
    }
    let Ok(file) = env.open_random_access(&path) else {
        return PointerCheck::MissingSegment;
    };
    let Ok(len) = file.len() else {
        return PointerCheck::Corrupt;
    };
    if ptr.offset + RECORD_HEADER as u64 > len {
        return PointerCheck::TornTail;
    }
    let want = RECORD_HEADER as u64 + record_body_upper_bound(ptr.len);
    let to_read = want.min(len.saturating_sub(ptr.offset)) as usize;
    let mut buf = vec![0u8; to_read];
    let Ok(n) = file.read_at(ptr.offset, &mut buf) else {
        return PointerCheck::Corrupt;
    };
    buf.truncate(n);
    match parse_record(&buf, 0) {
        Ok(Some(rec)) if rec.ptr.len == ptr.len => PointerCheck::Ok,
        Ok(Some(_)) => PointerCheck::Corrupt,
        // Record extends past what we read: either a key longer than the
        // allowance (re-read the whole tail) or a genuinely torn tail.
        Ok(None) => {
            if ptr.offset + RECORD_HEADER as u64 > len {
                return PointerCheck::TornTail;
            }
            let mut full = vec![0u8; len.saturating_sub(ptr.offset) as usize];
            let Ok(n) = file.read_at(ptr.offset, &mut full) else {
                return PointerCheck::Corrupt;
            };
            full.truncate(n);
            match parse_record(&full, 0) {
                Ok(Some(rec)) if rec.ptr.len == ptr.len => PointerCheck::Ok,
                Ok(Some(_)) => PointerCheck::Corrupt,
                Ok(None) => PointerCheck::TornTail,
                Err(_) => PointerCheck::Corrupt,
            }
        }
        Err(_) => PointerCheck::Corrupt,
    }
}

/// Truncates the torn tail of `segment`: scans the valid record prefix
/// and, when trailing bytes remain, rewrites the prefix through a temp
/// file and renames it into place. A power cut mid-truncation leaves
/// either the original file or the fully-synced replacement.
pub(crate) fn truncate_torn_tail(env: &dyn StorageEnv, dir: &Path, segment: u64) -> Result<u64> {
    let path = vlog_file_name(dir, segment);
    let data = env.open_random_access(&path)?.read_all()?;
    let mut valid = 0usize;
    while valid < data.len() {
        match parse_record(&data, valid) {
            Ok(Some(rec)) => valid += RECORD_HEADER + rec.key.len() + rec.value.len(),
            // A CRC failure in the prefix is treated like a torn tail
            // too: under the power-cut model the durable bytes are a
            // prefix, so everything from the first bad record on is
            // unacknowledged garbage.
            Ok(None) | Err(_) => break,
        }
    }
    if valid == data.len() {
        return Ok(valid as u64);
    }
    let tmp = temp_file_name(dir, segment);
    let mut f = env.create_writable(&tmp)?;
    f.append(&data[..valid])?;
    // The replacement must be durable before the rename publishes it;
    // otherwise a crash could leave a truncated *and* torn segment.
    f.sync()?;
    drop(f);
    env.rename(&tmp, &path)?;
    env.sync_dir(dir)?;
    Ok(valid as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::env::MemEnv;

    fn runtime(env: &Arc<MemEnv>) -> Arc<VlogRuntime> {
        let (obs, _clock) = obs::Obs::manual();
        env.create_dir_all(Path::new("/v")).unwrap();
        Arc::new(
            VlogRuntime::recover(
                Arc::clone(env) as Arc<dyn StorageEnv>,
                Path::new("/v"),
                64,
                1 << 20,
                2,
                &obs.registry,
            )
            .unwrap(),
        )
    }

    #[test]
    fn pointer_roundtrip() {
        let ptr = VlogPointer {
            segment: 7,
            offset: 12345,
            len: 999,
        };
        let enc = ptr.encode();
        assert_eq!(enc.len(), POINTER_LEN);
        assert_eq!(decode_stored(&enc).unwrap(), Stored::Pointer(ptr));
        let inline = encode_inline(b"hello");
        assert_eq!(decode_stored(&inline).unwrap(), Stored::Inline(b"hello"));
        assert!(decode_stored(&[9u8, 0, 0]).is_err());
        assert!(decode_stored(&[TAG_POINTER, 1, 2]).is_err());
    }

    #[test]
    fn append_and_read_back() {
        let env = Arc::new(MemEnv::new());
        let rt = runtime(&env);
        let big = vec![0xabu8; 200];
        let mut batch = WriteBatch::new();
        batch.put(b"k1", &big);
        batch.put(b"small", b"x");
        batch.delete(b"gone");
        let (rewritten, _pin) = rt.separate_batch(&batch).unwrap();
        let mut stored: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        rewritten
            .iterate(|op, _| match op {
                BatchOp::Put { key, value } => stored.push((key.to_vec(), Some(value.to_vec()))),
                BatchOp::Delete { key } => stored.push((key.to_vec(), None)),
            })
            .unwrap();
        assert_eq!(stored.len(), 3);
        // Large value became a pointer that resolves back.
        let ptr_bytes = stored[0].1.as_ref().unwrap();
        assert_eq!(ptr_bytes.len(), POINTER_LEN);
        assert_eq!(rt.resolve(ptr_bytes).unwrap(), big);
        // Small value stays inline.
        assert_eq!(rt.resolve(stored[1].1.as_ref().unwrap()).unwrap(), b"x");
    }

    #[test]
    fn torn_tail_is_truncated_and_classified() {
        let env = Arc::new(MemEnv::new());
        let rt = runtime(&env);
        let mut batch = WriteBatch::new();
        batch.put(b"key", &[1u8; 100]);
        let (rewritten, _pin) = rt.separate_batch(&batch).unwrap();
        let mut ptr = None;
        rewritten
            .iterate(|op, _| {
                if let BatchOp::Put { value, .. } = op {
                    if let Ok(Stored::Pointer(p)) = decode_stored(value) {
                        ptr = Some(p);
                    }
                }
            })
            .unwrap();
        let ptr = ptr.unwrap();
        rt.sync_if_dirty().unwrap();
        assert_eq!(rt.check_pointer(ptr), PointerCheck::Ok);

        // Chop the record in half: the pointer now reads as torn.
        let path = vlog_file_name(Path::new("/v"), ptr.segment);
        let data = env.open_random_access(&path).unwrap().read_all().unwrap();
        let mut w = env.create_writable(&path).unwrap();
        w.append(&data[..data.len() / 2]).unwrap();
        drop(w);
        assert_eq!(rt.check_pointer(ptr), PointerCheck::TornTail);

        // Truncation removes the partial record entirely.
        let len = truncate_torn_tail(env.as_ref(), Path::new("/v"), ptr.segment).unwrap();
        assert_eq!(len, 0);
        assert_eq!(rt.check_pointer(ptr), PointerCheck::TornTail);
    }

    #[test]
    fn corrupt_record_is_not_torn() {
        let env = Arc::new(MemEnv::new());
        let rt = runtime(&env);
        let mut batch = WriteBatch::new();
        batch.put(b"key", &[2u8; 100]);
        let (rewritten, _pin) = rt.separate_batch(&batch).unwrap();
        let mut ptr = None;
        rewritten
            .iterate(|op, _| {
                if let BatchOp::Put { value, .. } = op {
                    if let Ok(Stored::Pointer(p)) = decode_stored(value) {
                        ptr = Some(p);
                    }
                }
            })
            .unwrap();
        let ptr = ptr.unwrap();
        rt.sync_if_dirty().unwrap();
        // Flip a payload byte in place (same length): CRC must fail.
        let path = vlog_file_name(Path::new("/v"), ptr.segment);
        let mut data = env.open_random_access(&path).unwrap().read_all().unwrap();
        let idx = data.len() - 3;
        data[idx] ^= 0xff;
        let mut w = env.create_writable(&path).unwrap();
        w.append(&data).unwrap();
        drop(w);
        assert_eq!(rt.check_pointer(ptr), PointerCheck::Corrupt);
        assert!(rt.read_pointer(ptr).is_err());
    }

    #[test]
    fn missing_segment_is_classified() {
        let env = Arc::new(MemEnv::new());
        let rt = runtime(&env);
        let ptr = VlogPointer {
            segment: 999,
            offset: 0,
            len: 10,
        };
        assert_eq!(rt.check_pointer(ptr), PointerCheck::MissingSegment);
        assert!(rt.read_pointer(ptr).is_err());
    }
}
