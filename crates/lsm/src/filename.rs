//! Database file naming, following LevelDB's conventions:
//! `NNNNNN.log`, `NNNNNN.ldb`, `MANIFEST-NNNNNN`, `CURRENT`, `LOCK`.

use std::path::{Path, PathBuf};

/// Kinds of files found in a database directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileType {
    /// Write-ahead log.
    Log(u64),
    /// SSTable.
    Table(u64),
    /// Version manifest.
    Manifest(u64),
    /// Pointer to the live manifest.
    Current,
    /// Advisory lock file.
    Lock,
    /// Temporary file used during atomic renames.
    Temp(u64),
    /// Value-log segment (key-value separation).
    ValueLog(u64),
}

/// Path of WAL file `number`.
pub fn log_file_name(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.log"))
}

/// Path of SSTable file `number`.
pub fn table_file_name(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.ldb"))
}

/// Path of manifest file `number`.
pub fn manifest_file_name(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("MANIFEST-{number:06}"))
}

/// Path of the CURRENT pointer file.
pub fn current_file_name(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Path of a temp file used for atomic CURRENT updates.
pub fn temp_file_name(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.dbtmp"))
}

/// Path of value-log segment `number`.
pub fn vlog_file_name(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:06}.vlog"))
}

/// Parses a directory entry name into its file type.
pub fn parse_file_name(name: &str) -> Option<FileType> {
    if name == "CURRENT" {
        return Some(FileType::Current);
    }
    if name == "LOCK" {
        return Some(FileType::Lock);
    }
    if let Some(rest) = name.strip_prefix("MANIFEST-") {
        return rest.parse::<u64>().ok().map(FileType::Manifest);
    }
    if let Some(stem) = name.strip_suffix(".log") {
        return stem.parse::<u64>().ok().map(FileType::Log);
    }
    if let Some(stem) = name.strip_suffix(".ldb") {
        return stem.parse::<u64>().ok().map(FileType::Table);
    }
    if let Some(stem) = name.strip_suffix(".dbtmp") {
        return stem.parse::<u64>().ok().map(FileType::Temp);
    }
    if let Some(stem) = name.strip_suffix(".vlog") {
        return stem.parse::<u64>().ok().map(FileType::ValueLog);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_names() {
        let dir = Path::new("/db");
        let cases = [
            (log_file_name(dir, 7), FileType::Log(7)),
            (table_file_name(dir, 123), FileType::Table(123)),
            (manifest_file_name(dir, 1), FileType::Manifest(1)),
            (current_file_name(dir), FileType::Current),
            (temp_file_name(dir, 9), FileType::Temp(9)),
            (vlog_file_name(dir, 11), FileType::ValueLog(11)),
        ];
        for (path, expect) in cases {
            let name = path.file_name().unwrap().to_str().unwrap();
            assert_eq!(parse_file_name(name), Some(expect), "{name}");
        }
    }

    #[test]
    fn unknown_names_are_none() {
        for name in ["foo", "123.sst.bak", "MANIFEST-abc", "x.log", "", "42"] {
            assert_eq!(parse_file_name(name), None, "{name}");
        }
    }

    #[test]
    fn large_numbers_parse() {
        assert_eq!(
            parse_file_name("18446744073709551615.ldb"),
            Some(FileType::Table(u64::MAX))
        );
    }
}
