//! Concurrency primitives swappable for loom.
//!
//! Two subsystems build on this module. The staged pipeline
//! ([`crate::pipeline`]) talks between threads over bounded channels; the
//! parallel write path ([`crate::write_path`], the sharded
//! [`crate::memtable::MemTable`], and the group-commit machinery in
//! [`crate::db`]) coordinates writers with mutexes, condvars, and
//! atomics. Production builds use `std::sync`; building with
//! `RUSTFLAGS="--cfg loom"` swaps in `loom`'s instrumented versions so
//! the model suites can explore interleavings of the exact protocol
//! production runs.
//!
//! The re-exported API is the `std::sync` subset those modules use,
//! identical under both cfgs. `std::sync::Mutex::lock` and the loom
//! shim's both return a `Result` whose error wraps the guard, so callers
//! stay panic-free with `unwrap_or_else(PoisonError::into_inner)`.

#[cfg(loom)]
pub use loom::sync::mpsc::{sync_channel, Receiver, SyncSender};
#[cfg(not(loom))]
pub use std::sync::mpsc::{sync_channel, Receiver, SyncSender};

#[cfg(loom)]
pub use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::sync::{Condvar, Mutex, MutexGuard};

/// Atomic types with loom instrumentation under `--cfg loom`.
pub mod atomic {
    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

use std::sync::PoisonError;

/// Acquires `m`, swallowing poison (a panicking holder already failed
/// its own thread; the protected state is still internally consistent
/// for the protocols in this crate, which never panic mid-update).
pub fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner) // LOCK-ORDER-OK: generic helper; callers annotate their own sites.
}
