//! Concurrency primitives for the pipelined engine, swappable for loom.
//!
//! The staged pipeline ([`crate::pipeline`]) talks between threads over
//! bounded channels. Production builds use `std::sync::mpsc`; building
//! with `RUSTFLAGS="--cfg loom"` swaps in `loom`'s instrumented versions
//! so the model suites (`loom_models` in `pipeline.rs`) can explore
//! shutdown-while-full, backpressure-release, and panic-teardown
//! interleavings. The re-exported API is the `std::sync::mpsc` subset the
//! pipeline uses, identical under both cfgs — the models exercise the
//! exact channel protocol production runs.

#[cfg(loom)]
pub use loom::sync::mpsc::{sync_channel, Receiver, SyncSender};
#[cfg(not(loom))]
pub use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
