//! A forward iterator over the live user-visible contents of the store
//! (LevelDB's `DBIter`, forward-only): merges the memtable snapshots and
//! every level's tables, then collapses internal-key versions — the
//! newest visible version of each user key wins, tombstones hide keys.

use std::sync::Arc;

use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::ikey::{parse_internal_key, LookupKey, SequenceNumber, ValueType};
use sstable::iterator::{InternalIterator, MergingIterator, VecIterator};

use crate::vlog::VlogRuntime;
use crate::Result;

/// Iterator over live `(user key, value)` pairs at a fixed sequence.
///
/// With key-value separation enabled the iterator dereferences value-log
/// pointers as it goes; a failed dereference (e.g. a segment retired by
/// a concurrent GC pass) stops the iteration and surfaces through
/// [`DbIter::status`]. Iterators do not pin value-log segments — do not
/// run [`crate::Db::collect_value_log`] while holding one.
pub struct DbIter {
    merger: MergingIterator,
    sequence: SequenceNumber,
    key: Vec<u8>,
    value: Vec<u8>,
    valid: bool,
    /// Dereferences tagged stored values when separation is on.
    vlog: Option<Arc<VlogRuntime>>,
    /// First value-log resolution failure (`crate::Error` is not
    /// `Clone`, so the message is kept and re-wrapped by `status`).
    resolve_error: Option<String>,
}

impl DbIter {
    /// Builds an iterator from already-assembled children (the `Db`
    /// assembles memtable snapshots + table iterators).
    pub(crate) fn new(
        children: Vec<Box<dyn InternalIterator>>,
        sequence: SequenceNumber,
        vlog: Option<Arc<VlogRuntime>>,
    ) -> Self {
        let icmp: Arc<dyn Comparator> = Arc::new(InternalKeyComparator::default());
        DbIter {
            merger: MergingIterator::new(children, icmp),
            sequence,
            key: Vec::new(),
            value: Vec::new(),
            valid: false,
            vlog,
            resolve_error: None,
        }
    }

    /// True when positioned on a live entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// Current user key.
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.value
    }

    /// Positions at the first live key.
    pub fn seek_to_first(&mut self) {
        self.merger.seek_to_first();
        self.find_next_user_entry(None);
    }

    /// Positions at the first live key >= `user_key`.
    pub fn seek(&mut self, user_key: &[u8]) {
        let lk = LookupKey::new(user_key, self.sequence);
        self.merger.seek(lk.internal_key());
        self.find_next_user_entry(None);
    }

    /// Advances to the next live key.
    pub fn next(&mut self) {
        debug_assert!(self.valid);
        let skip = std::mem::take(&mut self.key);
        if self.merger.valid() {
            self.merger.next();
        }
        self.find_next_user_entry(Some(skip));
    }

    /// Scans forward to the newest visible version of the next user key
    /// that is not `skip` and not deleted.
    fn find_next_user_entry(&mut self, mut skip: Option<Vec<u8>>) {
        self.valid = false;
        while self.merger.valid() {
            let Some(parsed) = parse_internal_key(self.merger.key()) else {
                self.merger.next();
                continue;
            };
            if parsed.sequence > self.sequence {
                // Newer than our snapshot: invisible.
                self.merger.next();
                continue;
            }
            if let Some(s) = &skip {
                if parsed.user_key == s.as_slice() {
                    self.merger.next();
                    continue;
                }
            }
            match parsed.value_type {
                ValueType::Deletion => {
                    // Key is dead at this snapshot; skip all older versions.
                    skip = Some(parsed.user_key.to_vec());
                    self.merger.next();
                }
                ValueType::Value => {
                    self.key.clear();
                    self.key.extend_from_slice(parsed.user_key);
                    self.value.clear();
                    match &self.vlog {
                        None => self.value.extend_from_slice(self.merger.value()),
                        Some(v) => match v.resolve(self.merger.value()) {
                            Ok(resolved) => self.value = resolved,
                            Err(e) => {
                                // Stop here; the failure surfaces through
                                // status() like a child-iterator error.
                                self.resolve_error = Some(e.to_string());
                                self.valid = false;
                                return;
                            }
                        },
                    }
                    self.valid = true;
                    return;
                }
            }
        }
    }

    /// Propagated error from any child iterator or value-log dereference.
    pub fn status(&self) -> Result<()> {
        if let Some(msg) = &self.resolve_error {
            return Err(crate::Error::Corruption(msg.clone()));
        }
        self.merger.status().map_err(crate::Error::from)
    }
}

/// Helper used by the `Db` to wrap memtable snapshots as children.
pub(crate) fn vec_child(entries: Vec<(Vec<u8>, Vec<u8>)>) -> Box<dyn InternalIterator> {
    let icmp: Arc<dyn Comparator> = Arc::new(InternalKeyComparator::default());
    Box::new(VecIterator::new(Arc::new(entries), icmp))
}
