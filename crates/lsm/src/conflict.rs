//! Admission control for concurrent compactions.
//!
//! With more than one background worker (and an offload service that can
//! run several device engines at once), two compactions may execute
//! concurrently only when they cannot observe or produce the same files.
//! A compaction from level `L` reads files at `L` and `L + 1` and writes
//! files at `L + 1`, so two jobs are independent exactly when
//!
//! * their input file sets are disjoint, and
//! * they either touch disjoint level pairs (`|L_a - L_b| > 1`) or their
//!   user-key ranges do not overlap.
//!
//! The checker is deliberately conservative: rejecting an admissible job
//! only delays it, while admitting a conflicting pair could interleave
//! installs that delete each other's inputs or produce overlapping files
//! inside a sorted level.

use std::collections::HashSet;

/// The footprint of one compaction job for conflict purposes.
#[derive(Debug, Clone)]
pub struct JobShape {
    /// Source level; the job also touches `level + 1`.
    pub level: usize,
    /// Smallest user key across every input file (inclusive).
    pub smallest_user: Vec<u8>,
    /// Largest user key across every input file (inclusive).
    pub largest_user: Vec<u8>,
    /// All input file numbers (both levels).
    pub files: HashSet<u64>,
}

impl JobShape {
    /// True when `self` and `other` must not run concurrently.
    pub fn conflicts_with(&self, other: &JobShape) -> bool {
        if !self.files.is_disjoint(&other.files) {
            return true;
        }
        // Jobs share a level iff the source levels are within one of each
        // other; sharing a level is only a problem if the key ranges meet.
        self.level.abs_diff(other.level) <= 1 && self.overlaps(other)
    }

    fn overlaps(&self, other: &JobShape) -> bool {
        self.largest_user >= other.smallest_user && other.largest_user >= self.smallest_user
    }
}

/// Ticket handed out on admission; releasing it retires the job.
pub type JobTicket = u64;

/// Tracks in-flight compactions and admits only non-conflicting jobs.
#[derive(Debug, Default)]
pub struct ConflictChecker {
    next_ticket: JobTicket,
    in_flight: Vec<(JobTicket, JobShape)>,
}

impl ConflictChecker {
    /// An empty checker.
    pub fn new() -> Self {
        ConflictChecker::default()
    }

    /// Number of admitted, not-yet-released jobs.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// True if `job` conflicts with any in-flight job.
    pub fn conflicts(&self, job: &JobShape) -> bool {
        self.in_flight
            .iter()
            .any(|(_, other)| job.conflicts_with(other))
    }

    /// Admits `job` unless it conflicts; the returned ticket must be
    /// passed to [`ConflictChecker::release`] when the job finishes
    /// (successfully or not).
    pub fn try_admit(&mut self, job: JobShape) -> Option<JobTicket> {
        if self.conflicts(&job) {
            return None;
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        self.in_flight.push((ticket, job));
        Some(ticket)
    }

    /// Retires the job behind `ticket`. Unknown tickets are ignored (a
    /// double release is harmless).
    pub fn release(&mut self, ticket: JobTicket) {
        self.in_flight.retain(|(t, _)| *t != ticket);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(level: usize, lo: &str, hi: &str, files: &[u64]) -> JobShape {
        JobShape {
            level,
            smallest_user: lo.as_bytes().to_vec(),
            largest_user: hi.as_bytes().to_vec(),
            files: files.iter().copied().collect(),
        }
    }

    #[test]
    fn same_level_overlap_conflicts() {
        let mut c = ConflictChecker::new();
        let t = c.try_admit(shape(1, "a", "m", &[1, 2])).unwrap();
        assert!(c.try_admit(shape(1, "k", "z", &[3])).is_none());
        assert!(
            c.try_admit(shape(2, "k", "z", &[3])).is_none(),
            "adjacent level"
        );
        assert!(
            c.try_admit(shape(0, "k", "z", &[3])).is_none(),
            "adjacent level"
        );
        c.release(t);
        assert!(c.try_admit(shape(1, "k", "z", &[3])).is_some());
    }

    #[test]
    fn disjoint_ranges_or_far_levels_admit() {
        let mut c = ConflictChecker::new();
        c.try_admit(shape(1, "a", "f", &[1])).unwrap();
        // Same level, disjoint range.
        assert!(c.try_admit(shape(1, "g", "z", &[2])).is_some());
        // Two levels away, overlapping range.
        assert!(c.try_admit(shape(3, "a", "z", &[9])).is_some());
        assert_eq!(c.in_flight(), 3);
    }

    #[test]
    fn shared_files_conflict_even_across_levels() {
        let mut c = ConflictChecker::new();
        c.try_admit(shape(1, "a", "f", &[7])).unwrap();
        // Far level but the same file number must still be rejected.
        assert!(c.try_admit(shape(4, "q", "z", &[7])).is_none());
    }

    #[test]
    fn release_is_idempotent() {
        let mut c = ConflictChecker::new();
        let t = c.try_admit(shape(0, "a", "z", &[1])).unwrap();
        c.release(t);
        c.release(t);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn touching_ranges_conflict() {
        let mut c = ConflictChecker::new();
        c.try_admit(shape(2, "a", "m", &[1])).unwrap();
        // Inclusive bounds: sharing the boundary key "m" is an overlap.
        assert!(c.try_admit(shape(2, "m", "z", &[2])).is_none());
    }
}
