//! Write-ahead log, LevelDB `log_format`: the file is a sequence of 32 KiB
//! blocks; each record is `crc32c(4) | length(2) | type(1) | payload`,
//! where type says whether the payload is a FULL record or the
//! FIRST/MIDDLE/LAST fragment of one spanning blocks.

use sstable::coding::decode_fixed32;
use sstable::crc32c;
use sstable::env::{RandomAccessFile, WritableFile};

use crate::{Error, Result};

/// Log block size.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Record header: checksum + length + type.
pub const HEADER_SIZE: usize = 4 + 2 + 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum RecordType {
    Full = 1,
    First = 2,
    Middle = 3,
    Last = 4,
}

impl RecordType {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RecordType::Full),
            2 => Some(RecordType::First),
            3 => Some(RecordType::Middle),
            4 => Some(RecordType::Last),
            _ => None,
        }
    }
}

/// Appends records to a log file.
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    /// Offset within the current block.
    block_offset: usize,
    /// Reusable staging buffer: each logical record (headers, fragments,
    /// and block padding) is assembled here and handed to the file in
    /// *one* `append` call instead of two per fragment. Group commit
    /// leaders append many records back to back while holding the WAL
    /// epoch lock, so halving the per-record call count directly shrinks
    /// the serialized window (and a torn record after a crash is one
    /// partially-persisted buffer, never interleaved fragment pieces).
    scratch: Vec<u8>,
}

impl LogWriter {
    /// Starts a writer on a fresh file.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        LogWriter {
            file,
            block_offset: 0,
            scratch: Vec::new(),
        }
    }

    /// Appends one record (fragmenting across blocks as needed).
    pub fn add_record(&mut self, data: &[u8]) -> Result<()> {
        self.scratch.clear();
        let mut left = data;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Pad the block tail with zeros and start a new block.
                if leftover > 0 {
                    self.scratch
                        .extend_from_slice(&[0u8; HEADER_SIZE][..leftover]);
                }
                self.block_offset = 0;
            }
            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = left.len().min(avail);
            let end = fragment_len == left.len();
            let ty = match (begin, end) {
                (true, true) => RecordType::Full,
                (true, false) => RecordType::First,
                (false, true) => RecordType::Last,
                (false, false) => RecordType::Middle,
            };
            self.emit_physical(ty, &left[..fragment_len]);
            left = &left[fragment_len..];
            begin = false;
            if end {
                break;
            }
        }
        // One write per logical record.
        let scratch = std::mem::take(&mut self.scratch);
        let result = self.file.append(&scratch);
        self.scratch = scratch;
        result?;
        Ok(())
    }

    /// Frames one physical fragment into the staging buffer.
    fn emit_physical(&mut self, ty: RecordType, data: &[u8]) {
        debug_assert!(data.len() <= 0xffff);
        let crc = crc32c::extend(crc32c::value(&[ty as u8]), data);
        let mut header = [0u8; HEADER_SIZE];
        header[..4].copy_from_slice(&crc32c::mask(crc).to_le_bytes());
        header[4..6].copy_from_slice(&(data.len() as u16).to_le_bytes());
        header[6] = ty as u8;
        self.scratch.extend_from_slice(&header);
        self.scratch.extend_from_slice(data);
        self.block_offset += HEADER_SIZE + data.len();
    }

    /// Flushes buffered bytes to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    /// Durably syncs the log.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.file.bytes_written()
    }
}

/// Why [`LogReader::read_record`] returned `None`: the shape of the log's
/// tail. A *live* log (one a writer is still appending to) ends cleanly
/// between records or mid-record depending on when the reader sampled it;
/// the replication tailer uses this to tell "end of durable prefix, poll
/// again at [`LogReader::resume_pos`]" apart from "a record is mid-flight
/// (or was torn by a crash), re-read it once more bytes land".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TailState {
    /// The reader consumed every complete record and stopped exactly at
    /// the end of the written bytes (or at zeroed preallocated space).
    #[default]
    CleanEof,
    /// The log ends mid-record: a partial header, a payload running past
    /// the end of the file, or an unterminated FIRST/MIDDLE fragment
    /// chain. On a live log this is an append caught in flight; after a
    /// crash it is the torn tail recovery silently drops.
    Torn,
}

/// Reads records back, skipping corrupt tails (crash recovery semantics:
/// a torn final record is expected and silently ends the log).
pub struct LogReader {
    data: Vec<u8>,
    pos: usize,
    /// End offset of the last *fully returned* logical record (or the
    /// start offset): the position a tailer can safely resume from.
    /// Never advances into a padding skip or a partial record, so
    /// re-reading from here after the writer appends more bytes replays
    /// nothing and fabricates nothing.
    consumed: usize,
    /// Fragments of an in-progress logical record.
    scratch: Vec<u8>,
    /// Why the last `read_record` pass ended (meaningful after `None`).
    tail: TailState,
    /// Set when corruption (other than a clean EOF) was skipped.
    corruption_detected: bool,
    /// Count of physical records dropped for corruption; lets the logical
    /// layer notice a fragment went missing mid-record.
    corruptions_skipped: u64,
}

impl LogReader {
    /// Reads the entire log file into memory and prepares to iterate.
    pub fn new(file: &dyn RandomAccessFile) -> Result<Self> {
        Self::new_at(file, 0)
    }

    /// Reads the log file and prepares to iterate from byte `offset` — a
    /// resume point previously obtained from [`LogReader::resume_pos`].
    /// An offset past the end of the file (the file shrank, which no
    /// append-only writer does) clamps to the end and reads nothing.
    pub fn new_at(file: &dyn RandomAccessFile, offset: u64) -> Result<Self> {
        let data = file.read_all().map_err(Error::from)?;
        let pos = (offset as usize).min(data.len());
        Ok(LogReader {
            data,
            pos,
            consumed: pos,
            scratch: Vec::new(),
            tail: TailState::CleanEof,
            corruption_detected: false,
            corruptions_skipped: 0,
        })
    }

    /// The byte offset just past the last fully returned record: pass it
    /// to [`LogReader::new_at`] to continue where this pass stopped.
    pub fn resume_pos(&self) -> u64 {
        self.consumed as u64
    }

    /// The tail shape observed when `read_record` last returned `None`.
    pub fn tail_state(&self) -> TailState {
        self.tail
    }

    /// True if any mid-log corruption was skipped during reading.
    pub fn corruption_detected(&self) -> bool {
        self.corruption_detected
    }

    /// Returns the next logical record, or `None` at end of log.
    pub fn read_record(&mut self) -> Option<Vec<u8>> {
        self.scratch.clear();
        let mut in_fragmented = false;
        loop {
            let corruptions_before = self.corruptions_skipped;
            let Some((ty, payload)) = self.read_physical() else {
                if in_fragmented {
                    // The log ends inside a FIRST/MIDDLE chain: the
                    // logical record is incomplete no matter how cleanly
                    // the last fragment's bytes stopped.
                    self.tail = TailState::Torn;
                }
                return None;
            };
            if self.corruptions_skipped != corruptions_before && in_fragmented {
                // A fragment of the in-progress record was lost to
                // corruption; splicing the remainder would fabricate a
                // record that was never written.
                self.scratch.clear();
                in_fragmented = false;
            }
            match ty {
                RecordType::Full => {
                    if in_fragmented {
                        // Unterminated FIRST: drop it.
                        self.corruption_detected = true;
                    }
                    self.consumed = self.pos;
                    return Some(payload);
                }
                RecordType::First => {
                    if in_fragmented {
                        self.corruption_detected = true;
                        self.scratch.clear();
                    }
                    self.scratch.extend_from_slice(&payload);
                    in_fragmented = true;
                }
                RecordType::Middle => {
                    if in_fragmented {
                        self.scratch.extend_from_slice(&payload);
                    } else {
                        self.corruption_detected = true;
                    }
                }
                RecordType::Last => {
                    if in_fragmented {
                        self.scratch.extend_from_slice(&payload);
                        self.consumed = self.pos;
                        return Some(std::mem::take(&mut self.scratch));
                    }
                    self.corruption_detected = true;
                }
            }
        }
    }

    /// Reads the next physical record, skipping block padding and torn
    /// tails. Returns `None` at end of file.
    fn read_physical(&mut self) -> Option<(RecordType, Vec<u8>)> {
        loop {
            let block_left = BLOCK_SIZE - (self.pos % BLOCK_SIZE);
            if block_left < HEADER_SIZE {
                // Block tail padding.
                self.pos += block_left;
                continue;
            }
            if self.pos + HEADER_SIZE > self.data.len() {
                // Exactly at the end: clean EOF. Short of a full header:
                // a header caught mid-write (or torn by a crash).
                self.tail = if self.pos == self.data.len() {
                    TailState::CleanEof
                } else {
                    TailState::Torn
                };
                return None;
            }
            let header = &self.data[self.pos..self.pos + HEADER_SIZE];
            let length = u16::from_le_bytes([header[4], header[5]]) as usize;
            let ty_byte = header[6];
            if ty_byte == 0 && length == 0 {
                // Zeroed padding / preallocated region: end of log.
                self.tail = TailState::CleanEof;
                return None;
            }
            let start = self.pos + HEADER_SIZE;
            if start + length > self.data.len() {
                // Torn write at the tail.
                self.tail = TailState::Torn;
                return None;
            }
            let stored_crc = crc32c::unmask(decode_fixed32(&header[..4]));
            let payload = &self.data[start..start + length];
            let actual_crc = crc32c::extend(crc32c::value(&[ty_byte]), payload);
            self.pos = start + length;
            if stored_crc != actual_crc {
                self.corruption_detected = true;
                self.corruptions_skipped += 1;
                continue;
            }
            match RecordType::from_u8(ty_byte) {
                Some(ty) => return Some((ty, payload.to_vec())),
                None => {
                    self.corruption_detected = true;
                    self.corruptions_skipped += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::env::{MemEnv, StorageEnv};
    use std::path::Path;

    fn write_records(env: &MemEnv, path: &str, records: &[Vec<u8>]) {
        let f = env.create_writable(Path::new(path)).unwrap();
        let mut w = LogWriter::new(f);
        for r in records {
            w.add_record(r).unwrap();
        }
        w.flush().unwrap();
    }

    fn read_records(env: &MemEnv, path: &str) -> (Vec<Vec<u8>>, bool) {
        let f = env.open_random_access(Path::new(path)).unwrap();
        let mut r = LogReader::new(f.as_ref()).unwrap();
        let mut out = Vec::new();
        while let Some(rec) = r.read_record() {
            out.push(rec);
        }
        (out, r.corruption_detected())
    }

    #[test]
    fn roundtrip_small_records() {
        let env = MemEnv::new();
        let records = vec![b"one".to_vec(), b"two".to_vec(), vec![], b"four".to_vec()];
        write_records(&env, "/log", &records);
        let (got, corrupt) = read_records(&env, "/log");
        assert_eq!(got, records);
        assert!(!corrupt);
    }

    #[test]
    fn roundtrip_records_spanning_blocks() {
        let env = MemEnv::new();
        // Records larger than one block force FIRST/MIDDLE/LAST chains.
        let records = vec![
            vec![1u8; 10],
            vec![2u8; BLOCK_SIZE],
            vec![3u8; 3 * BLOCK_SIZE + 17],
            vec![4u8; 5],
        ];
        write_records(&env, "/log", &records);
        let (got, corrupt) = read_records(&env, "/log");
        assert_eq!(got.len(), records.len());
        for (a, b) in got.iter().zip(&records) {
            assert_eq!(a, b);
        }
        assert!(!corrupt);
    }

    #[test]
    fn block_boundary_padding() {
        let env = MemEnv::new();
        // Record sized so the next header would not fit in the block.
        let first = vec![7u8; BLOCK_SIZE - HEADER_SIZE - 3];
        let records = vec![first, b"after-pad".to_vec()];
        write_records(&env, "/log", &records);
        let (got, corrupt) = read_records(&env, "/log");
        assert_eq!(got, records);
        assert!(!corrupt);
    }

    #[test]
    fn torn_tail_is_silent_eof() {
        let env = MemEnv::new();
        write_records(&env, "/log", &[b"complete".to_vec(), vec![9u8; 5000]]);
        let full = env
            .open_random_access(Path::new("/log"))
            .unwrap()
            .read_all()
            .unwrap();
        // Truncate mid-way through the second record.
        let torn = &full[..full.len() - 1000];
        let mut w = env.create_writable(Path::new("/torn")).unwrap();
        w.append(torn).unwrap();
        drop(w);
        let (got, _) = read_records(&env, "/torn");
        assert_eq!(got, vec![b"complete".to_vec()]);
    }

    #[test]
    fn corrupt_record_is_skipped_and_flagged() {
        let env = MemEnv::new();
        write_records(
            &env,
            "/log",
            &[b"first".to_vec(), b"second".to_vec(), b"third".to_vec()],
        );
        let mut full = env
            .open_random_access(Path::new("/log"))
            .unwrap()
            .read_all()
            .unwrap();
        // Corrupt the payload of the second record (header of rec2 starts
        // at HEADER_SIZE + 5).
        let idx = HEADER_SIZE + 5 + HEADER_SIZE + 2;
        full[idx] ^= 0xff;
        let mut w = env.create_writable(Path::new("/bad")).unwrap();
        w.append(&full).unwrap();
        drop(w);
        let (got, corrupt) = read_records(&env, "/bad");
        assert_eq!(got, vec![b"first".to_vec(), b"third".to_vec()]);
        assert!(corrupt);
    }

    #[test]
    fn empty_log_reads_nothing() {
        let env = MemEnv::new();
        write_records(&env, "/log", &[]);
        let (got, corrupt) = read_records(&env, "/log");
        assert!(got.is_empty());
        assert!(!corrupt);
    }

    // ---- resume semantics: the replication tailer's contract ----------

    /// Reads from `offset`, returning the records plus the reader's final
    /// resume position and tail state.
    fn read_from(env: &dyn StorageEnv, path: &str, offset: u64) -> (Vec<Vec<u8>>, u64, TailState) {
        let f = env.open_random_access(Path::new(path)).unwrap();
        let mut r = LogReader::new_at(f.as_ref(), offset).unwrap();
        let mut out = Vec::new();
        while let Some(rec) = r.read_record() {
            out.push(rec);
        }
        (out, r.resume_pos(), r.tail_state())
    }

    #[test]
    fn clean_eof_resume_sees_later_appends_exactly_once() {
        // Model a live tail with two snapshots of the same append stream:
        // the framing is deterministic, so `/later` is `/early` plus one
        // more record.
        let env = MemEnv::new();
        let r1 = b"first".to_vec();
        let r2 = vec![7u8; 4000];
        let r3 = b"appended-after-the-first-poll".to_vec();
        write_records(&env, "/early", &[r1.clone(), r2.clone()]);
        write_records(&env, "/later", &[r1.clone(), r2.clone(), r3.clone()]);

        let (got, resume, tail) = read_from(&env, "/early", 0);
        assert_eq!(got, vec![r1, r2]);
        assert_eq!(tail, TailState::CleanEof);

        // Poll again at the resume offset once more bytes exist: only the
        // new record appears — nothing replayed, nothing skipped.
        let (got, _, tail) = read_from(&env, "/later", resume);
        assert_eq!(got, vec![r3]);
        assert_eq!(tail, TailState::CleanEof);
    }

    #[test]
    fn torn_tail_stops_before_the_partial_record() {
        let env = MemEnv::new();
        let r1 = b"complete".to_vec();
        let r2 = vec![9u8; 5000];
        write_records(&env, "/full", &[r1.clone(), r2.clone()]);
        let full = env
            .open_random_access(Path::new("/full"))
            .unwrap()
            .read_all()
            .unwrap();
        // Cut mid-way through the second record's payload.
        let mut w = env.create_writable(Path::new("/torn")).unwrap();
        w.append(&full[..full.len() - 1000]).unwrap();
        drop(w);

        let (got, resume, tail) = read_from(&env, "/torn", 0);
        assert_eq!(got, vec![r1.clone()]);
        assert_eq!(tail, TailState::Torn);
        // The resume point sits before the torn record, so once the
        // append completes (the full file) the record is read whole.
        let (got, _, tail) = read_from(&env, "/full", resume);
        assert_eq!(got, vec![r2]);
        assert_eq!(tail, TailState::CleanEof);
    }

    #[test]
    fn truncated_header_is_torn_not_clean() {
        let env = MemEnv::new();
        write_records(&env, "/full", &[b"rec".to_vec()]);
        let full = env
            .open_random_access(Path::new("/full"))
            .unwrap()
            .read_all()
            .unwrap();
        // Keep 3 bytes: less than a header — an append caught mid-write.
        let mut w = env.create_writable(Path::new("/stub")).unwrap();
        w.append(&full[..3]).unwrap();
        drop(w);
        let (got, resume, tail) = read_from(&env, "/stub", 0);
        assert!(got.is_empty());
        assert_eq!(resume, 0);
        assert_eq!(tail, TailState::Torn);
    }

    #[test]
    fn fragment_chain_cut_between_fragments_is_torn() {
        let env = MemEnv::new();
        // One record spanning three blocks; cut exactly at a block
        // boundary so the FIRST fragment itself ends cleanly but the
        // logical record does not.
        write_records(&env, "/full", &[vec![5u8; 3 * BLOCK_SIZE]]);
        let full = env
            .open_random_access(Path::new("/full"))
            .unwrap()
            .read_all()
            .unwrap();
        let mut w = env.create_writable(Path::new("/cut")).unwrap();
        w.append(&full[..BLOCK_SIZE]).unwrap();
        drop(w);
        let (got, resume, tail) = read_from(&env, "/cut", 0);
        assert!(got.is_empty());
        assert_eq!(resume, 0, "resume must stay before the open chain");
        assert_eq!(tail, TailState::Torn);
    }

    #[test]
    fn fault_env_power_cut_tails_resume_consistently() {
        use sstable::env::FaultEnv;
        use std::sync::Arc;
        // A synced record followed by an unsynced one, power-cut under a
        // band of seeds: every surviving prefix must read back the synced
        // record, resume exactly at its end unless the unsynced record
        // survived whole, and report Torn exactly when partial bytes of
        // the unsynced record were kept.
        for seed in 0..16u64 {
            let env = FaultEnv::new(Arc::new(MemEnv::new()), seed);
            let path = Path::new("/wal");
            let f = env.create_writable(path).unwrap();
            env.sync_dir(Path::new("/")).unwrap();
            let mut w = LogWriter::new(f);
            let synced_rec = b"durable-record".to_vec();
            let unsynced_rec = vec![3u8; 2000];
            w.add_record(&synced_rec).unwrap();
            w.sync().unwrap();
            let synced_end = env.synced_len(path).unwrap();
            w.add_record(&unsynced_rec).unwrap();
            w.flush().unwrap();
            drop(w);
            env.power_cut(seed ^ 0xC0DE).unwrap();

            let survived = env
                .open_random_access(path)
                .unwrap()
                .read_all()
                .unwrap()
                .len() as u64;
            let (got, resume, tail) = read_from(&env, "/wal", 0);
            if got.len() == 2 {
                // The whole torn tail survived.
                assert_eq!(got[1], unsynced_rec, "seed {seed}");
                assert_eq!(tail, TailState::CleanEof, "seed {seed}");
            } else {
                assert_eq!(got, vec![synced_rec.clone()], "seed {seed}");
                assert_eq!(resume, synced_end, "seed {seed}");
                let expect = if survived == synced_end {
                    TailState::CleanEof
                } else {
                    TailState::Torn
                };
                assert_eq!(tail, expect, "seed {seed}");
            }
        }
    }
}
