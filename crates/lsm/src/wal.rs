//! Write-ahead log, LevelDB `log_format`: the file is a sequence of 32 KiB
//! blocks; each record is `crc32c(4) | length(2) | type(1) | payload`,
//! where type says whether the payload is a FULL record or the
//! FIRST/MIDDLE/LAST fragment of one spanning blocks.

use sstable::coding::decode_fixed32;
use sstable::crc32c;
use sstable::env::{RandomAccessFile, WritableFile};

use crate::{Error, Result};

/// Log block size.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Record header: checksum + length + type.
pub const HEADER_SIZE: usize = 4 + 2 + 1;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum RecordType {
    Full = 1,
    First = 2,
    Middle = 3,
    Last = 4,
}

impl RecordType {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(RecordType::Full),
            2 => Some(RecordType::First),
            3 => Some(RecordType::Middle),
            4 => Some(RecordType::Last),
            _ => None,
        }
    }
}

/// Appends records to a log file.
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    /// Offset within the current block.
    block_offset: usize,
    /// Reusable staging buffer: each logical record (headers, fragments,
    /// and block padding) is assembled here and handed to the file in
    /// *one* `append` call instead of two per fragment. Group commit
    /// leaders append many records back to back while holding the WAL
    /// epoch lock, so halving the per-record call count directly shrinks
    /// the serialized window (and a torn record after a crash is one
    /// partially-persisted buffer, never interleaved fragment pieces).
    scratch: Vec<u8>,
}

impl LogWriter {
    /// Starts a writer on a fresh file.
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        LogWriter {
            file,
            block_offset: 0,
            scratch: Vec::new(),
        }
    }

    /// Appends one record (fragmenting across blocks as needed).
    pub fn add_record(&mut self, data: &[u8]) -> Result<()> {
        self.scratch.clear();
        let mut left = data;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Pad the block tail with zeros and start a new block.
                if leftover > 0 {
                    self.scratch
                        .extend_from_slice(&[0u8; HEADER_SIZE][..leftover]);
                }
                self.block_offset = 0;
            }
            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = left.len().min(avail);
            let end = fragment_len == left.len();
            let ty = match (begin, end) {
                (true, true) => RecordType::Full,
                (true, false) => RecordType::First,
                (false, true) => RecordType::Last,
                (false, false) => RecordType::Middle,
            };
            self.emit_physical(ty, &left[..fragment_len]);
            left = &left[fragment_len..];
            begin = false;
            if end {
                break;
            }
        }
        // One write per logical record.
        let scratch = std::mem::take(&mut self.scratch);
        let result = self.file.append(&scratch);
        self.scratch = scratch;
        result?;
        Ok(())
    }

    /// Frames one physical fragment into the staging buffer.
    fn emit_physical(&mut self, ty: RecordType, data: &[u8]) {
        debug_assert!(data.len() <= 0xffff);
        let crc = crc32c::extend(crc32c::value(&[ty as u8]), data);
        let mut header = [0u8; HEADER_SIZE];
        header[..4].copy_from_slice(&crc32c::mask(crc).to_le_bytes());
        header[4..6].copy_from_slice(&(data.len() as u16).to_le_bytes());
        header[6] = ty as u8;
        self.scratch.extend_from_slice(&header);
        self.scratch.extend_from_slice(data);
        self.block_offset += HEADER_SIZE + data.len();
    }

    /// Flushes buffered bytes to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    /// Durably syncs the log.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        Ok(())
    }

    /// Bytes written so far.
    pub fn bytes_written(&self) -> u64 {
        self.file.bytes_written()
    }
}

/// Reads records back, skipping corrupt tails (crash recovery semantics:
/// a torn final record is expected and silently ends the log).
pub struct LogReader {
    data: Vec<u8>,
    pos: usize,
    /// Fragments of an in-progress logical record.
    scratch: Vec<u8>,
    /// Set when corruption (other than a clean EOF) was skipped.
    corruption_detected: bool,
    /// Count of physical records dropped for corruption; lets the logical
    /// layer notice a fragment went missing mid-record.
    corruptions_skipped: u64,
}

impl LogReader {
    /// Reads the entire log file into memory and prepares to iterate.
    pub fn new(file: &dyn RandomAccessFile) -> Result<Self> {
        let data = file.read_all().map_err(Error::from)?;
        Ok(LogReader {
            data,
            pos: 0,
            scratch: Vec::new(),
            corruption_detected: false,
            corruptions_skipped: 0,
        })
    }

    /// True if any mid-log corruption was skipped during reading.
    pub fn corruption_detected(&self) -> bool {
        self.corruption_detected
    }

    /// Returns the next logical record, or `None` at end of log.
    pub fn read_record(&mut self) -> Option<Vec<u8>> {
        self.scratch.clear();
        let mut in_fragmented = false;
        loop {
            let corruptions_before = self.corruptions_skipped;
            let (ty, payload) = self.read_physical()?;
            if self.corruptions_skipped != corruptions_before && in_fragmented {
                // A fragment of the in-progress record was lost to
                // corruption; splicing the remainder would fabricate a
                // record that was never written.
                self.scratch.clear();
                in_fragmented = false;
            }
            match ty {
                RecordType::Full => {
                    if in_fragmented {
                        // Unterminated FIRST: drop it.
                        self.corruption_detected = true;
                    }
                    return Some(payload);
                }
                RecordType::First => {
                    if in_fragmented {
                        self.corruption_detected = true;
                        self.scratch.clear();
                    }
                    self.scratch.extend_from_slice(&payload);
                    in_fragmented = true;
                }
                RecordType::Middle => {
                    if in_fragmented {
                        self.scratch.extend_from_slice(&payload);
                    } else {
                        self.corruption_detected = true;
                    }
                }
                RecordType::Last => {
                    if in_fragmented {
                        self.scratch.extend_from_slice(&payload);
                        return Some(std::mem::take(&mut self.scratch));
                    }
                    self.corruption_detected = true;
                }
            }
        }
    }

    /// Reads the next physical record, skipping block padding and torn
    /// tails. Returns `None` at end of file.
    fn read_physical(&mut self) -> Option<(RecordType, Vec<u8>)> {
        loop {
            let block_left = BLOCK_SIZE - (self.pos % BLOCK_SIZE);
            if block_left < HEADER_SIZE {
                // Block tail padding.
                self.pos += block_left;
                continue;
            }
            if self.pos + HEADER_SIZE > self.data.len() {
                return None; // clean EOF (possibly torn header)
            }
            let header = &self.data[self.pos..self.pos + HEADER_SIZE];
            let length = u16::from_le_bytes([header[4], header[5]]) as usize;
            let ty_byte = header[6];
            if ty_byte == 0 && length == 0 {
                // Zeroed padding / preallocated region: end of log.
                return None;
            }
            let start = self.pos + HEADER_SIZE;
            if start + length > self.data.len() {
                // Torn write at the tail.
                return None;
            }
            let stored_crc = crc32c::unmask(decode_fixed32(&header[..4]));
            let payload = &self.data[start..start + length];
            let actual_crc = crc32c::extend(crc32c::value(&[ty_byte]), payload);
            self.pos = start + length;
            if stored_crc != actual_crc {
                self.corruption_detected = true;
                self.corruptions_skipped += 1;
                continue;
            }
            match RecordType::from_u8(ty_byte) {
                Some(ty) => return Some((ty, payload.to_vec())),
                None => {
                    self.corruption_detected = true;
                    self.corruptions_skipped += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::env::{MemEnv, StorageEnv};
    use std::path::Path;

    fn write_records(env: &MemEnv, path: &str, records: &[Vec<u8>]) {
        let f = env.create_writable(Path::new(path)).unwrap();
        let mut w = LogWriter::new(f);
        for r in records {
            w.add_record(r).unwrap();
        }
        w.flush().unwrap();
    }

    fn read_records(env: &MemEnv, path: &str) -> (Vec<Vec<u8>>, bool) {
        let f = env.open_random_access(Path::new(path)).unwrap();
        let mut r = LogReader::new(f.as_ref()).unwrap();
        let mut out = Vec::new();
        while let Some(rec) = r.read_record() {
            out.push(rec);
        }
        (out, r.corruption_detected())
    }

    #[test]
    fn roundtrip_small_records() {
        let env = MemEnv::new();
        let records = vec![b"one".to_vec(), b"two".to_vec(), vec![], b"four".to_vec()];
        write_records(&env, "/log", &records);
        let (got, corrupt) = read_records(&env, "/log");
        assert_eq!(got, records);
        assert!(!corrupt);
    }

    #[test]
    fn roundtrip_records_spanning_blocks() {
        let env = MemEnv::new();
        // Records larger than one block force FIRST/MIDDLE/LAST chains.
        let records = vec![
            vec![1u8; 10],
            vec![2u8; BLOCK_SIZE],
            vec![3u8; 3 * BLOCK_SIZE + 17],
            vec![4u8; 5],
        ];
        write_records(&env, "/log", &records);
        let (got, corrupt) = read_records(&env, "/log");
        assert_eq!(got.len(), records.len());
        for (a, b) in got.iter().zip(&records) {
            assert_eq!(a, b);
        }
        assert!(!corrupt);
    }

    #[test]
    fn block_boundary_padding() {
        let env = MemEnv::new();
        // Record sized so the next header would not fit in the block.
        let first = vec![7u8; BLOCK_SIZE - HEADER_SIZE - 3];
        let records = vec![first, b"after-pad".to_vec()];
        write_records(&env, "/log", &records);
        let (got, corrupt) = read_records(&env, "/log");
        assert_eq!(got, records);
        assert!(!corrupt);
    }

    #[test]
    fn torn_tail_is_silent_eof() {
        let env = MemEnv::new();
        write_records(&env, "/log", &[b"complete".to_vec(), vec![9u8; 5000]]);
        let full = env
            .open_random_access(Path::new("/log"))
            .unwrap()
            .read_all()
            .unwrap();
        // Truncate mid-way through the second record.
        let torn = &full[..full.len() - 1000];
        let mut w = env.create_writable(Path::new("/torn")).unwrap();
        w.append(torn).unwrap();
        drop(w);
        let (got, _) = read_records(&env, "/torn");
        assert_eq!(got, vec![b"complete".to_vec()]);
    }

    #[test]
    fn corrupt_record_is_skipped_and_flagged() {
        let env = MemEnv::new();
        write_records(
            &env,
            "/log",
            &[b"first".to_vec(), b"second".to_vec(), b"third".to_vec()],
        );
        let mut full = env
            .open_random_access(Path::new("/log"))
            .unwrap()
            .read_all()
            .unwrap();
        // Corrupt the payload of the second record (header of rec2 starts
        // at HEADER_SIZE + 5).
        let idx = HEADER_SIZE + 5 + HEADER_SIZE + 2;
        full[idx] ^= 0xff;
        let mut w = env.create_writable(Path::new("/bad")).unwrap();
        w.append(&full).unwrap();
        drop(w);
        let (got, corrupt) = read_records(&env, "/bad");
        assert_eq!(got, vec![b"first".to_vec(), b"third".to_vec()]);
        assert!(corrupt);
    }

    #[test]
    fn empty_log_reads_nothing() {
        let env = MemEnv::new();
        write_records(&env, "/log", &[]);
        let (got, corrupt) = read_records(&env, "/log");
        assert!(got.is_empty());
        assert!(!corrupt);
    }
}
