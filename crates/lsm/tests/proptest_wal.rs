//! Property tests for the write-ahead log: arbitrary record sequences
//! round-trip; arbitrary truncation recovers a strict prefix; arbitrary
//! corruption never panics and never fabricates records.

use std::path::Path;

use lsm::wal::{LogReader, LogWriter};
use proptest::prelude::*;
use sstable::env::{MemEnv, StorageEnv};

fn write_log(env: &MemEnv, records: &[Vec<u8>]) -> Vec<u8> {
    let f = env.create_writable(Path::new("/log")).unwrap();
    let mut w = LogWriter::new(f);
    for r in records {
        w.add_record(r).unwrap();
    }
    w.flush().unwrap();
    env.open_random_access(Path::new("/log"))
        .unwrap()
        .read_all()
        .unwrap()
}

fn read_log(env: &MemEnv, bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut w = env.create_writable(Path::new("/replay")).unwrap();
    w.append(bytes).unwrap();
    drop(w);
    let f = env.open_random_access(Path::new("/replay")).unwrap();
    let mut r = LogReader::new(f.as_ref()).unwrap();
    let mut out = Vec::new();
    while let Some(rec) = r.read_record() {
        out.push(rec);
    }
    out
}

fn records_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        prop_oneof![
            // Mostly small records, occasionally block-spanning ones.
            4 => proptest::collection::vec(any::<u8>(), 0..300),
            1 => proptest::collection::vec(any::<u8>(), 30_000..40_000),
        ],
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn roundtrip(records in records_strategy()) {
        let env = MemEnv::new();
        let bytes = write_log(&env, &records);
        prop_assert_eq!(read_log(&env, &bytes), records);
    }

    /// Truncating anywhere yields a prefix of the original records (a
    /// torn tail must never produce a partial or reordered record).
    #[test]
    fn truncation_recovers_prefix(
        records in records_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let env = MemEnv::new();
        let bytes = write_log(&env, &records);
        let cut = cut.index(bytes.len() + 1);
        let got = read_log(&env, &bytes[..cut]);
        prop_assert!(got.len() <= records.len());
        for (g, r) in got.iter().zip(&records) {
            prop_assert_eq!(g, r, "recovered records must be an exact prefix");
        }
    }

    /// A single flipped byte never panics the reader, and every surviving
    /// record is one of the originals (CRC catches fabrications).
    #[test]
    fn corruption_never_fabricates(
        records in records_strategy(),
        flip in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let env = MemEnv::new();
        let mut bytes = write_log(&env, &records);
        let i = flip.index(bytes.len());
        bytes[i] ^= xor;
        let got = read_log(&env, &bytes);
        for g in &got {
            prop_assert!(
                records.iter().any(|r| r == g),
                "reader produced a record that was never written ({} bytes)",
                g.len()
            );
        }
    }
}
