//! Property tests for the compaction conflict checker: whatever sequence
//! of jobs is thrown at it, two jobs admitted at the same time must never
//! overlap in a way that could corrupt the tree.

use std::collections::HashSet;

use lsm::{ConflictChecker, JobShape};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct GenJob {
    level: usize,
    lo: u8,
    hi: u8,
    files: Vec<u64>,
}

fn job_strategy() -> impl Strategy<Value = GenJob> {
    (
        0usize..5,
        0u8..40,
        0u8..40,
        proptest::collection::vec(0u64..30, 1..4),
    )
        .prop_map(|(level, a, b, files)| GenJob {
            level,
            lo: a.min(b),
            hi: a.max(b),
            files,
        })
}

fn shape(j: &GenJob) -> JobShape {
    JobShape {
        level: j.level,
        smallest_user: vec![j.lo],
        largest_user: vec![j.hi],
        files: j.files.iter().copied().collect::<HashSet<u64>>(),
    }
}

fn ranges_overlap(a: &GenJob, b: &GenJob) -> bool {
    a.hi >= b.lo && b.hi >= a.lo
}

proptest! {
    /// Any two simultaneously admitted jobs are file-disjoint, and jobs at
    /// the same or adjacent levels have disjoint user-key ranges.
    #[test]
    fn admitted_jobs_never_conflict(jobs in proptest::collection::vec(job_strategy(), 1..24)) {
        let mut checker = ConflictChecker::new();
        let mut admitted: Vec<GenJob> = Vec::new();
        for job in &jobs {
            if checker.try_admit(shape(job)).is_some() {
                admitted.push(job.clone());
            }
        }
        for (i, a) in admitted.iter().enumerate() {
            for b in &admitted[i + 1..] {
                let shared_file = a.files.iter().any(|f| b.files.contains(f));
                prop_assert!(!shared_file, "admitted jobs share a file: {a:?} vs {b:?}");
                if a.level.abs_diff(b.level) <= 1 {
                    prop_assert!(
                        !ranges_overlap(a, b),
                        "same/adjacent-level jobs overlap: {a:?} vs {b:?}"
                    );
                }
            }
        }
    }

    /// Releasing an admitted job always unblocks an identical successor.
    #[test]
    fn release_unblocks_identical_job(job in job_strategy()) {
        let mut checker = ConflictChecker::new();
        let ticket = checker.try_admit(shape(&job)).expect("empty checker admits anything");
        // The same shape conflicts with itself while in flight (same files).
        prop_assert!(checker.try_admit(shape(&job)).is_none());
        checker.release(ticket);
        prop_assert!(checker.try_admit(shape(&job)).is_some());
        prop_assert_eq!(checker.in_flight(), 1);
    }

    /// Far-apart levels with overlapping ranges are always admissible as
    /// long as their file sets are disjoint.
    #[test]
    fn distant_levels_coexist(lo in 0u8..40, hi in 0u8..40) {
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let mut checker = ConflictChecker::new();
        let a = GenJob { level: 0, lo, hi, files: vec![1] };
        let b = GenJob { level: 3, lo, hi, files: vec![2] };
        prop_assert!(checker.try_admit(shape(&a)).is_some());
        prop_assert!(
            checker.try_admit(shape(&b)).is_some(),
            "levels 0 and 3 touch disjoint level pairs"
        );
    }
}
