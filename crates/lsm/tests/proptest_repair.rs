//! Property tests for `lsm::repair` over byte-corrupted SSTables.
//!
//! For arbitrary flip positions inside arbitrary table files, `repair_db`
//! must either quarantine the damaged table or keep a readable one — and
//! the reopened store must never return a value that was never written.
//! Corruption may surface as a checksum error or a missing key, but never
//! as silent garbage and never as a panic.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

use lsm::filename::{parse_file_name, FileType};
use lsm::{repair_db, Db, Options};
use proptest::prelude::*;
use sstable::env::{MemEnv, StorageEnv};

const KEYS: u64 = 600;

fn mem_options(env: &Arc<MemEnv>) -> Options {
    Options {
        env: env.clone(),
        // Small, uncompressed files so a single load produces several
        // tables (snappy would fold the whole load into one output).
        compression: sstable::format::CompressionType::None,
        write_buffer_size: 8 << 10,
        max_file_size: 8 << 10,
        slowdown_sleep: false,
        ..Default::default()
    }
}

fn key(i: u64) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

fn value(i: u64) -> Vec<u8> {
    format!("value-{i:06}-{:x>40}", "").into_bytes()
}

/// Builds a store whose contents are fully known, closes it, and returns
/// the expected key→value map.
fn build_store(env: &Arc<MemEnv>, dir: &Path) -> HashMap<Vec<u8>, Vec<u8>> {
    let db = Db::open(dir, mem_options(env)).unwrap();
    let mut expected = HashMap::new();
    for i in 0..KEYS {
        db.put(&key(i), &value(i)).unwrap();
        expected.insert(key(i), value(i));
    }
    // A few tombstones so repair must preserve deletions too.
    for i in (0..KEYS).step_by(41) {
        db.delete(&key(i)).unwrap();
        expected.remove(&key(i));
    }
    db.flush().unwrap();
    db.wait_for_background_quiescence();
    drop(db);
    expected
}

fn table_files(env: &Arc<MemEnv>, dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = env
        .list_dir(dir)
        .unwrap()
        .into_iter()
        .filter(|n| matches!(parse_file_name(n), Some(FileType::Table(_))))
        .collect();
    names.sort();
    names
}

fn destroy_metadata(env: &Arc<MemEnv>, dir: &Path) {
    for name in env.list_dir(dir).unwrap() {
        match parse_file_name(&name) {
            Some(FileType::Manifest(_)) | Some(FileType::Current) => {
                env.remove_file(&dir.join(&name)).unwrap();
            }
            _ => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary byte flips in arbitrary tables: repair quarantines or
    /// keeps each table, the store reopens, and every readable key holds
    /// exactly the value that was written for it.
    #[test]
    fn repair_survives_byte_corruption(
        flips in proptest::collection::vec(
            (any::<prop::sample::Index>(), any::<prop::sample::Index>(), 1u8..=255),
            1..6,
        ),
    ) {
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        let expected = build_store(&env, dir);

        let tables = table_files(&env, dir);
        prop_assert!(tables.len() >= 2, "load should span several tables, got {:?}", tables);

        // Flip bytes at arbitrary offsets in arbitrary tables.
        for (which, offset, xor) in &flips {
            let path = dir.join(&tables[which.index(tables.len())]);
            let mut bytes = env.open_random_access(&path).unwrap().read_all().unwrap();
            let i = offset.index(bytes.len());
            bytes[i] ^= xor;
            let mut w = env.create_writable(&path).unwrap();
            w.append(&bytes).unwrap();
            w.sync().unwrap();
        }
        destroy_metadata(&env, dir);

        let report = repair_db(dir, &mem_options(&env)).unwrap();
        prop_assert!(
            report.quarantine_failures.is_empty(),
            "quarantine must not fail in MemEnv: {report:?}"
        );
        prop_assert_eq!(
            report.tables_lost + report.tables_recovered,
            tables.len(),
            "every table is either kept or quarantined: {:?}", report
        );

        let db = Db::open(dir, mem_options(&env)).unwrap();

        // Full scan: may legitimately fail with a checksum error (repair's
        // metadata pass cannot see data-block damage), but every row it
        // does return must be a value we actually wrote.
        if let Ok(rows) = db.scan(b"", None, usize::MAX) {
            for (k, v) in rows {
                prop_assert_eq!(
                    expected.get(&k),
                    Some(&v),
                    "scan returned a never-written row"
                );
            }
        }

        // Point reads: correct value, missing (quarantined or tombstoned),
        // or a detected error — never a different value.
        for i in (0..KEYS).step_by(17) {
            if let Ok(Some(v)) = db.get(&key(i)) {
                prop_assert_eq!(
                    Some(&v),
                    expected.get(&key(i)),
                    "get returned a never-written value for key {}", i
                );
            }
        }
    }

    /// With no corruption at all, repair after metadata loss is lossless
    /// for flushed data: every expected key survives with its exact value.
    #[test]
    fn repair_is_lossless_without_corruption(seed_step in 1usize..7) {
        let env = Arc::new(MemEnv::new());
        let dir = Path::new("/db");
        let expected = build_store(&env, dir);
        destroy_metadata(&env, dir);

        let report = repair_db(dir, &mem_options(&env)).unwrap();
        prop_assert_eq!(report.tables_lost, 0, "{:?}", report);

        let db = Db::open(dir, mem_options(&env)).unwrap();
        for i in (0..KEYS).step_by(seed_step) {
            prop_assert_eq!(
                db.get(&key(i)).unwrap().as_ref(),
                expected.get(&key(i)),
                "key {} after lossless repair", i
            );
        }
    }
}
