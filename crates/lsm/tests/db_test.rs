//! End-to-end tests of the store through its public API, run against the
//! in-memory environment for hermeticity and speed.

use std::sync::Arc;

use lsm::{Db, Options, WriteBatch, WriteOptions};
use sstable::env::{MemEnv, StorageEnv};

fn mem_options() -> (Arc<MemEnv>, Options) {
    let env = Arc::new(MemEnv::new());
    let options = Options {
        env: Arc::clone(&env) as Arc<dyn StorageEnv>,
        slowdown_sleep: false,
        ..Default::default()
    };
    (env, options)
}

/// Small-buffer options so flushes and compactions trigger quickly.
fn small_options() -> (Arc<MemEnv>, Options) {
    let (env, mut options) = mem_options();
    options.write_buffer_size = 64 << 10;
    options.max_file_size = 32 << 10;
    options.level1_max_bytes = 128 << 10;
    (env, options)
}

#[test]
fn put_get_delete_roundtrip() {
    let (_env, options) = mem_options();
    let db = Db::open("/db", options).unwrap();
    assert_eq!(db.get(b"missing").unwrap(), None);
    db.put(b"alpha", b"1").unwrap();
    db.put(b"beta", b"2").unwrap();
    assert_eq!(db.get(b"alpha").unwrap(), Some(b"1".to_vec()));
    assert_eq!(db.get(b"beta").unwrap(), Some(b"2".to_vec()));
    db.delete(b"alpha").unwrap();
    assert_eq!(db.get(b"alpha").unwrap(), None);
    assert_eq!(db.get(b"beta").unwrap(), Some(b"2".to_vec()));
}

#[test]
fn overwrites_return_latest() {
    let (_env, options) = mem_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..100 {
        db.put(b"key", format!("v{i}").as_bytes()).unwrap();
    }
    assert_eq!(db.get(b"key").unwrap(), Some(b"v99".to_vec()));
}

#[test]
fn batch_is_atomic_and_ordered() {
    let (_env, options) = mem_options();
    let db = Db::open("/db", options).unwrap();
    let mut batch = WriteBatch::new();
    batch.put(b"a", b"1");
    batch.put(b"b", b"2");
    batch.delete(b"a");
    db.write(batch, WriteOptions::default()).unwrap();
    assert_eq!(db.get(b"a").unwrap(), None);
    assert_eq!(db.get(b"b").unwrap(), Some(b"2".to_vec()));
}

#[test]
fn reads_hit_sstables_after_flush() {
    let (_env, options) = mem_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..500 {
        db.put(
            format!("key{i:04}").as_bytes(),
            format!("val{i}").as_bytes(),
        )
        .unwrap();
    }
    db.flush().unwrap();
    let counts = db.level_file_counts();
    assert!(counts[0] >= 1, "flush should create an L0 file: {counts:?}");
    for i in (0..500).step_by(17) {
        assert_eq!(
            db.get(format!("key{i:04}").as_bytes()).unwrap(),
            Some(format!("val{i}").into_bytes()),
            "key{i:04}"
        );
    }
    assert_eq!(db.get(b"key9999").unwrap(), None);
}

#[test]
fn deletes_survive_flush() {
    let (_env, options) = mem_options();
    let db = Db::open("/db", options).unwrap();
    db.put(b"k", b"v").unwrap();
    db.flush().unwrap();
    db.delete(b"k").unwrap();
    db.flush().unwrap();
    assert_eq!(db.get(b"k").unwrap(), None);
}

#[test]
fn recovery_from_wal() {
    let (env, options) = mem_options();
    {
        let db = Db::open("/db", options.clone()).unwrap();
        db.put(b"persisted", b"yes").unwrap();
        db.put(b"deleted", b"no").unwrap();
        db.delete(b"deleted").unwrap();
        // Dropped without flush: data only in the WAL.
    }
    let options2 = Options {
        env: Arc::clone(&env) as Arc<dyn StorageEnv>,
        slowdown_sleep: false,
        ..Default::default()
    };
    let db = Db::open("/db", options2).unwrap();
    assert_eq!(db.get(b"persisted").unwrap(), Some(b"yes".to_vec()));
    assert_eq!(db.get(b"deleted").unwrap(), None);
    let _ = options;
}

#[test]
fn recovery_from_manifest_and_tables() {
    let (env, options) = mem_options();
    {
        let db = Db::open("/db", options.clone()).unwrap();
        for i in 0..200 {
            db.put(format!("key{i:04}").as_bytes(), b"stable").unwrap();
        }
        db.flush().unwrap();
        db.put(b"in-wal-only", b"fresh").unwrap();
    }
    let options2 = Options {
        env: Arc::clone(&env) as Arc<dyn StorageEnv>,
        slowdown_sleep: false,
        ..Default::default()
    };
    let db = Db::open("/db", options2).unwrap();
    assert_eq!(db.get(b"key0042").unwrap(), Some(b"stable".to_vec()));
    assert_eq!(db.get(b"in-wal-only").unwrap(), Some(b"fresh".to_vec()));
    let _ = options;
}

#[test]
fn compactions_triggered_and_data_survives() {
    let (_env, options) = small_options();
    let db = Db::open("/db", options).unwrap();
    // Write enough to force several flushes and at least one compaction.
    let value = vec![0xabu8; 512];
    for i in 0..2000u32 {
        db.put(format!("key{:06}", i % 700).as_bytes(), &value)
            .unwrap();
    }
    db.flush().unwrap();
    db.wait_for_background_quiescence();
    let stats = db.stats();
    assert!(stats.flushes >= 2, "expected multiple flushes: {stats:?}");
    assert!(
        stats.engine_compactions + stats.trivial_moves + stats.sw_fallback_compactions >= 1,
        "expected at least one compaction: {stats:?}"
    );
    // All 700 distinct keys must read back the last written value.
    for i in 0..700u32 {
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap().as_deref(),
            Some(&value[..]),
            "key{i:06}"
        );
    }
    // Deeper levels got populated.
    let counts = db.level_file_counts();
    assert!(counts.iter().skip(1).any(|&c| c > 0), "levels: {counts:?}");
}

#[test]
fn snapshot_reads_are_frozen() {
    let (_env, options) = mem_options();
    let db = Db::open("/db", options).unwrap();
    db.put(b"k", b"old").unwrap();
    let snap = db.snapshot();
    db.put(b"k", b"new").unwrap();
    db.delete(b"gone-later").unwrap();
    let read_opts = lsm::ReadOptions {
        snapshot: Some(snap.sequence),
    };
    assert_eq!(db.get_with(b"k", read_opts).unwrap(), Some(b"old".to_vec()));
    assert_eq!(db.get(b"k").unwrap(), Some(b"new".to_vec()));
}

#[test]
fn snapshot_protects_entries_across_flush() {
    let (_env, options) = mem_options();
    let db = Db::open("/db", options).unwrap();
    db.put(b"k", b"v1").unwrap();
    let snap = db.snapshot();
    db.put(b"k", b"v2").unwrap();
    db.flush().unwrap();
    db.wait_for_background_quiescence();
    let read_opts = lsm::ReadOptions {
        snapshot: Some(snap.sequence),
    };
    assert_eq!(db.get_with(b"k", read_opts).unwrap(), Some(b"v1".to_vec()));
}

#[test]
fn scan_returns_live_range_in_order() {
    let (_env, options) = small_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..300u32 {
        db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    db.delete(b"key0005").unwrap();
    db.put(b"key0006", b"updated").unwrap();
    db.flush().unwrap();
    db.wait_for_background_quiescence();

    let got = db.scan(b"key0003", Some(b"key0009"), 100).unwrap();
    let keys: Vec<String> = got
        .iter()
        .map(|(k, _)| String::from_utf8_lossy(k).into_owned())
        .collect();
    assert_eq!(
        keys,
        ["key0003", "key0004", "key0006", "key0007", "key0008"]
    );
    let v6 = &got[2].1;
    assert_eq!(v6, b"updated");

    // Limit applies.
    let got = db.scan(b"key0000", None, 10).unwrap();
    assert_eq!(got.len(), 10);
}

#[test]
fn sequential_fill_then_read_all() {
    let (_env, options) = small_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..3000u32 {
        db.put(format!("{i:08}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    db.flush().unwrap();
    db.wait_for_background_quiescence();
    for i in (0..3000u32).step_by(101) {
        assert_eq!(
            db.get(format!("{i:08}").as_bytes()).unwrap(),
            Some(i.to_le_bytes().to_vec())
        );
    }
}

#[test]
fn stats_accumulate() {
    let (_env, options) = small_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..1000u32 {
        db.put(format!("key{i:06}").as_bytes(), &[1u8; 256])
            .unwrap();
    }
    db.flush().unwrap();
    db.wait_for_background_quiescence();
    let s = db.stats();
    assert!(s.flushes > 0);
    assert_eq!(db.engine_name(), "cpu");
}

#[test]
fn block_cache_serves_repeated_reads() {
    let (_env, options) = small_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..2000u32 {
        db.put(format!("key{i:05}").as_bytes(), &[7u8; 200])
            .unwrap();
    }
    db.flush().unwrap();
    db.wait_for_background_quiescence();
    // Repeated point reads of the same keys should hit the shared cache.
    for _ in 0..5 {
        for i in (0..2000u32).step_by(100) {
            db.get(format!("key{i:05}").as_bytes()).unwrap().unwrap();
        }
    }
    let stats = db.stats();
    assert!(stats.block_cache_hits > 0, "expected cache hits: {stats:?}");
    assert!(stats.block_cache_hits + stats.block_cache_misses > 0);
}

#[test]
fn disabling_block_cache_works() {
    let (_env, mut options) = small_options();
    options.block_cache_bytes = None;
    let db = Db::open("/db", options).unwrap();
    for i in 0..500u32 {
        db.put(format!("key{i:05}").as_bytes(), b"v").unwrap();
    }
    db.flush().unwrap();
    for i in (0..500u32).step_by(50) {
        assert!(db.get(format!("key{i:05}").as_bytes()).unwrap().is_some());
    }
    let stats = db.stats();
    assert_eq!(stats.block_cache_hits + stats.block_cache_misses, 0);
}

#[test]
fn compact_all_drains_pending_work() {
    let (_env, options) = small_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..3000u32 {
        db.put(format!("key{i:06}").as_bytes(), &[9u8; 300])
            .unwrap();
    }
    db.compact_all().unwrap();
    let counts = db.level_file_counts();
    // After a full manual compaction nothing is left over budget and the
    // data has moved below L0.
    assert_eq!(counts[0], 0, "L0 should be drained: {counts:?}");
    for i in (0..3000u32).step_by(101) {
        assert!(db.get(format!("key{i:06}").as_bytes()).unwrap().is_some());
    }
}

#[test]
fn streaming_iterator_walks_live_keys() {
    let (_env, options) = small_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..500u32 {
        db.put(format!("key{i:04}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    db.delete(b"key0010").unwrap();
    db.put(b"key0011", b"updated").unwrap();
    db.flush().unwrap();
    db.wait_for_background_quiescence();

    let mut it = db.iter().unwrap();
    it.seek_to_first();
    assert!(it.valid());
    assert_eq!(it.key(), b"key0000");
    let mut count = 0;
    let mut saw_11_updated = false;
    while it.valid() {
        assert_ne!(it.key(), b"key0010", "deleted key must not appear");
        if it.key() == b"key0011" {
            assert_eq!(it.value(), b"updated");
            saw_11_updated = true;
        }
        count += 1;
        it.next();
    }
    assert_eq!(count, 499);
    assert!(saw_11_updated);
    it.status().unwrap();

    // Seek semantics.
    let mut it = db.iter().unwrap();
    it.seek(b"key0123");
    assert_eq!(it.key(), b"key0123");
    it.seek(b"key0010"); // deleted: lands on successor
    assert_eq!(it.key(), b"key0011");
    it.seek(b"zzz");
    assert!(!it.valid());
}

#[test]
fn iterator_is_snapshot_consistent() {
    let (_env, options) = mem_options();
    let db = Db::open("/db", options).unwrap();
    db.put(b"a", b"1").unwrap();
    db.put(b"b", b"2").unwrap();
    let mut it = db.iter().unwrap();
    // Writes after iterator creation are invisible to it.
    db.put(b"c", b"3").unwrap();
    db.delete(b"a").unwrap();
    it.seek_to_first();
    let mut keys = Vec::new();
    while it.valid() {
        keys.push(it.key().to_vec());
        it.next();
    }
    assert_eq!(keys, vec![b"a".to_vec(), b"b".to_vec()]);
}

/// A storage env whose writes carry latency, giving group commit a
/// realistic window in which concurrent writers can queue up.
struct SlowWriteEnv {
    inner: Arc<MemEnv>,
    write_delay: std::time::Duration,
}

struct SlowWritable {
    inner: Box<dyn sstable::env::WritableFile>,
    delay: std::time::Duration,
}

impl sstable::env::WritableFile for SlowWritable {
    fn append(&mut self, data: &[u8]) -> sstable::Result<()> {
        std::thread::sleep(self.delay);
        self.inner.append(data)
    }
    fn flush(&mut self) -> sstable::Result<()> {
        self.inner.flush()
    }
    fn sync(&mut self) -> sstable::Result<()> {
        self.inner.sync()
    }
    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

impl StorageEnv for SlowWriteEnv {
    fn open_random_access(
        &self,
        path: &std::path::Path,
    ) -> sstable::Result<Box<dyn sstable::env::RandomAccessFile>> {
        self.inner.open_random_access(path)
    }
    fn create_writable(
        &self,
        path: &std::path::Path,
    ) -> sstable::Result<Box<dyn sstable::env::WritableFile>> {
        Ok(Box::new(SlowWritable {
            inner: self.inner.create_writable(path)?,
            delay: self.write_delay,
        }))
    }
    fn remove_file(&self, path: &std::path::Path) -> sstable::Result<()> {
        self.inner.remove_file(path)
    }
    fn create_dir_all(&self, path: &std::path::Path) -> sstable::Result<()> {
        self.inner.create_dir_all(path)
    }
    fn list_dir(&self, path: &std::path::Path) -> sstable::Result<Vec<String>> {
        self.inner.list_dir(path)
    }
    fn file_exists(&self, path: &std::path::Path) -> bool {
        self.inner.file_exists(path)
    }
    fn rename(&self, from: &std::path::Path, to: &std::path::Path) -> sstable::Result<()> {
        self.inner.rename(from, to)
    }
}

#[test]
fn group_commit_batches_concurrent_writers() {
    // 20 µs per WAL write gives followers a window to queue.
    let env = Arc::new(SlowWriteEnv {
        inner: Arc::new(MemEnv::new()),
        write_delay: std::time::Duration::from_micros(20),
    });
    let options = Options {
        env: env as Arc<dyn StorageEnv>,
        slowdown_sleep: false,
        ..Default::default()
    };
    let db = std::sync::Arc::new(Db::open("/db", options).unwrap());
    const THREADS: u64 = 8;
    const OPS: u64 = 500;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = std::sync::Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    db.put(format!("t{t}-{i:05}").as_bytes(), b"value").unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.grouped_writes, THREADS * OPS, "{stats:?}");
    assert!(
        stats.group_commits < stats.grouped_writes,
        "expected some grouping: {} commits for {} writes",
        stats.group_commits,
        stats.grouped_writes
    );
    // Everything readable.
    for t in 0..THREADS {
        for i in (0..OPS).step_by(199) {
            assert!(db.get(format!("t{t}-{i:05}").as_bytes()).unwrap().is_some());
        }
    }
}

#[test]
fn grouped_writes_assign_disjoint_sequences() {
    // Interleaved writers must never clobber each other even under heavy
    // overwrite of the same keys.
    let (_env, options) = mem_options();
    let db = std::sync::Arc::new(Db::open("/db", options).unwrap());
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let db = std::sync::Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..1_000u64 {
                    db.put(b"shared", format!("t{t}-i{i}").as_bytes()).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Final value must be one thread's final write.
    let v = db.get(b"shared").unwrap().unwrap();
    let s = String::from_utf8(v).unwrap();
    assert!(s.ends_with("-i999"), "final value {s}");
}

#[test]
fn metrics_json_property_round_trips_with_level_gauges() {
    let (_env, options) = small_options();
    let db = Db::open("/db", options).unwrap();
    for i in 0..2_000u64 {
        db.put(format!("k{i:06}").as_bytes(), &[b'v'; 128]).unwrap();
    }
    db.flush().unwrap();
    db.wait_for_background_quiescence();

    let json = db.property("lsm.metrics-json").unwrap();
    let doc = obs::json::parse(&json).expect("lsm.metrics-json must be valid JSON");
    let gauges = doc
        .get("gauges")
        .and_then(obs::json::Value::as_object)
        .unwrap();

    // Every level's gauge is present under its literal `<N>` name and
    // matches the live `lsm.num-files-at-levelN` property.
    let mut total = 0u64;
    for level in 0..7 {
        let name = format!("lsm.num-files-at-level<{level}>");
        let from_json = gauges
            .get(&name)
            .and_then(obs::json::Value::as_u64)
            .unwrap_or_else(|| panic!("missing gauge {name}"));
        let from_property: u64 = db
            .property(&format!("lsm.num-files-at-level{level}"))
            .unwrap()
            .parse()
            .unwrap();
        assert_eq!(
            from_json, from_property,
            "gauge {name} must track the property"
        );
        total += from_json;
    }
    assert!(total > 0, "flushed data must appear in some level's gauge");
}

#[test]
fn max_group_commit_bytes_is_honored() {
    // With a tiny cap every batch commits alone: grouped_writes stays
    // equal to group_commits (no multi-batch groups).
    let (_env, mut options) = mem_options();
    options.max_group_commit_bytes = 1;
    let db = Arc::new(Db::open("/db", options).unwrap());
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..200u64 {
                    db.put(format!("k{t}-{i}").as_bytes(), b"v").unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = db.stats();
    assert_eq!(
        stats.grouped_writes, stats.group_commits,
        "a 1-byte group cap must commit exactly one batch per group"
    );
    assert_eq!(stats.group_commits, 800, "one commit per write");
}
