//! Property test: `DbIter` must agree with a `BTreeMap` model of the
//! live contents under arbitrary put/delete/flush sequences, both for
//! full scans and for seeks, at snapshots taken mid-stream (so the
//! iterator's sequence filter and tombstone-skip paths are exercised
//! against versions buried at different depths of the store).

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm::{Db, Options, ReadOptions};
use proptest::prelude::*;
use sstable::env::{MemEnv, StorageEnv};

#[derive(Debug, Clone)]
struct Op {
    key_id: u8,
    delete: bool,
    value: Vec<u8>,
    /// Flush (and settle compactions) after this op when < 40 (~1/6).
    flush: u8,
    /// Take a snapshot after this op when < 40 (~1/6).
    snap: u8,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            0u8..24,
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..24),
            any::<u8>(),
            any::<u8>(),
        )
            .prop_map(|(key_id, delete, value, flush, snap)| Op {
                key_id,
                delete,
                value,
                flush,
                snap,
            }),
        1..120,
    )
}

fn user_key(id: u8) -> Vec<u8> {
    format!("k{id:03}").into_bytes()
}

/// Walks `it` from its current position and compares it, entry by
/// entry, against `expected` (an ordered list of key/value pairs).
fn assert_tail_matches(
    it: &mut lsm::DbIter,
    expected: &mut dyn Iterator<Item = (&Vec<u8>, &Vec<u8>)>,
) {
    for (mk, mv) in expected {
        assert!(it.valid(), "iterator ended before model key {mk:?}");
        assert_eq!(it.key(), mk.as_slice());
        assert_eq!(it.value(), mv.as_slice());
        it.next();
    }
    assert!(!it.valid(), "iterator has an extra key past the model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn db_iter_matches_btreemap_model(
        ops in ops(),
        probes in proptest::collection::vec(0u8..26, 1..6),
        // Exercise the sharded memtable's merged-snapshot iteration at
        // degenerate (1), odd (3), and default-ish (8) shard counts.
        shards in prop_oneof![Just(1usize), Just(3usize), Just(8usize)],
        // With key-value separation on, values over 12 bytes live in the
        // value log and the iterator dereferences pointers as it walks —
        // the model must not be able to tell the difference.
        separation in any::<bool>(),
    ) {
        let env = Arc::new(MemEnv::new());
        let options = Options {
            env: Arc::clone(&env) as Arc<dyn StorageEnv>,
            // Small budgets so flushes spill to L0 and compactions move
            // versions down-level mid-test.
            write_buffer_size: 8 << 10,
            max_file_size: 4 << 10,
            level1_max_bytes: 16 << 10,
            slowdown_sleep: false,
            memtable_shards: shards,
            value_log_threshold_bytes: if separation { Some(12) } else { None },
            value_log_segment_bytes: 2 << 10,
            ..Default::default()
        };
        let db = Db::open("/db", options).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // (snapshot guard, model frozen at the same instant)
        let mut frozen = Vec::new();

        for op in &ops {
            let k = user_key(op.key_id);
            if op.delete {
                db.delete(&k).unwrap();
                model.remove(&k);
            } else {
                db.put(&k, &op.value).unwrap();
                model.insert(k, op.value.clone());
            }
            if op.flush < 40 {
                db.flush().unwrap();
                db.wait_for_background_quiescence();
            }
            if op.snap < 40 {
                frozen.push((db.snapshot(), model.clone()));
            }
        }
        // The latest state is one more "snapshot".
        frozen.push((db.snapshot(), model.clone()));

        for (snap, model) in &frozen {
            let read = ReadOptions { snapshot: Some(snap.sequence) };

            // Full scan reproduces the model in order.
            let mut it = db.iter_with(read).unwrap();
            it.seek_to_first();
            assert_tail_matches(&mut it, &mut model.iter());
            it.status().unwrap();

            // Seeks land on the first model key >= probe and the walk
            // from there matches the model's tail.
            for &p in &probes {
                let pk = user_key(p);
                let mut it = db.iter_with(read).unwrap();
                it.seek(&pk);
                assert_tail_matches(
                    &mut it,
                    &mut model.range(pk.clone()..),
                );
            }
        }
    }
}
