//! Property tests for the skiplist memtable: it must agree with a
//! reference `BTreeMap` keyed by (user key, reverse sequence) under
//! arbitrary insert sequences, for point lookups at arbitrary snapshots
//! and for full iteration order.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm::memtable::{MemGet, MemTable};
use proptest::prelude::*;
use sstable::comparator::InternalKeyComparator;
use sstable::ikey::{parse_internal_key, LookupKey, ValueType};
use sstable::iterator::InternalIterator;

#[derive(Debug, Clone)]
struct Ins {
    key_id: u8,
    delete: bool,
    value: Vec<u8>,
}

fn inserts() -> impl Strategy<Value = Vec<Ins>> {
    proptest::collection::vec(
        (
            0u8..20,
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..40),
        )
            .prop_map(|(key_id, delete, value)| Ins {
                key_id,
                delete,
                value,
            }),
        1..200,
    )
}

fn user_key(id: u8) -> Vec<u8> {
    format!("key{id:03}").into_bytes()
}

/// history[key] = Vec<(seq, Option<value>)>, newest last.
type History = BTreeMap<Vec<u8>, Vec<(u64, Option<Vec<u8>>)>>;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Point lookups at every snapshot agree with the reference history.
    #[test]
    fn get_matches_reference(ops in inserts(), probe_seqs in proptest::collection::vec(0u64..260, 1..12)) {
        let mem = MemTable::new(InternalKeyComparator::default());
        let mut history: History = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            let seq = i as u64 + 1;
            let uk = user_key(op.key_id);
            if op.delete {
                mem.add(seq, ValueType::Deletion, &uk, &[]);
                history.entry(uk).or_default().push((seq, None));
            } else {
                mem.add(seq, ValueType::Value, &uk, &op.value);
                history.entry(uk).or_default().push((seq, Some(op.value.clone())));
            }
        }

        for &snap in &probe_seqs {
            for id in 0u8..20 {
                let uk = user_key(id);
                let expected = history
                    .get(&uk)
                    .and_then(|h| h.iter().rev().find(|(s, _)| *s <= snap))
                    .map(|(_, v)| v.clone());
                let got = mem.get(&LookupKey::new(&uk, snap));
                match (expected, got) {
                    (None, MemGet::NotFound) => {}
                    (Some(None), MemGet::Deleted) => {}
                    (Some(Some(v)), MemGet::Value(g)) => prop_assert_eq!(v, g),
                    (e, g) => prop_assert!(
                        false,
                        "key {id} snap {snap}: expected {e:?}, got {g:?}"
                    ),
                }
            }
        }
    }

    /// Iteration yields internal keys in exact comparator order, covering
    /// every inserted entry.
    #[test]
    fn iteration_is_sorted_and_complete(ops in inserts()) {
        let mem = MemTable::new(InternalKeyComparator::default());
        for (i, op) in ops.iter().enumerate() {
            let ty = if op.delete { ValueType::Deletion } else { ValueType::Value };
            mem.add(i as u64 + 1, ty, &user_key(op.key_id), &op.value);
        }
        let mem = Arc::new(mem);
        let mut it = mem.iter();
        it.seek_to_first();
        let mut count = 0usize;
        let mut last: Option<(Vec<u8>, u64)> = None;
        while it.valid() {
            let p = parse_internal_key(it.key()).unwrap();
            if let Some((lk, ls)) = &last {
                // user key ascending; same user key -> seq descending.
                let cur = (p.user_key.to_vec(), p.sequence);
                prop_assert!(
                    lk < &cur.0 || (lk == &cur.0 && *ls > cur.1),
                    "order violated: ({lk:?},{ls}) then {cur:?}"
                );
            }
            last = Some((p.user_key.to_vec(), p.sequence));
            count += 1;
            it.next();
        }
        prop_assert_eq!(count, ops.len());
    }

    /// collect_range returns exactly the entries inside the bounds.
    #[test]
    fn collect_range_respects_bounds(
        ops in inserts(),
        lo in 0u8..20,
        span in 1u8..10,
    ) {
        let mem = MemTable::new(InternalKeyComparator::default());
        for (i, op) in ops.iter().enumerate() {
            mem.add(i as u64 + 1, ValueType::Value, &user_key(op.key_id), &op.value);
        }
        let start = user_key(lo);
        let end = user_key(lo.saturating_add(span));
        let got = mem.collect_range(&start, Some(&end));
        let expected = ops
            .iter()
            .filter(|op| {
                let k = user_key(op.key_id);
                k >= start && k < end
            })
            .count();
        prop_assert_eq!(got.len(), expected);
        for (ik, _) in &got {
            let p = parse_internal_key(ik).unwrap();
            prop_assert!(p.user_key >= &start[..] && p.user_key < &end[..]);
        }
    }
}
