//! Property tests for value-log GC: collecting the log must never change
//! what readers see — in particular it must never resurrect a deleted or
//! overwritten value — under arbitrary put/delete/flush/GC interleavings,
//! checked against a `BTreeMap` model. Tiny segments force rotation every
//! few large values, so GC always has sealed segments to chew on, and a
//! reopen at the end drives the recovered store through the same checks.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm::{Db, Options};
use proptest::prelude::*;
use sstable::env::{MemEnv, StorageEnv};

#[derive(Debug, Clone)]
struct Op {
    key_id: u8,
    delete: bool,
    /// Value goes to the value log (above threshold) when set.
    large: bool,
    /// Fill byte, so every generation of a key is distinguishable.
    fill: u8,
    /// Flush (and settle compactions) after this op when < 40 (~1/6).
    flush: u8,
    /// Run a GC pass after this op when < 60 (~1/4).
    gc: u8,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (
            (0u8..16, any::<bool>(), any::<bool>()),
            (any::<u8>(), any::<u8>(), any::<u8>()),
        )
            .prop_map(|((key_id, delete, large), (fill, flush, gc))| Op {
                key_id,
                delete,
                large,
                fill,
                flush,
                gc,
            }),
        1..100,
    )
}

fn user_key(id: u8) -> Vec<u8> {
    format!("k{id:03}").into_bytes()
}

fn value(op: &Op) -> Vec<u8> {
    // 200 bytes clears the 64-byte threshold; 8 stays inline. The fill
    // byte and key id make each generation unique, so a resurrected old
    // generation cannot masquerade as the live one.
    let len = if op.large { 200 } else { 8 };
    let mut v = vec![op.fill; len];
    v[0] = op.key_id;
    v
}

fn vlog_options(env: &Arc<MemEnv>) -> Options {
    Options {
        env: Arc::clone(env) as Arc<dyn StorageEnv>,
        write_buffer_size: 8 << 10,
        max_file_size: 4 << 10,
        level1_max_bytes: 16 << 10,
        slowdown_sleep: false,
        value_log_threshold_bytes: Some(64),
        // ~5 large values per segment: rotation and sealed segments are
        // the common case, not the edge case.
        value_log_segment_bytes: 1 << 10,
        ..Default::default()
    }
}

fn check_against_model(db: &Db, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    for id in 0u8..16 {
        let k = user_key(id);
        assert_eq!(
            db.get(&k).unwrap(),
            model.get(&k).cloned(),
            "key {id}: store disagrees with model"
        );
    }
    let scanned = db.scan(b"", None, usize::MAX).unwrap();
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(scanned, expected, "scan disagrees with model");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn gc_never_resurrects_or_loses_values(ops in ops()) {
        let env = Arc::new(MemEnv::new());
        let db = Db::open("/db", vlog_options(&env)).unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();

        for op in &ops {
            let k = user_key(op.key_id);
            if op.delete {
                db.delete(&k).unwrap();
                model.remove(&k);
            } else {
                let v = value(op);
                db.put(&k, &v).unwrap();
                model.insert(k, v);
            }
            if op.flush < 40 {
                db.flush().unwrap();
                db.wait_for_background_quiescence();
            }
            if op.gc < 60 {
                let report = db.collect_value_log().unwrap();
                // No snapshots are registered, so nothing may defer.
                prop_assert_eq!(report.segments_deferred, 0);
                prop_assert_eq!(
                    report.segments_scanned,
                    report.segments_retired
                );
                check_against_model(&db, &model);
            }
        }

        // Final GC, then the full check.
        db.collect_value_log().unwrap();
        check_against_model(&db, &model);

        // Recovery replays the WAL (pointer entries included) and must
        // land on the same state.
        drop(db);
        let db = Db::open("/db", vlog_options(&env)).unwrap();
        check_against_model(&db, &model);
        // GC on the recovered store is equally harmless.
        db.collect_value_log().unwrap();
        check_against_model(&db, &model);
    }
}

/// GC racing a live writer: the writer is the only mutator, so the final
/// state is deterministic — concurrent GC passes must not change it (the
/// conditional-install path discards rewrites of keys that moved).
#[test]
fn concurrent_gc_does_not_corrupt_writer_state() {
    let env = Arc::new(MemEnv::new());
    let db = Arc::new(Db::open("/db", vlog_options(&env)).unwrap());
    let writer = {
        let db = Arc::clone(&db);
        std::thread::spawn(move || {
            let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
            for round in 0u8..8 {
                for id in 0u8..16 {
                    let k = user_key(id);
                    if (round + id) % 5 == 0 {
                        db.delete(&k).unwrap();
                        model.remove(&k);
                    } else {
                        let mut v = vec![round; 200];
                        v[0] = id;
                        db.put(&k, &v).unwrap();
                        model.insert(k, v);
                    }
                }
            }
            model
        })
    };
    // Hammer GC until the writer finishes.
    while !writer.is_finished() {
        db.collect_value_log().unwrap();
    }
    let model = writer.join().expect("writer thread");
    db.collect_value_log().unwrap();
    check_against_model(&db, &model);
    // Survives recovery too.
    drop(db);
    let db = Db::open("/db", vlog_options(&env)).unwrap();
    check_against_model(&db, &model);
}
