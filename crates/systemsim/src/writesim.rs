//! The write-path simulation: db_bench `fillrandom` through the
//! metadata-level store model.
//!
//! The writer produces data in chunks (1/8 memtable); at every chunk
//! boundary the LevelDB stall rules are applied (slowdown at 8 L0 files,
//! stop at 12, block when the immutable memtable is still flushing).
//! Flushes and compactions are jobs on the single background host thread;
//! with the FCAE engine the merge phase of a compaction runs on the
//! device, leaving the host thread free — which is exactly how the paper
//! gets flushes to overlap compactions (§VI-A).

use std::collections::HashMap;

use fcae::timing::ENTRY_OVERHEAD_CYCLES;
use fcae::{CpuCostModel, FcaeConfig, PipelineModel};
use simkit::queue::{from_secs_f64, to_secs_f64};
use simkit::{EventQueue, PcieArbiter, SimTime, SplitMix64};

use crate::config::{EngineKind, SystemConfig};
use crate::report::SimReport;

/// Number of simulated levels.
const NUM_LEVELS: usize = 7;
/// Chunks per memtable: granularity of stall-rule evaluation.
const CHUNKS_PER_MEMTABLE: u64 = 8;
/// Finer granularity while the 1 ms/write slowdown is active, so the
/// writer reacts to L0 draining at (almost) per-write resolution like the
/// real store, instead of committing to a ~1 s crawl per chunk.
const SLOWDOWN_CHUNK_OPS: u64 = 64;
/// Log bytes one value-log GC pass reads (one segment's worth).
const GC_BATCH_BYTES: u64 = 8 << 20;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // they are all completion events; the postfix is the point
enum Ev {
    /// The writer finished one chunk.
    ChunkDone,
    /// A memtable flush completed.
    FlushDone,
    /// The device kernel phase of compaction job `id` completed.
    KernelDone(u64),
    /// Compaction job `id` fully completed.
    CompDone(u64),
    /// A value-log GC pass completed.
    GcDone,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocked {
    /// Memtable full, immutable memtable still flushing.
    WaitImm,
    /// L0 at the stop trigger.
    WaitL0,
}

#[derive(Debug, Default, Clone, Copy)]
struct LevelMeta {
    /// Stored bytes at this level.
    bytes: u64,
    /// File count (used for the L0 triggers and input counts).
    files: u64,
}

#[derive(Debug, Clone, Copy)]
struct CompJob {
    /// Simulated time the job was dispatched (for trace durations).
    started: SimTime,
    level: usize,
    bytes_in: u64,
    bytes_from_this: u64,
    bytes_from_next: u64,
    bytes_out: u64,
    inputs: usize,
    /// L0 jobs: how many L0 files the job consumed. Files flushed while
    /// the job runs are NOT part of it and must survive its completion.
    files_from_this: u64,
    on_device: bool,
}

/// Simulated duration in whole microseconds (for traces and metrics).
fn sim_micros(t: SimTime) -> u64 {
    (to_secs_f64(t) * 1e6) as u64
}

/// Runs `seeds` jittered replicas of the same configuration and returns
/// the mean throughput in MB/s (plus the last replica's full report).
pub fn mean_throughput(cfg: SystemConfig, target_bytes: u64, seeds: u64) -> (f64, SimReport) {
    assert!(seeds >= 1);
    let mut total = 0.0;
    let mut last = SimReport::default();
    for seed in 0..seeds {
        let r = WriteSim::with_seed(cfg, target_bytes, 0x5eed_f0e1 ^ (seed * 0x9e37_79b9)).run();
        total += r.throughput_mb_s;
        last = r;
    }
    (total / seeds as f64, last)
}

/// The write-path simulator.
pub struct WriteSim {
    cfg: SystemConfig,
    queue: EventQueue<Ev>,
    levels: [LevelMeta; NUM_LEVELS],

    mem_fill: u64,
    imm: Option<u64>,
    flush_active: bool,
    /// In-flight compaction jobs, keyed by id. Several device jobs (up to
    /// `cfg.engine_slots`) plus at most one software job may coexist, as
    /// long as their level pairs are disjoint.
    jobs: HashMap<u64, CompJob>,
    next_job_id: u64,
    /// The shared PCIe link all engine instances DMA through.
    pcie_bus: PcieArbiter,
    host_busy_until: SimTime,
    writer_blocked: Option<Blocked>,
    blocked_since: SimTime,

    target_bytes: u64,
    written: u64,
    /// Bytes of the chunk currently being written.
    pending_chunk: u64,
    writer_done_at: Option<SimTime>,
    /// Deterministic jitter source for job durations. Real compaction
    /// times vary with key layout; ±15% keeps the discrete model from
    /// locking into artificial limit cycles.
    jitter: SplitMix64,

    /// Optional observability bundle. The attached [`obs::ManualClock`]
    /// is driven from *simulated* time, so traces and metrics from two
    /// identical runs are byte-identical.
    obs: Option<(std::sync::Arc<obs::Obs>, std::sync::Arc<obs::ManualClock>)>,
    /// Start of the in-flight flush (trace durations).
    flush_started: SimTime,

    /// Live value bytes in the value log (separation runs only).
    vlog_live_bytes: u64,
    /// Dead value bytes (shadowed versions dropped by compaction merges)
    /// awaiting GC.
    vlog_dead_bytes: u64,
    /// A GC pass is occupying the background host thread.
    gc_active: bool,
    /// (dead, live) bytes of the in-flight GC batch, applied on GcDone.
    gc_pending: (u64, u64),

    report: SimReport,
}

impl WriteSim {
    /// Creates a simulator that will ingest `target_bytes` of raw user
    /// data under `cfg`.
    pub fn new(cfg: SystemConfig, target_bytes: u64) -> Self {
        Self::with_seed(cfg, target_bytes, 0x5eed_f0e1)
    }

    /// Like [`WriteSim::new`] with an explicit jitter seed. The simulated
    /// system is bistable around the paper's own `S0 <= N - 1` offload
    /// boundary; averaging a few seeds recovers the ensemble behaviour a
    /// real (noisy) system exhibits.
    pub fn with_seed(cfg: SystemConfig, target_bytes: u64, seed: u64) -> Self {
        WriteSim {
            cfg,
            queue: EventQueue::new(),
            levels: [LevelMeta::default(); NUM_LEVELS],
            mem_fill: 0,
            imm: None,
            flush_active: false,
            jobs: HashMap::new(),
            next_job_id: 0,
            pcie_bus: PcieArbiter::new(cfg.pcie),
            host_busy_until: 0,
            writer_blocked: None,
            blocked_since: 0,
            target_bytes,
            written: 0,
            pending_chunk: 0,
            writer_done_at: None,
            jitter: SplitMix64::new(seed),
            obs: None,
            flush_started: 0,
            vlog_live_bytes: 0,
            vlog_dead_bytes: 0,
            gc_active: false,
            gc_pending: (0, 0),
            report: SimReport::default(),
        }
    }

    /// Attaches an observability bundle whose [`obs::ManualClock`] this
    /// simulator will advance to the modeled time before every recorded
    /// event — metrics and traces become a deterministic function of the
    /// configuration and seed.
    pub fn with_obs(
        mut self,
        bundle: std::sync::Arc<obs::Obs>,
        clock: std::sync::Arc<obs::ManualClock>,
    ) -> Self {
        self.obs = Some((bundle, clock));
        self
    }

    /// Records `kind` on the trace at the current simulated time.
    fn obs_event(&self, kind: obs::EventKind) {
        if let Some((bundle, clock)) = &self.obs {
            clock.set(sim_micros(self.queue.now()));
            bundle.event(kind);
        }
    }

    /// Adds `n` to counter `name` (no-op without an attached bundle).
    fn obs_count(&self, name: &str, n: u64) {
        if let Some((bundle, _)) = &self.obs {
            bundle.registry.counter(name).add(n);
        }
    }

    fn chunk_bytes(&self) -> u64 {
        if self.levels[0].files >= self.cfg.l0_slowdown as u64 {
            (SLOWDOWN_CHUNK_OPS * self.cfg.pair_raw_bytes()).max(1)
        } else {
            (self.cfg.memtable_bytes / CHUNKS_PER_MEMTABLE).max(1)
        }
    }

    /// Stored bytes per *tree* entry — the pointer size under key-value
    /// separation, the full pair otherwise. Every byte count the level
    /// metadata tracks is in these units.
    fn pair_stored(&self) -> f64 {
        self.cfg.tree_pair_stored_bytes().max(1.0)
    }

    /// Stored bytes an L0 table occupies for `raw` memtable bytes.
    /// Degenerates to `compression_ratio` when separation is off;
    /// pointer-only tables store uncompressed.
    fn flush_stored(&self, raw: u64) -> u64 {
        let ratio =
            self.cfg.tree_pair_stored_bytes() / self.cfg.tree_pair_raw_bytes().max(1) as f64;
        (raw as f64 * ratio) as u64
    }

    /// Multiplies a duration by a deterministic ±15% jitter.
    fn jittered(&mut self, seconds: f64) -> f64 {
        seconds * (0.85 + 0.30 * self.jitter.next_f64())
    }

    /// Starts the next chunk: records its size and returns its duration,
    /// including the 1 ms slowdown regime when L0 is congested.
    fn chunk_duration(&mut self) -> SimTime {
        self.pending_chunk = self.chunk_bytes();
        let ops = self.pending_chunk as f64 / self.cfg.pair_raw_bytes() as f64;
        let slowed = self.levels[0].files >= self.cfg.l0_slowdown as u64;
        let per_op = if slowed {
            self.report.slowdown_time_sec += ops * self.cfg.slowdown_sleep;
            self.cfg.front_end_op_cost + self.cfg.slowdown_sleep
        } else {
            self.cfg.front_end_op_cost
        };
        // Separated values are appended to the value log on the write
        // path (sequential, group-synced); the tree only absorbs the
        // pointers, which is why flushes get rarer below.
        let vlog = if self.cfg.separated() {
            let bytes = (ops * self.cfg.value_len as f64) as u64;
            to_secs_f64(self.cfg.disk.write_time(bytes))
        } else {
            0.0
        };
        from_secs_f64(ops * per_op + vlog)
    }

    /// CPU merge time for a job (the paper's Table V baseline).
    fn merge_time(&self, job: &CompJob) -> f64 {
        let pairs = job.bytes_in as f64 / self.pair_stored();
        let model = CpuCostModel::new(job.inputs.max(2));
        pairs * model.pair_time_sec(self.cfg.internal_key_len(), self.cfg.tree_value_len())
    }

    /// Device kernel time for a job (the paper's Table III pipeline).
    fn kernel_time(&self, job: &CompJob, fc: &FcaeConfig) -> f64 {
        let pairs = job.bytes_in as f64 / self.pair_stored();
        let model = PipelineModel::new(*fc);
        let period = model.pair_period(self.cfg.internal_key_len(), self.cfg.tree_value_len())
            + ENTRY_OVERHEAD_CYCLES;
        // Per-block amortized overhead.
        let pairs_per_block =
            (self.cfg.block_bytes as f64 / self.cfg.tree_pair_raw_bytes() as f64).max(1.0);
        let block_overhead = 32.0 / pairs_per_block;
        pairs * (period + block_overhead) * fc.cycle_time_sec()
    }

    /// Disk time to read inputs and write outputs of a compaction.
    fn comp_io_time(&self, job: &CompJob) -> f64 {
        let files_in = job.inputs as f64 + 1.0;
        to_secs_f64(self.cfg.disk.read_time(job.bytes_in))
            + to_secs_f64(self.cfg.disk.write_time(job.bytes_out))
            + files_in * self.cfg.disk.op_latency
    }

    /// Score of `level` per LevelDB's rules.
    fn level_score(&self, level: usize) -> f64 {
        if level == 0 {
            return self.levels[0].files as f64 / self.cfg.l0_trigger as f64;
        }
        if level == 1 {
            if let Some(k) = self.cfg.l1_tiering_runs {
                // Tiering: compaction triggers on run count, not bytes.
                return self.levels[1].files as f64 / k as f64;
            }
        }
        self.levels[level].bytes as f64 / self.cfg.max_bytes_for_level(level) as f64
    }

    /// Levels an in-flight job makes off-limits (its own and the one it
    /// writes into) — the simulation's miniature of `lsm::ConflictChecker`.
    fn busy_levels(&self) -> [bool; NUM_LEVELS] {
        let mut busy = [false; NUM_LEVELS];
        for job in self.jobs.values() {
            busy[job.level] = true;
            busy[job.level + 1] = true;
        }
        busy
    }

    /// Picks the best-scoring compaction whose levels no in-flight job is
    /// touching (LevelDB's score rules, conflict-filtered).
    fn pick_compaction(&self) -> Option<CompJob> {
        let busy = self.busy_levels();
        let mut scored: Vec<(usize, f64)> = (0..NUM_LEVELS - 1)
            .filter(|&l| !busy[l] && !busy[l + 1])
            .map(|l| (l, self.level_score(l)))
            .filter(|&(_, s)| s >= 1.0)
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let (level, _) = *scored.first()?;
        let tiered = self.cfg.l1_tiering_runs.is_some();
        let next = &self.levels[level + 1];
        let (bytes_from_this, bytes_from_next, inputs, files_from_this) = if level == 0 {
            // Random fill: every L0 file spans the key space. Leveling
            // merges with the whole of L1; tiering appends a fresh L1 run
            // instead (no L1 bytes touched).
            let l0 = &self.levels[0];
            if tiered {
                (l0.bytes, 0, l0.files as usize, l0.files)
            } else {
                (
                    l0.bytes,
                    next.bytes,
                    l0.files as usize + usize::from(next.files > 0),
                    l0.files,
                )
            }
        } else if level == 1 && tiered {
            // Tiered L1: merge ALL runs at once — every run is one input
            // (this is exactly the multi-input case the paper's 9-input
            // engine exists for).
            let l1 = &self.levels[1];
            (
                l1.bytes,
                next.bytes.min(2 * l1.bytes),
                l1.files as usize + usize::from(next.bytes > 0),
                l1.files,
            )
        } else {
            let take = self.cfg.sstable_bytes.min(self.levels[level].bytes);
            // One file overlaps ~ratio files of the next level, plus edges.
            let overlap = next
                .bytes
                .min((self.cfg.leveling_ratio + 2) * self.cfg.sstable_bytes);
            (take, overlap, 1 + usize::from(overlap > 0), 1)
        };
        let bytes_in = bytes_from_this + bytes_from_next;
        if bytes_in == 0 {
            return None;
        }
        let trivial = level > 0 && bytes_from_next == 0;
        let bytes_out = if trivial {
            bytes_from_this
        } else {
            // A `dedup_fraction` of the pushed-down entries shadow an
            // existing version below, which the merge drops; everything
            // else is conserved. (Dropping a fraction of *all* input would
            // make recirculated data decay exponentially.)
            bytes_in - (bytes_from_this as f64 * self.cfg.dedup_fraction) as u64
        };
        Some(CompJob {
            started: 0,
            level,
            bytes_in,
            bytes_from_this,
            bytes_from_next,
            bytes_out,
            inputs,
            files_from_this,
            on_device: false,
        })
    }

    /// Starts any runnable background work.
    fn schedule_work(&mut self) {
        let now = self.queue.now();
        // Flush has priority (paper §VI-A: dump of the immutable memtable
        // is the first compaction type).
        if self.imm.is_some() && !self.flush_active {
            // PANIC-OK: is_some() checked on the line above.
            let raw = self.imm.expect("imm checked above");
            let stored = self.flush_stored(raw);
            let dur = self.jittered(
                raw as f64 / self.cfg.flush_cpu_bw + to_secs_f64(self.cfg.disk.write_time(stored)),
            );
            let start = self.host_busy_until.max(now);
            let end = start + from_secs_f64(dur);
            self.host_busy_until = end;
            self.flush_active = true;
            self.flush_started = start;
            if self.jobs.values().any(|j| j.on_device) {
                self.report.concurrent_flushes += 1;
            }
            self.queue.schedule_at(end, Ev::FlushDone);
        }

        // Dispatch compactions until slots or admissible work run out.
        // Device-eligible jobs go to engine slots (and *wait* for one when
        // all are busy — merging them on the CPU would hold the host
        // thread hostage, the very cost the device exists to avoid); jobs
        // the device cannot take run as the single software compaction.
        loop {
            // A single-slot system is the paper's: one background
            // compaction at a time, device or software. Multi-slot runs
            // use the offload scheduler's concurrent dispatch.
            if self.cfg.engine_slots.max(1) == 1 && !self.jobs.is_empty() {
                break;
            }
            let device_in_flight = self.jobs.values().filter(|j| j.on_device).count();
            let slots_free = match self.cfg.engine {
                EngineKind::Fcae(_) => device_in_flight < self.cfg.engine_slots.max(1),
                EngineKind::Cpu => false,
            };
            let sw_free = !self.jobs.values().any(|j| !j.on_device);
            if !slots_free && !sw_free {
                break;
            }
            let Some(mut job) = self.pick_compaction() else {
                break;
            };
            let trivial = job.level > 0 && job.bytes_from_next == 0;
            if trivial {
                // Pure metadata relink; re-scan for more work.
                self.apply_compaction(&job, false);
                self.report.trivial_moves += 1;
                continue;
            }
            let id = self.next_job_id;
            self.next_job_id += 1;
            job.started = now;
            self.obs_event(obs::EventKind::CompactionStart {
                level: job.level,
                files: job.inputs,
                bytes: job.bytes_in,
            });
            match self.cfg.engine {
                EngineKind::Fcae(fc) if job.inputs <= fc.n_inputs => {
                    if !slots_free {
                        break; // wait for an engine slot to free up
                    }
                    job.on_device = true;
                    // Host phase 1: read inputs from disk, then DMA in
                    // over the shared (possibly contended) link.
                    let read = to_secs_f64(self.cfg.disk.read_time(job.bytes_in))
                        + job.inputs as f64 * self.cfg.disk.op_latency;
                    let start = self.host_busy_until.max(now);
                    let read_end = start + from_secs_f64(self.jittered(read));
                    let (dma_start, dma_end) = self.pcie_bus.transfer(read_end, job.bytes_in);
                    self.host_busy_until = dma_end;
                    let kernel = self.kernel_time(&job, &fc);
                    self.report.kernel_time_sec += kernel;
                    self.report.pcie_time_sec += to_secs_f64(dma_end - dma_start);
                    self.report.device_compactions += 1;
                    self.queue
                        .schedule_at(dma_end + from_secs_f64(kernel), Ev::KernelDone(id));
                    self.jobs.insert(id, job);
                    let in_flight = self.jobs.values().filter(|j| j.on_device).count();
                    self.report.max_device_in_flight =
                        self.report.max_device_in_flight.max(in_flight as u64);
                }
                _ => {
                    if !sw_free {
                        break; // the one software compaction slot is taken
                    }
                    // Software compaction: read + merge + write on host.
                    let dur = self.jittered(self.comp_io_time(&job) + self.merge_time(&job));
                    self.report.merge_cpu_time_sec += self.merge_time(&job);
                    self.report.sw_compactions += 1;
                    let start = self.host_busy_until.max(now);
                    let end = start + from_secs_f64(dur);
                    self.host_busy_until = end;
                    self.queue.schedule_at(end, Ev::CompDone(id));
                    self.jobs.insert(id, job);
                }
            }
        }
        self.maybe_schedule_gc();
    }

    /// Starts a value-log GC pass when enough garbage has accumulated.
    ///
    /// One pass reads [`GC_BATCH_BYTES`] of log and rewrites the live
    /// values it finds — on the *host* thread, after whatever flush or
    /// software compaction already claimed it. That contention (log GC
    /// vs. compaction for the one background thread) is the scheduling
    /// dimension this models: an offloaded merge frees the thread for
    /// GC, an inline merge starves it.
    fn maybe_schedule_gc(&mut self) {
        if !self.cfg.separated() || self.gc_active {
            return;
        }
        let total = self.vlog_live_bytes + self.vlog_dead_bytes;
        // Worth a pass once a whole batch is garbage AND at least a
        // quarter of the log is dead — mirroring the store's
        // dead-space-ratio trigger, so a mostly-live log is left alone.
        if self.vlog_dead_bytes < GC_BATCH_BYTES.max(total / 4) {
            return;
        }
        let batch = GC_BATCH_BYTES.min(total);
        let dead_frac = self.vlog_dead_bytes as f64 / total as f64;
        let dead_in = ((batch as f64 * dead_frac) as u64).min(self.vlog_dead_bytes);
        let live_in = batch - dead_in;
        let dur = self.jittered(
            to_secs_f64(self.cfg.disk.read_time(batch))
                + to_secs_f64(self.cfg.disk.write_time(live_in))
                + 2.0 * self.cfg.disk.op_latency,
        );
        let start = self.host_busy_until.max(self.queue.now());
        let end = start + from_secs_f64(dur);
        self.host_busy_until = end;
        self.gc_active = true;
        self.gc_pending = (dead_in, live_in);
        self.queue.schedule_at(end, Ev::GcDone);
    }

    /// Applies a finished compaction to the level metadata.
    fn apply_compaction(&mut self, job: &CompJob, charge_io: bool) {
        let level = job.level;
        if level == 0 {
            // Only the files that were inputs disappear; flushes that
            // landed while the job ran remain.
            let l0 = &mut self.levels[0];
            l0.files = l0.files.saturating_sub(job.files_from_this);
            l0.bytes = l0.bytes.saturating_sub(job.bytes_from_this);
        } else {
            let l = &mut self.levels[level];
            l.bytes = l.bytes.saturating_sub(job.bytes_from_this);
            l.files = l.bytes / self.cfg.sstable_bytes.max(1);
        }
        let next = &mut self.levels[level + 1];
        next.bytes = next.bytes.saturating_sub(job.bytes_from_next) + job.bytes_out;
        if level == 0 && self.cfg.l1_tiering_runs.is_some() {
            // Tiered L1: each completed L0 compaction adds one run.
            next.files += 1;
        } else if level == 1 && self.cfg.l1_tiering_runs.is_some() {
            // Tiered L1 drained all runs; L2 is leveled as usual.
            next.files =
                (next.bytes / self.cfg.sstable_bytes.max(1)).max(u64::from(next.bytes > 0));
        } else {
            next.files =
                (next.bytes / self.cfg.sstable_bytes.max(1)).max(u64::from(next.bytes > 0));
        }
        if charge_io {
            self.report.compaction_io_bytes += job.bytes_in + job.bytes_out;
            if self.cfg.separated() {
                // Every pointer pair the merge dropped strands its value
                // in the log: that value is now garbage awaiting GC.
                let dropped = job.bytes_in.saturating_sub(job.bytes_out);
                let pairs = dropped as f64 / self.pair_stored();
                let dead = ((pairs * self.cfg.value_len as f64) as u64).min(self.vlog_live_bytes);
                self.vlog_live_bytes -= dead;
                self.vlog_dead_bytes += dead;
            }
        }
    }

    fn unblock_writer_if_possible(&mut self) {
        let Some(reason) = self.writer_blocked else {
            return;
        };
        let clear = match reason {
            Blocked::WaitImm => {
                if self.imm.is_none() {
                    // Perform the pending rotation.
                    self.imm = Some(std::mem::take(&mut self.mem_fill));
                    true
                } else {
                    false
                }
            }
            Blocked::WaitL0 => self.levels[0].files < self.cfg.l0_stop as u64,
        };
        if clear {
            self.writer_blocked = None;
            let stalled = self.queue.now() - self.blocked_since;
            self.report.stall_time_sec += to_secs_f64(stalled);
            self.obs_event(obs::EventKind::WriteStall {
                micros: sim_micros(stalled),
            });
            self.obs_count("sim.stall_micros", sim_micros(stalled));
            let dur = self.chunk_duration();
            self.queue.schedule(dur, Ev::ChunkDone);
            self.schedule_work();
        }
    }

    fn on_chunk_done(&mut self) {
        self.written += self.pending_chunk;
        if self.cfg.separated() {
            // Values went to the log (already charged on the chunk
            // duration); the memtable only absorbs the pointer entries.
            let ops = self.pending_chunk / self.cfg.pair_raw_bytes().max(1);
            let value_bytes = ops * self.cfg.value_len as u64;
            self.report.vlog_appended_bytes += value_bytes;
            self.vlog_live_bytes += value_bytes;
            self.mem_fill += ops * self.cfg.tree_pair_raw_bytes();
        } else {
            self.mem_fill += self.pending_chunk;
        }
        if self.written >= self.target_bytes {
            self.writer_done_at = Some(self.queue.now());
            return;
        }
        // Stall rules, in LevelDB's order.
        if self.levels[0].files >= self.cfg.l0_stop as u64 {
            self.writer_blocked = Some(Blocked::WaitL0);
            self.blocked_since = self.queue.now();
            self.schedule_work();
            return;
        }
        if self.mem_fill >= self.cfg.memtable_bytes {
            if self.imm.is_some() {
                self.writer_blocked = Some(Blocked::WaitImm);
                self.blocked_since = self.queue.now();
                self.schedule_work();
                return;
            }
            self.imm = Some(std::mem::take(&mut self.mem_fill));
            self.schedule_work();
        }
        let dur = self.chunk_duration();
        self.queue.schedule(dur, Ev::ChunkDone);
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimReport {
        let dur = self.chunk_duration();
        self.queue.schedule(dur, Ev::ChunkDone);
        let mut guard = 0u64;
        while self.writer_done_at.is_none() {
            guard += 1;
            assert!(
                guard < 2_000_000_000,
                "simulation did not terminate (written {} of {})",
                self.written,
                self.target_bytes
            );
            let Some((_, ev)) = self.queue.pop() else {
                // PANIC-OK: an empty queue with the writer incomplete is a
                // simulator bug (lost wakeup); abort with full state.
                panic!(
                    "event queue drained while writer incomplete: blocked={:?} imm={:?} l0={:?}",
                    self.writer_blocked, self.imm, self.levels[0]
                );
            };
            match ev {
                Ev::ChunkDone => self.on_chunk_done(),
                Ev::FlushDone => {
                    // PANIC-OK: FlushDone is only scheduled while imm is
                    // held, and nothing else clears it.
                    let raw = self.imm.take().expect("flush completed without imm");
                    let stored = self.flush_stored(raw);
                    self.levels[0].bytes += stored;
                    self.levels[0].files += 1;
                    self.flush_active = false;
                    self.report.flushes += 1;
                    self.obs_event(obs::EventKind::Flush {
                        bytes: stored,
                        micros: sim_micros(self.queue.now() - self.flush_started),
                    });
                    self.obs_count("sim.flush.count", 1);
                    self.obs_count("sim.flush.bytes", stored);
                    self.unblock_writer_if_possible();
                    self.schedule_work();
                }
                Ev::KernelDone(id) => {
                    // Host phase 2: DMA out over the shared link + write
                    // outputs to disk.
                    // PANIC-OK: KernelDone(id) is scheduled when job
                    // `id` is inserted; only CompDone removes it.
                    let job = *self.jobs.get(&id).expect("kernel done without job");
                    let start = self.host_busy_until.max(self.queue.now());
                    let (dma_start, dma_end) = self.pcie_bus.transfer(start, job.bytes_out);
                    let write = to_secs_f64(self.cfg.disk.write_time(job.bytes_out));
                    self.report.pcie_time_sec += to_secs_f64(dma_end - dma_start);
                    let end = dma_end + from_secs_f64(write);
                    self.host_busy_until = end;
                    self.queue.schedule_at(end, Ev::CompDone(id));
                }
                Ev::CompDone(id) => {
                    // PANIC-OK: CompDone(id) follows KernelDone(id)
                    // exactly once; the job is still in the map.
                    let job = self.jobs.remove(&id).expect("comp done without job");
                    if job.bytes_in > 0 {
                        self.apply_compaction(&job, true);
                    }
                    self.obs_event(obs::EventKind::CompactionFinish {
                        level: job.level,
                        bytes_read: job.bytes_in,
                        bytes_written: job.bytes_out,
                        micros: sim_micros(self.queue.now() - job.started),
                    });
                    self.obs_count(&format!("sim.compact.l{}.count", job.level), 1);
                    self.obs_count(
                        &format!("sim.compact.l{}.bytes_read", job.level),
                        job.bytes_in,
                    );
                    self.obs_count(
                        &format!("sim.compact.l{}.bytes_written", job.level),
                        job.bytes_out,
                    );
                    self.unblock_writer_if_possible();
                    self.schedule_work();
                }
                Ev::GcDone => {
                    let (dead, live) = self.gc_pending;
                    self.gc_pending = (0, 0);
                    self.gc_active = false;
                    self.vlog_dead_bytes = self.vlog_dead_bytes.saturating_sub(dead);
                    self.report.gc_jobs += 1;
                    self.report.gc_rewritten_bytes += live;
                    self.obs_count("sim.vlog.gc.count", 1);
                    self.obs_count("sim.vlog.gc.rewritten_bytes", live);
                    self.schedule_work();
                }
            }
        }

        // PANIC-OK: the loop condition is writer_done_at.is_none().
        let end = self.writer_done_at.expect("loop exits only when done");
        let total = to_secs_f64(end);
        self.report.bytes_written = self.written;
        self.report.total_time_sec = total;
        self.report.throughput_mb_s = if total > 0.0 {
            self.written as f64 / total / 1e6
        } else {
            0.0
        };
        self.report.ops_per_sec = if total > 0.0 {
            self.written as f64 / self.cfg.pair_raw_bytes() as f64 / total
        } else {
            0.0
        };
        self.report.level_bytes = self.levels.iter().map(|l| l.bytes).collect();
        self.report.vlog_dead_bytes = self.vlog_dead_bytes;
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use fcae::FcaeConfig;

    fn mb(m: u64) -> u64 {
        m << 20
    }

    fn run(cfg: SystemConfig, bytes: u64) -> SimReport {
        WriteSim::new(cfg, bytes).run()
    }

    #[test]
    fn small_runs_complete_and_account() {
        let r = run(SystemConfig::default(), mb(64));
        assert_eq!(r.bytes_written, mb(64));
        assert!(r.total_time_sec > 0.0);
        assert!(r.flushes >= 10, "64 MiB / 4 MiB memtables: {r:?}");
        assert!(r.throughput_mb_s > 0.0);
    }

    #[test]
    fn fcae_beats_cpu_baseline() {
        let base = run(SystemConfig::default(), mb(256));
        let fcae = run(
            SystemConfig::default().with_engine(EngineKind::Fcae(FcaeConfig::nine_input())),
            mb(256),
        );
        assert!(
            fcae.throughput_mb_s > 1.5 * base.throughput_mb_s,
            "FCAE {:.2} MB/s vs CPU {:.2} MB/s",
            fcae.throughput_mb_s,
            base.throughput_mb_s
        );
        assert!(fcae.device_compactions > 0);
        assert!(fcae.kernel_time_sec > 0.0);
        assert!(base.device_compactions == 0);
    }

    #[test]
    fn throughput_declines_with_data_size() {
        // Fig. 10's driver: deeper trees compact more per ingested byte.
        let small = run(SystemConfig::default(), mb(64));
        let large = run(SystemConfig::default(), mb(1024));
        assert!(
            large.throughput_mb_s < small.throughput_mb_s,
            "small {:.2} vs large {:.2}",
            small.throughput_mb_s,
            large.throughput_mb_s
        );
        assert!(large.write_amplification() > small.write_amplification());
    }

    #[test]
    fn pcie_time_is_small_fraction() {
        let r = run(
            SystemConfig::default().with_engine(EngineKind::Fcae(FcaeConfig::nine_input())),
            mb(512),
        );
        assert!(r.pcie_time_sec > 0.0);
        assert!(r.pcie_percent() < 15.0, "Table VIII: {}%", r.pcie_percent());
    }

    #[test]
    fn two_input_engine_falls_back_on_l0() {
        // N=2 cannot take L0 compactions (>= 5 inputs): they run in SW.
        let r = run(
            SystemConfig::default().with_engine(EngineKind::Fcae(FcaeConfig::two_input())),
            mb(256),
        );
        assert!(r.sw_compactions > 0, "{r:?}");
        assert!(r.device_compactions > 0, "{r:?}");
    }

    #[test]
    fn multi_slot_runs_device_compactions_concurrently() {
        let cfg = SystemConfig::default().with_engine(EngineKind::Fcae(FcaeConfig::nine_input()));
        let one = run(cfg.with_engine_slots(1), mb(512));
        let four = run(cfg.with_engine_slots(4), mb(512));
        assert!(one.max_device_in_flight <= 1, "{one:?}");
        assert!(
            four.max_device_in_flight > 1,
            "4 slots never overlapped: {four:?}"
        );
        // The shared link and disk bound the gain, but extra slots must
        // not make things worse.
        assert!(
            four.throughput_mb_s > 0.9 * one.throughput_mb_s,
            "1 slot {:.2} MB/s, 4 slots {:.2} MB/s",
            one.throughput_mb_s,
            four.throughput_mb_s
        );
    }

    #[test]
    fn concurrent_flushes_only_with_device() {
        let base = run(SystemConfig::default(), mb(256));
        assert_eq!(base.concurrent_flushes, 0);
        let fcae = run(
            SystemConfig::default().with_engine(EngineKind::Fcae(FcaeConfig::nine_input())),
            mb(256),
        );
        assert!(fcae.concurrent_flushes > 0, "{fcae:?}");
    }

    /// The acceptance bar for simulated observability: two identical
    /// runs must produce byte-identical metric *and* trace exports,
    /// because the attached clock advances with modeled time only.
    #[test]
    fn identical_runs_export_identical_observability() {
        let run_once = || {
            let (bundle, clock) = obs::Obs::manual();
            let cfg =
                SystemConfig::default().with_engine(EngineKind::Fcae(FcaeConfig::nine_input()));
            let r = WriteSim::new(cfg, mb(128))
                .with_obs(std::sync::Arc::clone(&bundle), clock)
                .run();
            (bundle.export_text(), r)
        };
        let (a, ra) = run_once();
        let (b, rb) = run_once();
        assert_eq!(a, b, "two identical runs must export identical bytes");
        assert_eq!(ra.flushes, rb.flushes);
        // The export actually carries the simulated activity.
        assert!(a.contains("counter sim.flush.count"), "{a}");
        assert!(a.contains("compaction_finish"), "{a}");
        assert!(a.contains("flush bytes="), "{a}");
    }

    #[test]
    fn levels_respect_budgets_roughly() {
        let r = run(SystemConfig::default(), mb(512));
        // L1 should be near its 10 MiB budget, not wildly above.
        assert!(
            r.level_bytes[1] < 4 * (10 << 20),
            "L1 = {}",
            r.level_bytes[1]
        );
        // Data ends up in deeper levels.
        assert!(r.level_bytes[2] + r.level_bytes[3] > 0);
    }
}

#[cfg(test)]
mod tiering_tests {
    use super::*;
    use crate::config::EngineKind;
    use fcae::FcaeConfig;

    fn tiered_cfg() -> SystemConfig {
        SystemConfig {
            value_len: 512,
            l1_tiering_runs: Some(8),
            ..SystemConfig::default()
        }
    }

    #[test]
    fn tiered_runs_complete_and_conserve() {
        let r = WriteSim::new(tiered_cfg(), 256 << 20).run();
        assert_eq!(r.bytes_written, 256 << 20);
        assert!(r.flushes > 30);
        let total: u64 = r.level_bytes.iter().sum();
        // Stored data (~50% of raw, minus dedup) must be present.
        assert!(total > 60 << 20, "levels hold {total} bytes");
    }

    #[test]
    fn two_input_engine_cannot_take_tiered_merges() {
        // A tiered L1 merge has ~8 inputs: N=2 must fall back to software
        // while N=9 offloads — the paper's §VII-C motivation.
        let n2 = WriteSim::new(
            tiered_cfg().with_engine(EngineKind::Fcae(FcaeConfig::two_input())),
            256 << 20,
        )
        .run();
        let n9 = WriteSim::new(
            tiered_cfg().with_engine(EngineKind::Fcae(FcaeConfig::nine_input())),
            256 << 20,
        )
        .run();
        assert!(
            n2.sw_compactions > n9.sw_compactions,
            "N=2 sw {} vs N=9 sw {}",
            n2.sw_compactions,
            n9.sw_compactions
        );
        assert!(
            n9.throughput_mb_s > n2.throughput_mb_s,
            "N=9 {:.2} must beat N=2 {:.2} under tiering",
            n9.throughput_mb_s,
            n2.throughput_mb_s
        );
    }

    #[test]
    fn tiering_reduces_baseline_write_amp() {
        // Lazy compaction defers merges: the CPU baseline's write
        // amplification drops relative to pure leveling.
        let leveled = WriteSim::new(
            SystemConfig {
                value_len: 512,
                ..SystemConfig::default()
            },
            256 << 20,
        )
        .run();
        let tiered = WriteSim::new(tiered_cfg(), 256 << 20).run();
        assert!(
            tiered.write_amplification() < leveled.write_amplification(),
            "tiered WA {:.2} vs leveled WA {:.2}",
            tiered.write_amplification(),
            leveled.write_amplification()
        );
    }
}

#[cfg(test)]
mod kv_separation_tests {
    use super::*;

    fn big_value_cfg() -> SystemConfig {
        SystemConfig {
            value_len: 1024,
            ..SystemConfig::default()
        }
    }

    #[test]
    fn separation_cuts_compaction_volume_and_lifts_throughput() {
        let base = WriteSim::new(big_value_cfg(), 256 << 20).run();
        let sep = WriteSim::new(big_value_cfg().with_kv_separation(512), 256 << 20).run();
        assert!(sep.vlog_appended_bytes > 200 << 20, "{sep:?}");
        assert!(
            sep.compaction_io_bytes < base.compaction_io_bytes / 4,
            "separated moved {} vs inline {}",
            sep.compaction_io_bytes,
            base.compaction_io_bytes
        );
        assert!(
            sep.throughput_mb_s > base.throughput_mb_s,
            "separated {:.2} MB/s vs inline {:.2} MB/s",
            sep.throughput_mb_s,
            base.throughput_mb_s
        );
    }

    #[test]
    fn gc_runs_and_accounts_under_update_heavy_load() {
        // High shadowing rate: dropped pointers strand their values, the
        // dead-space trigger fires, and GC passes contend for the host
        // thread alongside flushes and compactions.
        // Pointer entries shrink the tree ~28x, so a default-size
        // memtable would never even reach the L0 trigger over this run;
        // a 1 MiB memtable restores the flush/compaction cadence.
        let cfg = SystemConfig {
            dedup_fraction: 0.6,
            memtable_bytes: 1 << 20,
            ..big_value_cfg().with_kv_separation(512)
        };
        let r = WriteSim::new(cfg, 256 << 20).run();
        assert!(r.gc_jobs > 0, "{r:?}");
        assert!(r.gc_rewritten_bytes > 0, "{r:?}");
        // GC cannot collect more than was ever appended.
        assert!(
            r.vlog_dead_bytes < r.vlog_appended_bytes,
            "dead {} vs appended {}",
            r.vlog_dead_bytes,
            r.vlog_appended_bytes
        );
    }

    #[test]
    fn sub_threshold_values_stay_inline() {
        // 128-byte default values under a 4 KiB threshold: separation is
        // configured but never applies, so the run is byte-for-byte the
        // baseline.
        let base = WriteSim::new(SystemConfig::default(), 128 << 20).run();
        let thresh =
            WriteSim::new(SystemConfig::default().with_kv_separation(4096), 128 << 20).run();
        assert_eq!(thresh.vlog_appended_bytes, 0);
        assert_eq!(thresh.gc_jobs, 0);
        assert_eq!(thresh.compaction_io_bytes, base.compaction_io_bytes);
        assert_eq!(thresh.flushes, base.flushes);
    }
}
