//! Simulation results.

/// Outcome of one simulated write run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    /// Raw user bytes ingested.
    pub bytes_written: u64,
    /// Total simulated wall time, seconds.
    pub total_time_sec: f64,
    /// User write throughput, raw MB/s (the paper's Fig. 10/14 metric).
    pub throughput_mb_s: f64,
    /// Operations per second.
    pub ops_per_sec: f64,
    /// Time the writer spent blocked (imm pending or L0 stop).
    pub stall_time_sec: f64,
    /// Time the writer spent in the 1 ms slowdown regime.
    pub slowdown_time_sec: f64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions executed on the device.
    pub device_compactions: u64,
    /// Compactions executed in software.
    pub sw_compactions: u64,
    /// Trivial moves.
    pub trivial_moves: u64,
    /// Stored bytes read+written by compactions.
    pub compaction_io_bytes: u64,
    /// Total device kernel time, seconds.
    pub kernel_time_sec: f64,
    /// Total PCIe transfer time, seconds (Table VIII numerator).
    pub pcie_time_sec: f64,
    /// Total CPU merge time (baseline / SW fallback), seconds.
    pub merge_cpu_time_sec: f64,
    /// Flushes that overlapped an in-flight device compaction.
    pub concurrent_flushes: u64,
    /// Peak device compactions in flight at once (multi-engine runs).
    pub max_device_in_flight: u64,
    /// Final per-level stored bytes.
    pub level_bytes: Vec<u64>,
    /// Value bytes appended to the value log (key-value separation runs).
    pub vlog_appended_bytes: u64,
    /// Value-log GC passes executed on the background host thread.
    pub gc_jobs: u64,
    /// Live value bytes GC rewrote into fresh segments.
    pub gc_rewritten_bytes: u64,
    /// Dead value bytes still awaiting collection at the end of the run.
    pub vlog_dead_bytes: u64,
}

impl SimReport {
    /// PCIe share of total time, in percent (the paper's Table VIII).
    pub fn pcie_percent(&self) -> f64 {
        if self.total_time_sec == 0.0 {
            return 0.0;
        }
        100.0 * self.pcie_time_sec / self.total_time_sec
    }

    /// Write amplification in stored bytes (compaction I/O / ingested).
    pub fn write_amplification(&self) -> f64 {
        if self.bytes_written == 0 {
            return 0.0;
        }
        self.compaction_io_bytes as f64 / self.bytes_written as f64
    }
}
