//! Simulation configuration: store parameters (paper Table IV), hardware
//! models, and calibrated host-side cost constants.

use fcae::FcaeConfig;
use simkit::{DiskModel, PcieLink};

/// Stored size of one value-log pointer (mirrors the `lsm::vlog`
/// encoding: 1 tag byte + segment u64 + offset u64 + length u32).
pub const VLOG_POINTER_LEN: usize = 21;

/// Which compaction engine the simulated system uses.
#[derive(Debug, Clone, Copy)]
pub enum EngineKind {
    /// Baseline LevelDB: merges on the background thread.
    Cpu,
    /// LevelDB-FCAE: merges offloaded to the simulated device.
    Fcae(FcaeConfig),
}

/// Read-path cost constants (for the YCSB simulation).
#[derive(Debug, Clone, Copy)]
pub struct ReadCosts {
    /// CPU time for a memtable/filter/index probe chain, seconds.
    pub lookup_cpu: f64,
    /// Block cache capacity in bytes (LevelDB default 8 MiB).
    pub block_cache_bytes: u64,
    /// OS page cache available to the store, bytes. Reads that miss the
    /// block cache usually hit here on a machine whose RAM is a sizable
    /// fraction of the dataset (the paper's 20 GB YCSB DB).
    pub os_cache_bytes: u64,
    /// Decompression throughput, bytes/sec (Snappy-class).
    pub decompress_bw: f64,
    /// Per-entry CPU cost while scanning, seconds.
    pub scan_entry_cpu: f64,
}

impl Default for ReadCosts {
    fn default() -> Self {
        ReadCosts {
            lookup_cpu: 4e-6,
            block_cache_bytes: 8 << 20,
            os_cache_bytes: 8 << 30,
            decompress_bw: 300e6,
            scan_entry_cpu: 0.3e-6,
        }
    }
}

/// Full system configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// User key length (paper default 16; internal key adds 8).
    pub key_len: usize,
    /// Value length (paper default 128).
    pub value_len: usize,
    /// Stored/raw ratio after Snappy (db_bench data: ~0.5).
    pub compression_ratio: f64,
    /// Memtable capacity in raw bytes (4 MiB).
    pub memtable_bytes: u64,
    /// SSTable target size in stored bytes (2 MiB).
    pub sstable_bytes: u64,
    /// Data block size (4 KiB).
    pub block_bytes: u64,
    /// Level size ratio (paper default 10).
    pub leveling_ratio: u64,
    /// Level-1 byte budget (10 MiB).
    pub level1_bytes: u64,
    /// L0 file-count compaction trigger (4).
    pub l0_trigger: usize,
    /// L0 slowdown trigger (8): 1 ms penalty per write.
    pub l0_slowdown: usize,
    /// L0 stop trigger (12): writes blocked.
    pub l0_stop: usize,
    /// Compaction engine.
    pub engine: EngineKind,
    /// Engine instances on the card (FCAE only). Multiple instances run
    /// their kernel phases in parallel but share the PCIe link and the
    /// host I/O path; `offload::OffloadService` derives a real value from
    /// the resource model, the simulation takes it as a parameter.
    pub engine_slots: usize,
    /// Storage device. Defaults model HDD-class storage (~80 MB/s
    /// sequential, 2 ms seeks): the paper's end-to-end numbers — baseline
    /// fillrandom at 2-3 MB/s and FCAE at 5-14 MB/s — are only consistent
    /// with mechanical storage on the evaluation machine (the paper does
    /// not name the device).
    pub disk: DiskModel,
    /// PCIe link (FCAE only).
    pub pcie: PcieLink,
    /// Front-end cost per write op: WAL append + skiplist insert.
    pub front_end_op_cost: f64,
    /// The 1 ms slowdown sleep.
    pub slowdown_sleep: f64,
    /// CPU throughput for building an L0 table from the memtable,
    /// raw bytes/sec.
    pub flush_cpu_bw: f64,
    /// Fraction of pushed-down (newer) entries that shadow an existing
    /// version in the destination level; the merge drops the old copy.
    /// ~0.2 fits fillrandom over a num-ops keyspace; zipfian update
    /// workloads run far higher (see the YCSB simulation).
    pub dedup_fraction: f64,
    /// Key-value separation (WiscKey-style, the storage-level counterpart
    /// of the paper's key/value split inside the engine): `Some(t)`
    /// routes values of at least `t` bytes to an append-only value log.
    /// The tree then stores fixed-size pointers, so flushes and
    /// compactions move pointer entries instead of values, and a
    /// background GC pass rewrites live values out of dead log segments
    /// — on the same host thread compactions and flushes use, which is
    /// the scheduling contention this dimension exists to model.
    pub kv_separation: Option<usize>,
    /// Partitioned-tiering mode at level 1 (paper §VII-C: SifrDB /
    /// PebblesDB): `Some(k)` makes L0 compactions *append* their output
    /// as an overlapping run in L1; when `k` runs accumulate, one merge
    /// of all runs (k inputs!) pushes them into L2. `None` = pure
    /// leveling (LevelDB).
    pub l1_tiering_runs: Option<u64>,
    /// Read-path costs.
    pub read: ReadCosts,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            key_len: 16,
            value_len: 128,
            compression_ratio: 0.5,
            memtable_bytes: 4 << 20,
            sstable_bytes: 2 << 20,
            block_bytes: 4096,
            leveling_ratio: 10,
            level1_bytes: 10 << 20,
            l0_trigger: 4,
            l0_slowdown: 8,
            l0_stop: 12,
            engine: EngineKind::Cpu,
            engine_slots: 1,
            disk: DiskModel {
                read_bw: 80e6,
                write_bw: 72e6,
                op_latency: 2e-3,
            },
            pcie: PcieLink::default(),
            front_end_op_cost: 5e-6,
            slowdown_sleep: 1e-3,
            flush_cpu_bw: 120e6,
            dedup_fraction: 0.20,
            kv_separation: None,
            l1_tiering_runs: None,
            read: ReadCosts::default(),
        }
    }
}

impl SystemConfig {
    /// Raw bytes of one key-value pair (user key + value; the 8-byte mark
    /// fields are added where internal-key lengths matter).
    pub fn pair_raw_bytes(&self) -> u64 {
        (self.key_len + self.value_len) as u64
    }

    /// Stored bytes of one pair after compression.
    pub fn pair_stored_bytes(&self) -> f64 {
        self.pair_raw_bytes() as f64 * self.compression_ratio
    }

    /// Internal key length (the paper's `L_key`): user key + 8 mark bytes.
    pub fn internal_key_len(&self) -> usize {
        self.key_len + 8
    }

    /// Byte budget for level `i >= 1`.
    pub fn max_bytes_for_level(&self, level: usize) -> u64 {
        let mut b = self.level1_bytes;
        for _ in 1..level {
            b = b.saturating_mul(self.leveling_ratio);
        }
        b
    }

    /// True when key-value separation is on *and* this workload's values
    /// clear the threshold (sub-threshold values stay inline, so the run
    /// degenerates to the baseline).
    pub fn separated(&self) -> bool {
        matches!(self.kv_separation, Some(t) if self.value_len >= t)
    }

    /// Value bytes per entry as the *tree* sees them: the pointer when
    /// separation applies, the value itself otherwise.
    pub fn tree_value_len(&self) -> usize {
        if self.separated() {
            VLOG_POINTER_LEN
        } else {
            self.value_len
        }
    }

    /// Raw bytes of one tree entry (user key + tree value).
    pub fn tree_pair_raw_bytes(&self) -> u64 {
        (self.key_len + self.tree_value_len()) as u64
    }

    /// Stored bytes of one tree entry. Pointer entries are random bytes
    /// to the block compressor, so separation forfeits their compression.
    pub fn tree_pair_stored_bytes(&self) -> f64 {
        if self.separated() {
            self.tree_pair_raw_bytes() as f64
        } else {
            self.pair_stored_bytes()
        }
    }

    /// Enables key-value separation at `threshold` bytes.
    pub fn with_kv_separation(mut self, threshold: usize) -> Self {
        self.kv_separation = Some(threshold);
        self
    }

    /// Baseline/offload variants of this config.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the number of engine instances (clamped to at least 1).
    pub fn with_engine_slots(mut self, slots: usize) -> Self {
        self.engine_slots = slots.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iv() {
        let c = SystemConfig::default();
        assert_eq!(c.key_len, 16);
        assert_eq!(c.value_len, 128);
        assert_eq!(c.leveling_ratio, 10);
        assert_eq!(c.block_bytes, 4096);
        assert_eq!(c.internal_key_len(), 24);
        assert_eq!(c.max_bytes_for_level(2), 100 << 20);
    }
}
