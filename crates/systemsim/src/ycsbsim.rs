//! YCSB simulation (the paper's §VII-D / Fig. 16): one client thread
//! issues the Table IX operation mixes against the simulated store.
//!
//! Writes feed the same memtable/flush/compaction machinery as the write
//! simulation. Reads are charged an analytic cost: lookup CPU, a block
//! cache whose hit rate follows the zipfian mass of the hottest cached
//! blocks, and a disk block fetch + decompression on a miss. Scans pay a
//! seek plus a per-entry sequential cost.

use simkit::queue::to_secs_f64;
use workloads::{OpKind, YcsbRunner, YcsbWorkload};

use crate::config::SystemConfig;
use crate::report::SimReport;
use crate::writesim::WriteSim;

/// Results of one YCSB run.
#[derive(Debug, Clone)]
pub struct YcsbReport {
    /// Workload executed.
    pub workload: YcsbWorkload,
    /// Operations executed.
    pub ops: u64,
    /// Total simulated time, seconds.
    pub total_time_sec: f64,
    /// Operations per second (the paper's Fig. 16 metric).
    pub ops_per_sec: f64,
    /// Block cache hit rate applied to reads.
    pub cache_hit_rate: f64,
    /// The embedded write-path report (stalls, compactions...).
    pub write_report: SimReport,
}

/// YCSB driver over the metadata store simulation.
pub struct YcsbSim {
    cfg: SystemConfig,
    workload: YcsbWorkload,
    /// Records loaded before the run.
    record_count: u64,
    ops: u64,
    seed: u64,
}

impl YcsbSim {
    /// Creates a simulation of `ops` operations of `workload` over a
    /// database preloaded with `record_count` records.
    pub fn new(
        cfg: SystemConfig,
        workload: YcsbWorkload,
        record_count: u64,
        ops: u64,
        seed: u64,
    ) -> Self {
        YcsbSim {
            cfg,
            workload,
            record_count,
            ops,
            seed,
        }
    }

    /// Zipfian mass of the hottest `k` of `n` items (θ = 0.99): the block
    /// cache hit rate when the cache holds `k` hot blocks.
    fn zipf_top_k_mass(k: u64, n: u64) -> f64 {
        if n == 0 || k >= n {
            return 1.0;
        }
        // H(k)/H(n) with H(x) ≈ x^(1-θ)/(1-θ) + ζ-offset; θ=0.99 makes
        // the generalized harmonic ≈ 100·x^0.01 - const.
        let theta = workloads::Zipfian::DEFAULT_THETA;
        let h = |x: f64| (x.powf(1.0 - theta) - 1.0) / (1.0 - theta) + 1.0;
        (h(k.max(1) as f64) / h(n as f64)).clamp(0.0, 1.0)
    }

    /// Average time of one read at the current database size.
    fn read_time(&self, records: u64, hit_rate: f64) -> f64 {
        let rc = &self.cfg.read;
        let miss_cost = to_secs_f64(self.cfg.disk.random_read_time(self.cfg.block_bytes))
            + self.cfg.block_bytes as f64 / rc.decompress_bw;
        let _ = records;
        rc.lookup_cpu + (1.0 - hit_rate) * miss_cost
    }

    /// Runs the workload and returns the report.
    pub fn run(self) -> YcsbReport {
        // The write side reuses WriteSim's machinery in "op-driven" mode:
        // we account read time on the client clock and push write bytes
        // through a WriteSim whose front end cost is zero (the client
        // clock carries it instead).
        let mut write_cfg = self.cfg;
        write_cfg.front_end_op_cost = 0.0;
        // Zipfian update workloads overwrite a small hot set, so most
        // merged entries are shadowed duplicates: write amplification
        // collapses relative to unique-key fills. Loads insert unique
        // keys; D/E insert fresh keys with few updates.
        write_cfg.dedup_fraction = match self.workload {
            YcsbWorkload::Load => 0.05,
            YcsbWorkload::A | YcsbWorkload::B | YcsbWorkload::F => 0.70,
            YcsbWorkload::D | YcsbWorkload::E => 0.25,
            YcsbWorkload::C => self.cfg.dedup_fraction,
        };

        let mut runner = YcsbRunner::new(self.workload, self.record_count, self.seed);

        // Cache hit rate: block cache + OS page cache hold the hottest
        // blocks; zipfian mass of that prefix is the hit probability.
        let cache_bytes = self.cfg.read.block_cache_bytes + self.cfg.read.os_cache_bytes;
        let cache_blocks = cache_bytes / self.cfg.block_bytes.max(1);
        let db_bytes = self.record_count * self.cfg.pair_raw_bytes();
        let db_blocks = (db_bytes / self.cfg.block_bytes.max(1)).max(1);
        let hit_rate = Self::zipf_top_k_mass(cache_blocks, db_blocks);

        // Client-side time accumulators.
        let mut client_time = 0.0f64;
        let mut write_bytes = 0u64;
        let mut write_ops = 0u64;
        let pair = self.cfg.pair_raw_bytes();

        for _ in 0..self.ops {
            let op = runner.next_op();
            match op.kind {
                OpKind::Insert | OpKind::Update => {
                    client_time += self.cfg.front_end_op_cost;
                    write_bytes += pair;
                    write_ops += 1;
                }
                OpKind::Read => {
                    client_time += self.read_time(runner.record_count, hit_rate);
                }
                OpKind::Scan => {
                    client_time += self.read_time(runner.record_count, hit_rate)
                        + op.scan_len as f64 * self.cfg.read.scan_entry_cpu;
                }
                OpKind::ReadModifyWrite => {
                    client_time +=
                        self.read_time(runner.record_count, hit_rate) + self.cfg.front_end_op_cost;
                    write_bytes += pair;
                    write_ops += 1;
                }
            }
        }

        // Drive the produced write volume through the store simulation to
        // capture stalls and compaction interference. The write side and
        // the client serialize (one client thread), so total time is the
        // max of the client's own time and the store's pace for the write
        // stream, plus whichever read time the client accrued.
        let write_report = if write_bytes > 0 {
            WriteSim::new(write_cfg, write_bytes).run()
        } else {
            SimReport::default()
        };

        // One client thread: its own CPU/read time interleaves with the
        // store's admission pace for the write stream. The run cannot end
        // before either finishes, so total time is the larger of the two
        // (reads overlap store-side background work, not vice versa).
        let store_time = write_report.total_time_sec;
        let total_time = client_time.max(store_time);
        let _ = write_ops;

        let ops_per_sec = if total_time > 0.0 {
            self.ops as f64 / total_time
        } else {
            0.0
        };
        YcsbReport {
            workload: self.workload,
            ops: self.ops,
            total_time_sec: total_time,
            ops_per_sec,
            cache_hit_rate: hit_rate,
            write_report,
        }
    }
}

/// Convenience: run every workload of Fig. 16 for one engine.
pub fn run_all(cfg: SystemConfig, record_count: u64, ops: u64, seed: u64) -> Vec<YcsbReport> {
    YcsbWorkload::ALL
        .iter()
        .map(|w| YcsbSim::new(cfg, *w, record_count, ops, seed).run())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineKind;
    use fcae::FcaeConfig;

    fn small_cfg() -> SystemConfig {
        // Paper §VII-D: 16-byte keys, 1024-byte values.
        SystemConfig {
            value_len: 1024,
            ..SystemConfig::default()
        }
    }

    const RECORDS: u64 = 1_000_000; // ~1 GB at 16+1024 B
    const OPS: u64 = 300_000;

    #[test]
    fn all_workloads_run() {
        for w in YcsbWorkload::ALL {
            let r = YcsbSim::new(small_cfg(), w, RECORDS, OPS, 42).run();
            assert!(r.ops_per_sec > 0.0, "{w:?}: {r:?}");
            assert_eq!(r.ops, OPS);
        }
    }

    #[test]
    fn fcae_helps_write_heavy_workloads_most() {
        let speedup = |w: YcsbWorkload| {
            let base = YcsbSim::new(small_cfg(), w, RECORDS, OPS, 42).run();
            let fcae = YcsbSim::new(
                small_cfg().with_engine(EngineKind::Fcae(FcaeConfig::nine_input())),
                w,
                RECORDS,
                OPS,
                42,
            )
            .run();
            fcae.ops_per_sec / base.ops_per_sec
        };
        let load = speedup(YcsbWorkload::Load);
        let a = speedup(YcsbWorkload::A);
        let c = speedup(YcsbWorkload::C);
        // Fig. 16: write-heavy workloads benefit; read-only unchanged.
        // (Which of Load/A peaks depends on scale; at the paper's 20 GB
        // scale Load dominates — asserted in the fig16 bench output.)
        assert!(a >= c * 0.99, "A {a:.2} vs C {c:.2}");
        assert!((c - 1.0).abs() < 0.05, "read-only unaffected: {c:.2}");
        assert!(load > 1.3, "load speedup {load:.2}");
        assert!(a > 1.1, "A speedup {a:.2}");
    }

    #[test]
    fn cache_mass_is_monotone() {
        let m1 = YcsbSim::zipf_top_k_mass(10, 1000);
        let m2 = YcsbSim::zipf_top_k_mass(100, 1000);
        let m3 = YcsbSim::zipf_top_k_mass(1000, 1000);
        assert!(m1 < m2 && m2 < m3);
        assert_eq!(m3, 1.0);
        assert!(m1 > 0.3, "zipfian concentrates mass: {m1}");
    }
}
