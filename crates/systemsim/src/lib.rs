//! System-level simulation of LevelDB and LevelDB-FCAE.
//!
//! The paper's end-to-end experiments (write throughput vs data size up to
//! **1024 GB**, sensitivity sweeps, YCSB) cannot be reproduced by actually
//! writing that much data. This crate simulates the *scheduling* behaviour
//! that those figures measure — memtable fills, flushes, L0
//! slowdown/stop triggers, leveled compaction, and the contention between
//! the single background thread and the compaction work — over SSTable
//! *metadata*, charging each job a duration from the calibrated models:
//!
//! * CPU merge time — [`fcae::CpuCostModel`] (fitted to the paper's
//!   Table V CPU column);
//! * FPGA kernel time — [`fcae::PipelineModel`] (the paper's Table III
//!   pipeline periods);
//! * disk and PCIe time — [`simkit::DiskModel`] / [`simkit::PcieLink`].
//!
//! The key structural difference between the two systems (paper §VI-A):
//! in baseline LevelDB the one background thread performs merge *and* I/O,
//! so flushes wait behind whole compactions; with FCAE the merge runs on
//! the device, so the host thread is free to flush concurrently.
//!
//! Small configurations of the simulator are cross-validated against the
//! real `lsm` store in the integration tests (same flush counts, same
//! write-amplification ballpark).

pub mod config;
pub mod report;
pub mod writesim;
pub mod ycsbsim;

pub use config::{EngineKind, ReadCosts, SystemConfig};
pub use report::SimReport;
pub use writesim::WriteSim;
pub use ycsbsim::{YcsbReport, YcsbSim};
