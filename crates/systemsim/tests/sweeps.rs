//! Integration assertions over the simulator's experiment sweeps: the
//! directional claims each figure rests on, checked at reduced scale so
//! they run in CI time.

use fcae::FcaeConfig;
use systemsim::writesim::mean_throughput;
use systemsim::{EngineKind, SystemConfig, WriteSim, YcsbSim};
use workloads::YcsbWorkload;

const GB: u64 = 1_000_000_000;

fn fcae9(cfg: SystemConfig) -> SystemConfig {
    cfg.with_engine(EngineKind::Fcae(FcaeConfig::nine_input()))
}

/// Fig. 10/14: baseline throughput declines monotonically with data size.
#[test]
fn baseline_declines_with_data_size() {
    let mut last = f64::INFINITY;
    for bytes in [GB / 5, GB, 4 * GB] {
        let r = WriteSim::new(
            SystemConfig {
                value_len: 512,
                ..Default::default()
            },
            bytes,
        )
        .run();
        assert!(
            r.throughput_mb_s <= last * 1.02,
            "throughput should not rise with size: {} -> {}",
            last,
            r.throughput_mb_s
        );
        last = r.throughput_mb_s;
    }
}

/// Fig. 14: the FCAE advantage persists at scale.
#[test]
fn fcae_advantage_persists_at_scale() {
    let cfg = SystemConfig {
        value_len: 512,
        ..Default::default()
    };
    for bytes in [GB, 8 * GB] {
        let base = WriteSim::new(cfg, bytes).run();
        let dev = WriteSim::new(fcae9(cfg), bytes).run();
        let speedup = dev.throughput_mb_s / base.throughput_mb_s;
        assert!(
            speedup > 1.5,
            "at {} GB speedup {speedup:.2} too small",
            bytes / GB
        );
    }
}

/// Table VIII: the PCIe share of total time is small and does not grow
/// with data size.
#[test]
fn pcie_share_small_and_nonincreasing() {
    let cfg = fcae9(SystemConfig {
        value_len: 512,
        ..Default::default()
    });
    let small = WriteSim::new(cfg, GB / 2).run();
    let large = WriteSim::new(cfg, 8 * GB).run();
    assert!(small.pcie_percent() < 10.0, "{}", small.pcie_percent());
    assert!(large.pcie_percent() <= small.pcie_percent() * 1.5 + 0.5);
}

/// Fig. 15(b) endpoints: longer values widen the FCAE advantage.
#[test]
fn value_length_widens_the_gap() {
    let speedup = |lv: usize| {
        let cfg = SystemConfig {
            value_len: lv,
            ..Default::default()
        };
        let (b, _) = mean_throughput(cfg, GB, 3);
        let (f, _) = mean_throughput(fcae9(cfg), GB, 3);
        f / b
    };
    let short = speedup(64);
    let long = speedup(2048);
    assert!(long > short * 0.95, "short {short:.2} long {long:.2}");
}

/// Fig. 16 endpoints: write-heavy workloads gain, read-only does not.
#[test]
fn ycsb_gains_follow_write_ratio() {
    let cfg = SystemConfig {
        value_len: 1024,
        ..Default::default()
    };
    let records = 2_000_000;
    let ops = 500_000;
    let run = |w, c| YcsbSim::new(c, w, records, ops, 7).run().ops_per_sec;
    let load_gain = run(YcsbWorkload::Load, fcae9(cfg)) / run(YcsbWorkload::Load, cfg);
    let c_gain = run(YcsbWorkload::C, fcae9(cfg)) / run(YcsbWorkload::C, cfg);
    assert!(load_gain > 1.5, "Load gain {load_gain:.2}");
    assert!((c_gain - 1.0).abs() < 0.02, "read-only gain {c_gain:.2}");
}

/// The headline: somewhere in the evaluated space the speedup reaches the
/// multiples the paper reports (its max is 6.4x).
#[test]
fn headline_speedup_is_reachable() {
    // Tiered configuration with the 9-input engine (the extension bench's
    // sweet spot).
    let cfg = SystemConfig {
        value_len: 512,
        l1_tiering_runs: Some(4),
        ..Default::default()
    };
    let base = WriteSim::new(cfg, GB).run();
    let dev = WriteSim::new(fcae9(cfg), GB).run();
    let speedup = dev.throughput_mb_s / base.throughput_mb_s;
    assert!(
        speedup > 4.0,
        "headline-scale speedup not reached: {speedup:.2}"
    );
}
