//! `bench_snapshot` — the perf-trajectory harness.
//!
//! Runs the functional merge microbenchmark (N-way, db_bench-style
//! values) on both engines plus a `db_bench`-style fillrandom pass, and
//! appends one labelled JSON snapshot to a trajectory file (default
//! `BENCH_PR2.json`). Each PR that touches a hot path appends its own
//! before/after snapshots, so the wall-clock history of the functional
//! data path is versioned alongside the code:
//!
//! ```sh
//! cargo run --release -p bench --bin bench_snapshot -- \
//!     --label pr2-after --out BENCH_PR2.json
//! ```
//!
//! Alongside ops/s and MB/s, the harness counts heap allocations during
//! the merge (via a counting global allocator) and reports allocations
//! and allocated bytes *per key-value pair* — the zero-allocation claim
//! of the optimized merge path, as a number.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bench::inputs::kernel_request;
use bench::{append_snapshot, build_kernel_inputs, KernelInputSpec, MemFactory};
use fcae::{FcaeConfig, FcaeEngine};
use lsm::compaction::{CompactionEngine, CompactionInput, CpuCompactionEngine};
use lsm::{Db, Options};
use sstable::env::MemEnv;
use workloads::{KeyFormat, ValueGenerator};

/// Counts every heap allocation (and its bytes) made through the global
/// allocator, so merge-loop allocation behavior is measurable end to end.
struct CountingAllocator;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; the relaxed atomic counter bumps allocate nothing and cannot
// reenter the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: forwards `layout` unchanged to `System.alloc`; caller
    // obligations are exactly the system allocator's.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from a matching `alloc`/`realloc` on
    // this same wrapper, which always returns `System` memory.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    // SAFETY: same pass-through argument as `dealloc` — `ptr` was
    // produced by `System` via this wrapper.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOC_COUNT.load(Ordering::Relaxed),
        ALLOC_BYTES.load(Ordering::Relaxed),
    )
}

struct Config {
    label: String,
    out: String,
    entries_per_input: u64,
    db_num: u64,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        label: "snapshot".into(),
        out: "BENCH_PR2.json".into(),
        entries_per_input: 5_000,
        db_num: 30_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = args[i].clone();
                i += 1;
                let v = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("missing value for {f}"))?;
                (f, v)
            }
        };
        match flag.as_str() {
            "--label" => cfg.label = value,
            "--out" => cfg.out = value,
            "--entries" => {
                cfg.entries_per_input = value.parse().map_err(|e| format!("--entries: {e}"))?;
            }
            "--db-num" => cfg.db_num = value.parse().map_err(|e| format!("--db-num: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(cfg)
}

/// One engine's merge-microbench result.
struct MergeResult {
    wall_sec: f64,
    pairs: u64,
    input_bytes: u64,
    allocs_per_kv: f64,
    alloc_bytes_per_kv: f64,
}

impl MergeResult {
    fn ops_per_s(&self) -> f64 {
        self.pairs as f64 / self.wall_sec
    }

    fn mb_per_s(&self) -> f64 {
        self.input_bytes as f64 / self.wall_sec / 1e6
    }

    fn json(&self) -> String {
        format!(
            "{{\"ops_per_s\": {:.0}, \"mb_per_s\": {:.2}, \"wall_ms\": {:.3}, \
             \"allocs_per_kv\": {:.4}, \"alloc_bytes_per_kv\": {:.1}}}",
            self.ops_per_s(),
            self.mb_per_s(),
            self.wall_sec * 1e3,
            self.allocs_per_kv,
            self.alloc_bytes_per_kv
        )
    }
}

fn clone_inputs(inputs: &[CompactionInput]) -> Vec<CompactionInput> {
    inputs
        .iter()
        .map(|i| CompactionInput {
            tables: i.tables.clone(),
        })
        .collect()
}

const MERGE_REPEATS: usize = 5;

/// The ISSUE-2 acceptance microbench: a 4-input merge of 1 KiB values
/// through the FCAE functional kernel (decode → compare → encode over
/// prepared device images, host I/O excluded). `compression` applies to
/// both the prepared input tables and the kernel's output blocks, so the
/// `None` variant isolates the merge data path from the Snappy codec.
fn merge_micro_fcae(
    spec: &KernelInputSpec,
    inputs: &[CompactionInput],
    compression: sstable::format::CompressionType,
) -> MergeResult {
    let config = FcaeConfig::nine_input().with_n(spec.n_inputs);
    let engine = FcaeEngine::new(config);
    let images = fcae::memory::build_input_images(inputs, config.w_in).expect("images");
    let input_bytes: u64 = inputs.iter().map(|i| i.bytes()).sum();

    let run = || -> (f64, u64, u64, u64) {
        let (c0, b0) = alloc_snapshot();
        let t0 = Instant::now();
        let (tables, _model, report) = engine
            .run_kernel(&images, 1 << 40, true, compression, 4096, 2 << 20)
            .expect("kernel");
        let wall = t0.elapsed().as_secs_f64();
        std::hint::black_box(&tables);
        let (c1, b1) = alloc_snapshot();
        (wall, report.pairs_compared, c1 - c0, b1 - b0)
    };

    // Warm-up + best-of-N, then one counted pass.
    let mut best = f64::MAX;
    let mut pairs = 0;
    for _ in 0..MERGE_REPEATS {
        let (wall, p, _, _) = run();
        best = best.min(wall);
        pairs = p;
    }
    let (_, _, allocs, bytes) = run();
    MergeResult {
        wall_sec: best,
        pairs,
        input_bytes,
        allocs_per_kv: allocs as f64 / pairs as f64,
        alloc_bytes_per_kv: bytes as f64 / pairs as f64,
    }
}

/// The same merge through the native CPU engine (real table building into
/// a `MemEnv`).
fn merge_micro_cpu(inputs: &[CompactionInput], env: &MemEnv) -> MergeResult {
    let input_bytes: u64 = inputs.iter().map(|i| i.bytes()).sum();
    let run = || -> (f64, u64, u64, u64) {
        let req = kernel_request(clone_inputs(inputs));
        let factory = MemFactory::new(env.clone());
        let (c0, b0) = alloc_snapshot();
        let t0 = Instant::now();
        let outcome = CpuCompactionEngine.compact(&req, &factory).expect("cpu");
        let wall = t0.elapsed().as_secs_f64();
        let (c1, b1) = alloc_snapshot();
        (
            wall,
            outcome.entries_written + outcome.entries_dropped,
            c1 - c0,
            b1 - b0,
        )
    };
    let mut best = f64::MAX;
    let mut pairs = 0;
    for _ in 0..MERGE_REPEATS {
        let (wall, p, _, _) = run();
        best = best.min(wall);
        pairs = p;
    }
    let (_, _, allocs, bytes) = run();
    MergeResult {
        wall_sec: best,
        pairs,
        input_bytes,
        allocs_per_kv: allocs as f64 / pairs as f64,
        alloc_bytes_per_kv: bytes as f64 / pairs as f64,
    }
}

/// db_bench-style fillrandom against the real store on the local
/// filesystem, plus the time to drain the resulting compaction backlog.
fn db_fillrandom(num: u64) -> String {
    let dir = std::env::temp_dir().join(format!("bench-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Small enough write buffer / files that the fill actually flushes
    // and compacts — otherwise the merge path never runs.
    let options = Options {
        slowdown_sleep: false,
        write_buffer_size: 512 << 10,
        max_file_size: 256 << 10,
        ..Default::default()
    };
    let db = Db::open_with_engine(&dir, options, Arc::new(CpuCompactionEngine)).expect("open db");

    let kf = KeyFormat { key_len: 16 };
    let mut values = ValueGenerator::new(301, 0.5);
    let mut rng = simkit::SplitMix64::new(1234);
    let workload = workloads::DbBenchWorkload::FillRandom;

    let t0 = Instant::now();
    for op in 0..num {
        let k = workload.key_number(op, num, &mut rng);
        db.put(&kf.format(k), values.generate(128)).expect("put");
    }
    db.flush().expect("flush");
    let fill = t0.elapsed().as_secs_f64();
    let tq = Instant::now();
    db.wait_for_background_quiescence();
    let quiesce = tq.elapsed().as_secs_f64();
    let stats = db.stats();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    let micros_per_op = fill * 1e6 / num as f64;
    let mb_s = num as f64 * (16.0 + 128.0) / fill / 1e6;
    format!(
        "{{\"num\": {num}, \"micros_per_op\": {micros_per_op:.3}, \"mb_per_s\": {mb_s:.2}, \
         \"quiesce_ms\": {:.1}, \"engine_compactions\": {}}}",
        quiesce * 1e3,
        stats.engine_compactions
    )
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let spec = KernelInputSpec {
        n_inputs: 4,
        value_len: 1024,
        entries_per_input: cfg.entries_per_input,
        ..Default::default()
    };
    eprintln!(
        "merge micro: {} inputs x {} entries x {} B values",
        spec.n_inputs, spec.entries_per_input, spec.value_len
    );
    let env = MemEnv::new();
    let inputs = build_kernel_inputs(&env, &spec);
    let raw_spec = KernelInputSpec {
        table_compression: sstable::format::CompressionType::None,
        ..spec
    };
    let raw_inputs = build_kernel_inputs(&env, &raw_spec);

    let fcae = merge_micro_fcae(&spec, &inputs, sstable::format::CompressionType::Snappy);
    eprintln!(
        "  fcae kernel (snappy): {:>10.0} ops/s {:>8.2} MB/s {:>8.4} allocs/kv",
        fcae.ops_per_s(),
        fcae.mb_per_s(),
        fcae.allocs_per_kv
    );
    let fcae_raw = merge_micro_fcae(
        &raw_spec,
        &raw_inputs,
        sstable::format::CompressionType::None,
    );
    eprintln!(
        "  fcae kernel (raw)   : {:>10.0} ops/s {:>8.2} MB/s {:>8.4} allocs/kv",
        fcae_raw.ops_per_s(),
        fcae_raw.mb_per_s(),
        fcae_raw.allocs_per_kv
    );
    let cpu = merge_micro_cpu(&inputs, &env);
    eprintln!(
        "  cpu engine  (snappy): {:>10.0} ops/s {:>8.2} MB/s {:>8.4} allocs/kv",
        cpu.ops_per_s(),
        cpu.mb_per_s(),
        cpu.allocs_per_kv
    );

    eprintln!("db_bench fillrandom: {} ops", cfg.db_num);
    let db = db_fillrandom(cfg.db_num);
    eprintln!("  {db}");

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let snapshot = format!(
        "  {{\"label\": \"{}\", \"unix_time\": {unix_time}, \"merge_micro\": {{\"spec\": \
         {{\"n_inputs\": {}, \"value_len\": {}, \"entries_per_input\": {}}}, \"fcae_kernel\": {}, \
         \"fcae_kernel_raw\": {}, \"cpu_engine\": {}}}, \"db_bench_fillrandom\": {}}}",
        cfg.label,
        spec.n_inputs,
        spec.value_len,
        spec.entries_per_input,
        fcae.json(),
        fcae_raw.json(),
        cpu.json(),
        db
    );
    if let Err(e) = append_snapshot(&cfg.out, &snapshot) {
        eprintln!("error writing {}: {e}", cfg.out);
        std::process::exit(1);
    }
    println!("appended snapshot '{}' to {}", cfg.label, cfg.out);
}
