//! `vlog_compare` — the key-value-separation acceptance benchmark.
//!
//! Runs the same db_bench-style fillrandom workload (1 KiB values, the
//! regime separation targets) twice against the real store on the local
//! filesystem: once inline, once with values routed to the value log.
//! Reports fill throughput, compaction bytes moved, and point-read cost
//! (the pointer-dereference penalty), and appends one labelled JSON
//! snapshot to a trajectory file (default `BENCH_PR9.json`):
//!
//! ```sh
//! cargo run --release -p bench --bin vlog_compare -- \
//!     --label pr9-after --out BENCH_PR9.json
//! ```
//!
//! The separation claim, as numbers: `compaction_bytes_moved` shrinks by
//! roughly `value_len / pointer_len` while `fill_mb_per_s` rises, because
//! flushes and compactions move 21-byte pointers instead of 1 KiB values.

use std::sync::Arc;
use std::time::Instant;

use bench::append_snapshot;
use lsm::compaction::CpuCompactionEngine;
use lsm::{Db, Options};
use workloads::{KeyFormat, ValueGenerator};

struct Config {
    label: String,
    out: String,
    num: u64,
    value_len: usize,
    reads: u64,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        label: "snapshot".into(),
        out: "BENCH_PR9.json".into(),
        num: 30_000,
        value_len: 1024,
        reads: 2_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = args[i].clone();
                i += 1;
                let v = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("missing value for {f}"))?;
                (f, v)
            }
        };
        match flag.as_str() {
            "--label" => cfg.label = value,
            "--out" => cfg.out = value,
            "--num" => cfg.num = value.parse().map_err(|e| format!("--num: {e}"))?,
            "--value-len" => {
                cfg.value_len = value.parse().map_err(|e| format!("--value-len: {e}"))?;
            }
            "--reads" => cfg.reads = value.parse().map_err(|e| format!("--reads: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(cfg)
}

/// One arm (inline or separated) of the comparison.
fn run_arm(cfg: &Config, separation: Option<usize>) -> String {
    let tag = if separation.is_some() {
        "vlog"
    } else {
        "inline"
    };
    let dir = std::env::temp_dir().join(format!("vlog-compare-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Small write buffer / files so the fill actually flushes and
    // compacts — the comparison is about compaction volume.
    let options = Options {
        slowdown_sleep: false,
        write_buffer_size: 512 << 10,
        max_file_size: 256 << 10,
        value_log_threshold_bytes: separation,
        ..Default::default()
    };
    let db = Db::open_with_engine(&dir, options, Arc::new(CpuCompactionEngine)).expect("open db");

    let kf = KeyFormat { key_len: 16 };
    let mut values = ValueGenerator::new(301, 0.5);
    let mut rng = simkit::SplitMix64::new(1234);
    let workload = workloads::DbBenchWorkload::FillRandom;

    let t0 = Instant::now();
    for op in 0..cfg.num {
        let k = workload.key_number(op, cfg.num, &mut rng);
        db.put(&kf.format(k), values.generate(cfg.value_len))
            .expect("put");
    }
    db.flush().expect("flush");
    let fill = t0.elapsed().as_secs_f64();
    let tq = Instant::now();
    db.wait_for_background_quiescence();
    let quiesce = tq.elapsed().as_secs_f64();

    // Point reads over the settled tree: the separated arm pays one
    // extra log read per get, which this measures instead of hiding.
    let mut read_rng = simkit::SplitMix64::new(5678);
    let tr = Instant::now();
    let mut found = 0u64;
    for op in 0..cfg.reads {
        let k = workload.key_number(op.wrapping_mul(7919) % cfg.num, cfg.num, &mut read_rng);
        if db.get(&kf.format(k)).expect("get").is_some() {
            found += 1;
        }
    }
    let read = tr.elapsed().as_secs_f64();

    let stats = db.stats();
    drop(db);
    // VLOG_COMPARE_KEEP=1 leaves the stores behind so `lsm-dbtool
    // stats|verify` can be pointed at a real separated database.
    if std::env::var_os("VLOG_COMPARE_KEEP").is_none() {
        let _ = std::fs::remove_dir_all(&dir);
    } else {
        eprintln!("  kept db dir: {}", dir.display());
    }

    let fill_micros_per_op = fill * 1e6 / cfg.num as f64;
    let fill_mb_s = cfg.num as f64 * (16.0 + cfg.value_len as f64) / fill / 1e6;
    let read_micros_per_op = read * 1e6 / cfg.reads.max(1) as f64;
    let moved = stats.compaction_bytes_read + stats.compaction_bytes_written;
    format!(
        "{{\"num\": {}, \"fill_micros_per_op\": {fill_micros_per_op:.3}, \
         \"fill_mb_per_s\": {fill_mb_s:.2}, \"quiesce_ms\": {:.1}, \
         \"read_micros_per_op\": {read_micros_per_op:.3}, \"reads_found\": {found}, \
         \"compaction_bytes_moved\": {moved}, \"flushes\": {}, \"compactions\": {}}}",
        cfg.num,
        quiesce * 1e3,
        stats.flushes,
        stats.engine_compactions + stats.sw_fallback_compactions,
    )
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "vlog compare: fillrandom {} ops x {} B values, {} reads",
        cfg.num, cfg.value_len, cfg.reads
    );
    let inline = run_arm(&cfg, None);
    eprintln!("  inline:    {inline}");
    let separated = run_arm(&cfg, Some(512));
    eprintln!("  separated: {separated}");

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let snapshot = format!(
        "  {{\"label\": \"{}\", \"unix_time\": {unix_time}, \"spec\": {{\"num\": {}, \
         \"value_len\": {}, \"threshold\": 512, \"reads\": {}}}, \"inline\": {inline}, \
         \"separated\": {separated}}}",
        cfg.label, cfg.num, cfg.value_len, cfg.reads
    );
    if let Err(e) = append_snapshot(&cfg.out, &snapshot) {
        eprintln!("error writing {}: {e}", cfg.out);
        std::process::exit(1);
    }
    println!("appended snapshot '{}' to {}", cfg.label, cfg.out);
}
