//! `write_scaling` — multi-writer throughput curve for the parallel
//! write path.
//!
//! Runs a sync-write fillrandom pass (every commit fsyncs the WAL) at
//! 1/2/4/8 client threads against the real filesystem and appends one
//! labelled JSON row to the trajectory file (default `BENCH_PR7.json`):
//!
//! ```sh
//! cargo run --release -p bench --bin write_scaling -- \
//!     --label pr7 --out BENCH_PR7.json
//! ```
//!
//! The interesting number on a small machine is not CPU parallelism —
//! with one core there is none — but *commit amortization*: N writers
//! that each need a durable ack ride one leader's fsync instead of
//! paying for N, so ops/s should rise with the thread count roughly
//! until the group spans every concurrent writer. Each point also
//! records the observed group-commit shape (leaders, followers, groups)
//! so a scaling regression can be attributed: flat ops/s with
//! `followers ≈ 0` means grouping broke, flat ops/s with healthy groups
//! means the fsync itself got slower.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench::append_snapshot;
use lsm::{Db, Options};
use simkit::SplitMix64;
use workloads::{DbBenchWorkload, KeyFormat, ValueGenerator};

struct Config {
    label: String,
    out: String,
    /// Ops per thread (every point writes `threads * per_thread` keys).
    per_thread: u64,
    value_size: usize,
    threads: Vec<u64>,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        label: "snapshot".into(),
        out: "BENCH_PR7.json".into(),
        per_thread: 2_000,
        value_size: 128,
        threads: vec![1, 2, 4, 8],
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = args[i].clone();
                i += 1;
                let v = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("missing value for {f}"))?;
                (f, v)
            }
        };
        match flag.as_str() {
            "--label" => cfg.label = value,
            "--out" => cfg.out = value,
            "--per-thread" => {
                cfg.per_thread = value.parse().map_err(|e| format!("--per-thread: {e}"))?;
            }
            "--value-size" => {
                cfg.value_size = value.parse().map_err(|e| format!("--value-size: {e}"))?;
            }
            "--threads" => {
                cfg.threads = value
                    .split(',')
                    .map(|s| s.parse().map_err(|e| format!("--threads: {e}")))
                    .collect::<Result<_, _>>()?;
                if cfg.threads.is_empty() || cfg.threads.contains(&0) {
                    return Err("--threads needs a comma list of counts >= 1".into());
                }
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(cfg)
}

struct Point {
    threads: u64,
    ops_per_s: f64,
    micros_per_op: f64,
    group_commits: u64,
    grouped_writes: u64,
    leaders: u64,
    followers: u64,
}

impl Point {
    fn avg_group(&self) -> f64 {
        if self.group_commits == 0 {
            0.0
        } else {
            self.grouped_writes as f64 / self.group_commits as f64
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"threads\": {}, \"ops_per_s\": {:.0}, \"micros_per_op\": {:.1}, \
             \"group_commits\": {}, \"grouped_writes\": {}, \"avg_group\": {:.2}, \
             \"leaders\": {}, \"followers\": {}}}",
            self.threads,
            self.ops_per_s,
            self.micros_per_op,
            self.group_commits,
            self.grouped_writes,
            self.avg_group(),
            self.leaders,
            self.followers
        )
    }
}

/// One curve point: sync-write fillrandom with `threads` writers over a
/// fresh store on the local filesystem.
fn run_point(threads: u64, per_thread: u64, value_size: usize) -> Point {
    let dir = std::env::temp_dir().join(format!("write-scaling-{}-t{threads}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let options = Options {
        // Per-commit durability: this is the regime group commit exists
        // for. Buffered writes would measure memtable insertion instead.
        sync_writes: true,
        slowdown_sleep: false,
        ..Default::default()
    };
    let db = Db::open(&dir, options).expect("open db");

    let kf = KeyFormat { key_len: 16 };
    let total = threads * per_thread;
    let done = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = &db;
            let done = &done;
            s.spawn(move || {
                let mut values = ValueGenerator::new(301 + t, 0.5);
                let mut rng = SplitMix64::new(1234 + t.wrapping_mul(0x9e37_79b9));
                let workload = DbBenchWorkload::FillRandom;
                for i in 0..per_thread {
                    let k = workload.key_number(t * per_thread + i, total, &mut rng);
                    db.put(&kf.format(k), values.generate(value_size))
                        .expect("put");
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(done.load(Ordering::Relaxed), total);

    let stats = db.stats();
    let registry = &db.obs().registry;
    let point = Point {
        threads,
        ops_per_s: total as f64 / elapsed,
        micros_per_op: elapsed * 1e6 / total as f64,
        group_commits: stats.group_commits,
        grouped_writes: stats.grouped_writes,
        leaders: registry.counter_value("lsm.write.leader").unwrap_or(0),
        followers: registry.counter_value("lsm.write.follower").unwrap_or(0),
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    point
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    eprintln!(
        "write scaling: sync fillrandom, {} ops/thread, {} B values, threads {:?}",
        cfg.per_thread, cfg.value_size, cfg.threads
    );
    let mut points = Vec::new();
    for &t in &cfg.threads {
        // Warm-up pass at each thread count settles the page cache and
        // the filesystem's journal before the measured run.
        let _ = run_point(t, cfg.per_thread / 4, cfg.value_size);
        let p = run_point(t, cfg.per_thread, cfg.value_size);
        eprintln!(
            "  {:>2} threads: {:>9.0} ops/s  {:>8.1} us/op  avg group {:>5.2}  \
             ({} leaders / {} followers)",
            p.threads,
            p.ops_per_s,
            p.micros_per_op,
            p.avg_group(),
            p.leaders,
            p.followers
        );
        points.push(p);
    }

    let base = points
        .iter()
        .find(|p| p.threads == 1)
        .map_or_else(|| points[0].ops_per_s, |p| p.ops_per_s);
    for p in &points {
        eprintln!(
            "  speedup at {} threads: {:.2}x",
            p.threads,
            p.ops_per_s / base
        );
    }

    let unix_time = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows: Vec<String> = points.iter().map(Point::json).collect();
    let snapshot = format!(
        "  {{\"label\": \"{}\", \"unix_time\": {unix_time}, \"workload\": \"sync_fillrandom\", \
         \"value_size\": {}, \"ops_per_thread\": {}, \"points\": [{}]}}",
        cfg.label,
        cfg.value_size,
        cfg.per_thread,
        rows.join(", ")
    );
    if let Err(e) = append_snapshot(&cfg.out, &snapshot) {
        eprintln!("error writing {}: {e}", cfg.out);
        std::process::exit(1);
    }
    println!("appended snapshot '{}' to {}", cfg.label, cfg.out);
}
