//! `db_bench` — LevelDB's benchmark tool, re-implemented against the real
//! store (not the simulator), with engine selection.
//!
//! ```sh
//! db_bench --benchmarks fillseq,fillrandom,readrandom,overwrite \
//!          --num 100000 --value-size 128 --engine fcae --n-inputs 9
//! ```
//!
//! `--threads N` runs each benchmark with N concurrent client threads
//! sharing the store (the op count is split across threads), exercising
//! the parallel write path: sequence reservation, the sharded memtable,
//! and leader-elected WAL group commit. `--sync` turns on per-write WAL
//! syncs, where group commit amortizes the fsync across writers. The
//! `ycsb-a` benchmark runs the 50/50 read/update zipfian mix.
//!
//! `--fault-every N` injects a transient device fault every Nth
//! compaction dispatch (plus a mid-job timeout every 3Nth) through the
//! offload scheduler; combine with `--stats` to see the
//! `offload.fault.*` and `lsm.bg-error.*` counters after the run.
//!
//! Unlike the simulator-backed benches (which model the paper's 2019
//! hardware), this measures *this machine's* wall clock — useful for
//! regression testing the real store and for comparing the functional
//! engines' host-side costs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use fcae::{FcaeConfig, FcaeEngine};
use lsm::compaction::{CompactionEngine, CpuCompactionEngine};
use lsm::{Db, Options};
use offload::{DeviceFaultKind, OffloadConfig, OffloadService};
use simkit::SplitMix64;
use workloads::{DbBenchWorkload, KeyFormat, OpKind, ValueGenerator, YcsbRunner, YcsbWorkload};

struct Config {
    benchmarks: Vec<String>,
    num: u64,
    value_size: usize,
    key_size: usize,
    engine: String,
    n_inputs: usize,
    db_path: PathBuf,
    /// Concurrent client threads per benchmark (ops are split evenly).
    threads: usize,
    /// Sync the WAL on every write (per-commit fsync, amortized by
    /// group commit when `threads > 1`).
    sync: bool,
    /// Dump the store's stats/metrics/trace exports after the run.
    stats: bool,
    /// Inject a transient device fault every Nth compaction dispatch (and
    /// a mid-job timeout every 3Nth), exercising the CPU-fallback path
    /// under load. 0 disables injection.
    fault_every: u64,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        benchmarks: vec!["fillseq".into(), "fillrandom".into(), "readrandom".into()],
        num: 100_000,
        value_size: 128,
        key_size: 16,
        engine: "cpu".into(),
        n_inputs: 9,
        db_path: std::env::temp_dir().join("fcae-db-bench"),
        threads: 1,
        sync: false,
        stats: false,
        fault_every: 0,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--stats" {
            cfg.stats = true;
            i += 1;
            continue;
        }
        if args[i] == "--sync" {
            cfg.sync = true;
            i += 1;
            continue;
        }
        let (flag, value) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = args[i].clone();
                i += 1;
                let v = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("missing value for {f}"))?;
                (f, v)
            }
        };
        match flag.as_str() {
            "--benchmarks" => cfg.benchmarks = value.split(',').map(|s| s.to_string()).collect(),
            "--num" => cfg.num = value.parse().map_err(|e| format!("--num: {e}"))?,
            "--value-size" => {
                cfg.value_size = value.parse().map_err(|e| format!("--value-size: {e}"))?;
            }
            "--key-size" => cfg.key_size = value.parse().map_err(|e| format!("--key-size: {e}"))?,
            "--threads" => {
                cfg.threads = value.parse().map_err(|e| format!("--threads: {e}"))?;
                if cfg.threads == 0 {
                    return Err("--threads must be >= 1".into());
                }
            }
            "--engine" => cfg.engine = value,
            "--n-inputs" => cfg.n_inputs = value.parse().map_err(|e| format!("--n-inputs: {e}"))?,
            "--db" => cfg.db_path = PathBuf::from(value),
            "--fault-every" => {
                cfg.fault_every = value.parse().map_err(|e| format!("--fault-every: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(cfg)
}

fn device_config(cfg: &Config) -> FcaeConfig {
    if cfg.n_inputs > 2 {
        FcaeConfig::nine_input().with_n(cfg.n_inputs)
    } else {
        FcaeConfig::two_input()
    }
}

fn open_db(cfg: &Config) -> (Db, Option<Arc<OffloadService>>) {
    let _ = std::fs::remove_dir_all(&cfg.db_path);
    let bundle = obs::Obs::wall();
    let options = Options {
        slowdown_sleep: true,
        sync_writes: cfg.sync,
        obs: Some(Arc::clone(&bundle)),
        ..Default::default()
    };
    // Fault injection routes compactions through the offload scheduler so
    // every injected fault exercises the real fallback-and-retry path.
    if cfg.fault_every > 0 {
        if cfg.engine == "cpu" {
            eprintln!("--fault-every targets the device path; using the offload engine");
        }
        let svc = Arc::new(
            OffloadService::new(device_config(cfg), OffloadConfig::default()).with_obs(bundle),
        );
        svc.faults().fail_every(cfg.fault_every);
        svc.faults()
            .fail_every_kind(DeviceFaultKind::MidJobTimeout, cfg.fault_every * 3);
        let engine: Arc<dyn CompactionEngine> = Arc::clone(&svc) as _;
        let db = Db::open_with_engine(&cfg.db_path, options, engine).expect("open db");
        return (db, Some(svc));
    }
    let engine: Arc<dyn CompactionEngine> = match cfg.engine.as_str() {
        "cpu" => Arc::new(CpuCompactionEngine),
        "fcae" => Arc::new(FcaeEngine::new(device_config(cfg))),
        other => {
            eprintln!("unknown engine {other}; using cpu");
            Arc::new(CpuCompactionEngine)
        }
    };
    (
        Db::open_with_engine(&cfg.db_path, options, engine).expect("open db"),
        None,
    )
}

enum Bench {
    Standard(DbBenchWorkload),
    /// 50% read / 50% update, zipfian (paper Table IX workload A).
    YcsbA,
}

fn run_benchmark(name: &str, cfg: &Config, db: &Db) {
    let kf = KeyFormat {
        key_len: cfg.key_size,
    };
    let pair_bytes = (cfg.key_size + cfg.value_size) as u64;
    let threads = cfg.threads as u64;
    let per_thread = (cfg.num / threads).max(1);
    let total = per_thread * threads;

    let bench = match name {
        "fillseq" => Bench::Standard(DbBenchWorkload::FillSeq),
        "fillrandom" => Bench::Standard(DbBenchWorkload::FillRandom),
        "overwrite" => Bench::Standard(DbBenchWorkload::Overwrite),
        "readrandom" => Bench::Standard(DbBenchWorkload::ReadRandom),
        "ycsb-a" => Bench::YcsbA,
        other => {
            eprintln!("skipping unknown benchmark {other}");
            return;
        }
    };

    let start = Instant::now();
    let found = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..threads {
            let bench = &bench;
            let found = &found;
            s.spawn(move || {
                let mut values = ValueGenerator::new(301 + t, 0.5);
                let mut rng = SplitMix64::new(1234 + t.wrapping_mul(0x9e37_79b9));
                match bench {
                    Bench::Standard(w) => {
                        for i in 0..per_thread {
                            // Thread t owns op numbers [t*per_thread,
                            // (t+1)*per_thread): fillseq stripes stay
                            // sequential and disjoint; random workloads
                            // share the whole key space.
                            let op = t * per_thread + i;
                            let k = w.key_number(op, total, &mut rng);
                            let key = kf.format(k);
                            match w {
                                DbBenchWorkload::ReadRandom => {
                                    if db.get(&key).expect("get").is_some() {
                                        found.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                _ => db.put(&key, values.generate(cfg.value_size)).expect("put"),
                            }
                        }
                    }
                    Bench::YcsbA => {
                        let mut runner = YcsbRunner::new(YcsbWorkload::A, total, 42 + t);
                        for _ in 0..per_thread {
                            let op = runner.next_op();
                            let key = kf.format(op.record);
                            match op.kind {
                                OpKind::Read => {
                                    if db.get(&key).expect("get").is_some() {
                                        found.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                _ => db.put(&key, values.generate(cfg.value_size)).expect("put"),
                            }
                        }
                    }
                }
            });
        }
    });
    let read_only = matches!(bench, Bench::Standard(DbBenchWorkload::ReadRandom));
    if !read_only {
        db.flush().expect("flush");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let micros_per_op = elapsed * 1e6 / total as f64;
    let ops_s = total as f64 / elapsed;
    let mb_s = total as f64 * pair_bytes as f64 / elapsed / 1e6;
    let found = found.load(Ordering::Relaxed);
    match bench {
        Bench::Standard(DbBenchWorkload::ReadRandom) => println!(
            "{name:<12} : {micros_per_op:>9.3} micros/op; {ops_s:>9.0} ops/s; ({found} of {total} found)"
        ),
        Bench::YcsbA => println!(
            "{name:<12} : {micros_per_op:>9.3} micros/op; {ops_s:>9.0} ops/s; ({found} reads hit)"
        ),
        _ => println!(
            "{name:<12} : {micros_per_op:>9.3} micros/op; {ops_s:>9.0} ops/s; {mb_s:>7.1} MB/s"
        ),
    }
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "Keys: {} bytes each; Values: {} bytes each; Entries: {}; engine: {}; \
         threads: {}; sync: {}",
        cfg.key_size, cfg.value_size, cfg.num, cfg.engine, cfg.threads, cfg.sync
    );
    println!("------------------------------------------------");
    let (db, offload_svc) = open_db(&cfg);
    for b in cfg.benchmarks.clone() {
        run_benchmark(&b, &cfg, &db);
    }
    // Flush and drain background work BEFORE reading stats: compactions
    // queued by the last benchmark would otherwise be counted by some
    // exports and missed by others, making `--stats` non-reproducible.
    // (Flush may fail if a fault run left the store read-only — the
    // exports below should still print.)
    let _ = db.flush();
    db.wait_for_background_quiescence();
    let stats = db.stats();
    println!("------------------------------------------------");
    println!(
        "flushes {} | engine compactions {} | sw fallbacks {} | trivial {}",
        stats.flushes, stats.engine_compactions, stats.sw_fallback_compactions, stats.trivial_moves
    );
    println!(
        "compaction io {:.1} MB read / {:.1} MB written | stall {:?}",
        stats.compaction_bytes_read as f64 / 1e6,
        stats.compaction_bytes_written as f64 / 1e6,
        stats.stall_time
    );
    if stats.modeled_kernel_time.as_nanos() > 0 {
        println!(
            "modeled device time: kernel {:?}, PCIe {:?}",
            stats.modeled_kernel_time, stats.modeled_transfer_time
        );
    }
    if let Some(svc) = &offload_svc {
        let m = svc.metrics();
        println!(
            "device faults {} (transient {} / midjob-timeout {} / midjob-poisoned {}) | \
             cpu retries {} | outputs discarded {}",
            m.device_faults,
            m.faults_transient,
            m.faults_midjob_timeout,
            m.faults_midjob_poisoned,
            m.cpu_retries_after_fault,
            m.midjob_outputs_discarded,
        );
    }
    if cfg.stats {
        for prop in ["lsm.stats", "lsm.metrics", "lsm.trace"] {
            println!("------------------------------------------------");
            println!("[{prop}]");
            if let Some(text) = db.property(prop) {
                print!("{text}");
                if !text.ends_with('\n') {
                    println!();
                }
            }
        }
    }
    let _ = std::fs::remove_dir_all(&cfg.db_path);
}
