//! Synthetic compaction inputs for kernel experiments: N disjoint-by-
//! parity sorted runs of real SSTables in a `MemEnv`, with db_bench-style
//! half-compressible values.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lsm::compaction::{CompactionInput, CompactionRequest, OutputFileFactory};
use sstable::comparator::InternalKeyComparator;
use sstable::env::{MemEnv, StorageEnv, WritableFile};
use sstable::ikey::{InternalKey, ValueType};
use sstable::table::{Table, TableReadOptions};
use sstable::table_builder::{TableBuilder, TableBuilderOptions};
use workloads::ValueGenerator;

/// Parameters for one kernel input set.
#[derive(Debug, Clone, Copy)]
pub struct KernelInputSpec {
    /// Number of merge inputs.
    pub n_inputs: usize,
    /// User key length (internal key adds 8).
    pub key_len: usize,
    /// Value length.
    pub value_len: usize,
    /// Entries per input.
    pub entries_per_input: u64,
    /// Value compressibility (stored/raw).
    pub compression_ratio: f64,
    /// Block compression of the input tables.
    pub table_compression: sstable::format::CompressionType,
}

impl Default for KernelInputSpec {
    fn default() -> Self {
        KernelInputSpec {
            n_inputs: 2,
            key_len: 16,
            value_len: 128,
            entries_per_input: 10_000,
            compression_ratio: 0.5,
            table_compression: sstable::format::CompressionType::Snappy,
        }
    }
}

fn builder_options(spec: &KernelInputSpec) -> TableBuilderOptions {
    TableBuilderOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        compression: spec.table_compression,
        ..Default::default()
    }
}

/// Builds `spec.n_inputs` interleaved sorted runs: input `i` holds keys
/// `{k : k % n == i}` so every merge step alternates inputs — the worst
/// case for the Comparer, as in the paper's speed tests.
pub fn build_kernel_inputs(env: &MemEnv, spec: &KernelInputSpec) -> Vec<CompactionInput> {
    let read_opts = TableReadOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        ..Default::default()
    };
    (0..spec.n_inputs)
        .map(|input| {
            let name = format!(
                "/kin-{input}-{}-{}-{}",
                spec.value_len, spec.key_len, spec.table_compression as u8
            );
            let file = env.create_writable(Path::new(&name)).unwrap();
            let mut b = TableBuilder::new(builder_options(spec), file);
            let mut values = ValueGenerator::new(input as u64 + 1, spec.compression_ratio);
            for e in 0..spec.entries_per_input {
                let k = e * spec.n_inputs as u64 + input as u64;
                let user = format!("{k:0width$}", width = spec.key_len);
                let ik = InternalKey::new(
                    user.as_bytes(),
                    1 + e + input as u64 * spec.entries_per_input,
                    ValueType::Value,
                );
                b.add(ik.encoded(), values.generate(spec.value_len))
                    .unwrap();
            }
            let size = b.finish().unwrap();
            let file = env.open_random_access(Path::new(&name)).unwrap();
            CompactionInput {
                tables: vec![Table::open(file, size, read_opts.clone()).unwrap()],
            }
        })
        .collect()
}

/// A standard compaction request over the given inputs.
pub fn kernel_request(inputs: Vec<CompactionInput>) -> CompactionRequest {
    CompactionRequest {
        level: 0,
        inputs,
        smallest_snapshot: 1 << 40,
        bottommost: true,
        builder_options: TableBuilderOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        },
        max_output_file_size: 2 << 20,
    }
}

/// In-memory output-file factory for standalone engine runs.
pub struct MemFactory {
    env: MemEnv,
    counter: AtomicU64,
}

impl MemFactory {
    /// Creates a factory writing into `env`.
    pub fn new(env: MemEnv) -> Self {
        MemFactory {
            env,
            counter: AtomicU64::new(0),
        }
    }
}

impl OutputFileFactory for MemFactory {
    fn new_output(&self) -> lsm::Result<(u64, Box<dyn WritableFile>)> {
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        let file = self.env.create_writable(Path::new(&format!("/kout-{n}")))?;
        Ok((n, file))
    }
}
