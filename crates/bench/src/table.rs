//! Minimal aligned-table printer for experiment output.

/// Collects rows and prints them with aligned columns.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TablePrinter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        println!(
            "  {}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_must_match_headers() {
        let mut t = TablePrinter::new(&["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn mismatched_row_panics() {
        let mut t = TablePrinter::new(&["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
