//! Shared infrastructure for the experiment harness: table rendering,
//! the paper's published reference numbers, and helpers for building
//! synthetic compaction inputs.

pub mod inputs;
pub mod paper;
pub mod table;

pub use inputs::{build_kernel_inputs, KernelInputSpec, MemFactory};
pub use table::TablePrinter;

/// Standard experiment header, so every bench's output is self-labelling.
pub fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}

/// Compact float formatting for table cells.
pub fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Appends one JSON object to the JSON array file at `path`, creating
/// the file (as a one-element array) if it does not exist. The bench
/// trajectory files (`BENCH_PR*.json`) are grown exclusively through
/// this helper so every harness formats them identically.
pub fn append_snapshot(path: &str, snapshot: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let without_close = trimmed
                .strip_suffix(']')
                .ok_or_else(|| std::io::Error::other(format!("{path} is not a JSON array")))?
                .trim_end();
            let sep = if without_close.ends_with('[') {
                ""
            } else {
                ","
            };
            format!("{without_close}{sep}\n{snapshot}\n]\n")
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            format!("[\n{snapshot}\n]\n")
        }
        Err(e) => return Err(e),
    };
    std::fs::write(path, body)
}
