//! Shared infrastructure for the experiment harness: table rendering,
//! the paper's published reference numbers, and helpers for building
//! synthetic compaction inputs.

pub mod inputs;
pub mod paper;
pub mod table;

pub use inputs::{build_kernel_inputs, KernelInputSpec, MemFactory};
pub use table::TablePrinter;

/// Standard experiment header, so every bench's output is self-labelling.
pub fn banner(id: &str, title: &str) {
    println!("\n================================================================");
    println!("{id} — {title}");
    println!("================================================================");
}

/// Compact float formatting for table cells.
pub fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}
