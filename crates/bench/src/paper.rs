//! The paper's published numbers, transcribed for side-by-side reporting.

/// Table V — compaction speed (MB/s): `(L_value, CPU, V=8, V=16, V=32, V=64)`.
pub const TABLE5: [(usize, f64, f64, f64, f64, f64); 6] = [
    (64, 5.3, 178.5, 164.5, 181.8, 175.8),
    (128, 6.9, 260.1, 312.1, 311.8, 291.7),
    (256, 9.0, 343.9, 451.6, 510.7, 524.9),
    (512, 12.2, 446.9, 627.9, 672.8, 745.4),
    (1024, 14.8, 448.5, 739.5, 896.7, 1026.3),
    (2048, 13.3, 506.3, 709.0, 1077.4, 1205.6),
];

/// Table VI — db_bench write throughput (MB/s):
/// `(L_value, LevelDB, V=8, V=16, V=32, V=64)`.
pub const TABLE6: [(usize, f64, f64, f64, f64, f64); 6] = [
    (64, 2.4, 5.6, 5.4, 5.6, 5.4),
    (128, 2.9, 6.5, 7.7, 7.6, 7.6),
    (256, 2.5, 5.8, 7.1, 7.2, 7.2),
    (512, 2.8, 6.0, 9.1, 9.6, 9.3),
    (1024, 2.3, 6.7, 9.8, 11.0, 11.6),
    (2048, 2.3, 10.9, 12.3, 14.1, 14.4),
];

/// Table VII — resource utilization (%): `(N, W_in, V, BRAM, FF, LUT)`.
pub const TABLE7: [(usize, u32, u32, f64, f64, f64); 6] = [
    (2, 64, 16, 18.0, 10.0, 72.0),
    (2, 64, 8, 17.0, 9.0, 63.0),
    (9, 64, 8, 35.0, 27.0, 206.0),
    (9, 16, 16, 30.0, 18.0, 125.0),
    (9, 16, 8, 26.0, 16.0, 103.0),
    (9, 8, 8, 25.0, 14.0, 84.0),
];

/// Table VIII — PCIe transfer time share (%): `(data GB, percent)`.
/// The paper lists 11 sizes from 0.2 GB to 1024 GB; `<1` is stored as 0.5.
pub const TABLE8: [(f64, f64); 11] = [
    (0.2, 9.0),
    (2.0, 7.0),
    (4.0, 8.0),
    (8.0, 8.0),
    (16.0, 6.0),
    (32.0, 6.0),
    (64.0, 3.0),
    (128.0, 2.0),
    (256.0, 1.0),
    (512.0, 0.5),
    (1024.0, 0.5),
];

/// Fig. 14's reported asymptote: LevelDB-FCAE speedup settles around 2.5x
/// at very large data sizes.
pub const FIG14_STEADY_SPEEDUP: f64 = 2.5;

/// Fig. 16's headline: maximum YCSB speedup (Load) is 2.2x.
pub const FIG16_MAX_SPEEDUP: f64 = 2.2;

/// Fig. 15(c): block-size insensitivity — the ratio stays ~2.4x.
pub const FIG15C_RATIO: f64 = 2.4;

/// Headline claims (§I).
pub const MAX_KERNEL_ACCELERATION: f64 = 92.0;
pub const MAX_THROUGHPUT_SPEEDUP: f64 = 6.4;
