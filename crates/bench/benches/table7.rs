//! **E5 — Table VII**: FPGA resource utilization under the six published
//! (N, W_in, V) configurations, from the fitted analytic model, plus the
//! §VII-C automatic configuration selection.

use bench::{banner, paper, TablePrinter};
use fcae::{FcaeConfig, ResourceModel};

fn main() {
    banner(
        "E5 (Table VII)",
        "resource utilization for different FPGA configurations",
    );

    let model = ResourceModel;
    let mut table = TablePrinter::new(&[
        "N", "W_in", "V", "BRAM%", "(paper)", "FF%", "(paper)", "LUT%", "(paper)", "fits",
    ]);
    for &(n, w_in, v, bram, ff, lut) in &paper::TABLE7 {
        let cfg = FcaeConfig {
            n_inputs: n,
            w_in,
            v,
            ..FcaeConfig::two_input()
        };
        let u = model.estimate(&cfg);
        table.row(&[
            n.to_string(),
            w_in.to_string(),
            v.to_string(),
            format!("{:.0}", u.bram_pct),
            format!("({bram:.0})"),
            format!("{:.0}", u.ff_pct),
            format!("({ff:.0})"),
            format!("{:.0}", u.lut_pct),
            format!("({lut:.0})"),
            if u.feasible() { "yes" } else { "NO" }.into(),
        ]);
    }
    table.print();

    println!("\nautomatic configuration selection (paper §VII-C):");
    for n in [2usize, 9] {
        match model.pick_feasible(n, 64) {
            Some(cfg) => println!(
                "  N={n}: W_in={}, V={}  (paper picks W_in=8, V=8 for N=9)",
                cfg.w_in, cfg.v
            ),
            None => println!("  N={n}: no feasible configuration"),
        }
    }
    println!("\nkey reproduction checks: N=9 full-width is infeasible (>200% LUT);");
    println!("only W_in=8, V=8 fits at N=9 — matching the paper's choice.");
}
