//! **E3 — Fig. 10**: db_bench write throughput vs data size (0.2–2 GB),
//! LevelDB vs LevelDB-FCAE with the 2-input engine (L_value = 512,
//! V = 16), via the system simulator.

use bench::{banner, fmt, TablePrinter};
use fcae::FcaeConfig;
use systemsim::{EngineKind, SystemConfig, WriteSim};

fn main() {
    banner(
        "E3 (Fig. 10)",
        "write throughput vs data size (0.2–2 GB), L_value=512, V=16, N=2",
    );

    let cfg = SystemConfig {
        value_len: 512,
        ..SystemConfig::default()
    };
    let fcae_cfg = cfg.with_engine(EngineKind::Fcae(FcaeConfig::two_input().with_v(16)));

    let mut table = TablePrinter::new(&[
        "data (GB)",
        "LevelDB MB/s",
        "FCAE MB/s",
        "speedup",
        "LevelDB stall%",
        "FCAE stall%",
    ]);
    let sizes_gb = [0.2f64, 0.5, 1.0, 1.5, 2.0];
    let mut first_ratio = 0.0;
    let mut last_base = f64::INFINITY;
    for &gb in &sizes_gb {
        let bytes = (gb * 1e9) as u64;
        let base = WriteSim::new(cfg, bytes).run();
        let fcae = WriteSim::new(fcae_cfg, bytes).run();
        let speedup = fcae.throughput_mb_s / base.throughput_mb_s;
        if first_ratio == 0.0 {
            first_ratio = speedup;
        }
        assert!(
            base.throughput_mb_s <= last_base * 1.05,
            "baseline should decline with data size"
        );
        last_base = base.throughput_mb_s;
        table.row(&[
            format!("{gb}"),
            fmt(base.throughput_mb_s),
            fmt(fcae.throughput_mb_s),
            format!("{speedup:.2}x"),
            format!(
                "{:.0}",
                100.0 * (base.stall_time_sec + base.slowdown_time_sec) / base.total_time_sec
            ),
            format!(
                "{:.0}",
                100.0 * (fcae.stall_time_sec + fcae.slowdown_time_sec) / fcae.total_time_sec
            ),
        ]);
    }
    table.print();
    println!("\nexpected shape (paper): LevelDB drops sharply with data size while");
    println!("LevelDB-FCAE degrades gently, widening the gap.");
}
