//! **E9 — Fig. 15**: sensitivity of the LevelDB-FCAE speedup to the
//! store's settings — (a) key length, (b) value length, (c) data block
//! size, (d) leveling ratio — one parameter varied at a time from the
//! Table IV defaults (1 GB fillrandom, 9-input engine).

use bench::{banner, fmt, TablePrinter};
use fcae::FcaeConfig;
use systemsim::writesim::mean_throughput;
use systemsim::{EngineKind, SystemConfig};

const DATA_BYTES: u64 = 1_000_000_000;
/// Jittered replicas per point: averages over the simulator's bistable
/// offload regimes (see EXPERIMENTS.md).
const SEEDS: u64 = 5;

fn run_pair(cfg: SystemConfig) -> (f64, f64, f64) {
    let (base, _) = mean_throughput(cfg, DATA_BYTES, SEEDS);
    let (fcae, _) = mean_throughput(
        cfg.with_engine(EngineKind::Fcae(FcaeConfig::nine_input())),
        DATA_BYTES,
        SEEDS,
    );
    (base, fcae, fcae / base)
}

fn sweep<T: std::fmt::Display + Copy>(
    label: &str,
    values: &[T],
    make: impl Fn(T) -> SystemConfig,
) -> Vec<f64> {
    println!("\n(fig 15{label})");
    let mut table = TablePrinter::new(&["setting", "LevelDB MB/s", "FCAE MB/s", "speedup"]);
    let mut ratios = Vec::new();
    for &v in values {
        let (b, f, r) = run_pair(make(v));
        ratios.push(r);
        table.row(&[v.to_string(), fmt(b), fmt(f), format!("{r:.2}x")]);
    }
    table.print();
    ratios
}

fn main() {
    banner(
        "E9 (Fig. 15)",
        "sensitivity to LevelDB settings (1 GB, N=9)",
    );

    // (a) Key length 16..256 (paper: speedup decreases ~linearly).
    let a = sweep("a: key length", &[16usize, 32, 64, 128, 256], |k| {
        SystemConfig {
            key_len: k,
            ..SystemConfig::default()
        }
    });
    // End-to-end trend: individual points can flip between the simulator's
    // offload regimes (EXPERIMENTS.md), so compare the sweep's endpoints.
    println!(
        "expected: decreasing speedup with key length — {}",
        if a.last().unwrap() < a.first().unwrap() {
            "observed (endpoints)"
        } else {
            "NOT OBSERVED"
        }
    );

    // (b) Value length 64..2048 (paper: speedup increases).
    let b = sweep(
        "b: value length",
        &[64usize, 128, 256, 512, 1024, 2048],
        |v| SystemConfig {
            value_len: v,
            ..SystemConfig::default()
        },
    );
    println!(
        "expected: increasing speedup with value length — {}",
        if b.last().unwrap() > b.first().unwrap() {
            "observed"
        } else {
            "NOT OBSERVED"
        }
    );

    // (c) Block size 2 KiB..1 MiB (paper: flat, ~2.4x).
    let c = sweep(
        "c: data block size (KiB)",
        &[2u64, 4, 16, 64, 256, 1024],
        |kb| SystemConfig {
            block_bytes: kb << 10,
            ..SystemConfig::default()
        },
    );
    let spread =
        c.iter().copied().fold(f64::MIN, f64::max) / c.iter().copied().fold(f64::MAX, f64::min);
    println!(
        "expected: insensitive to block size (paper holds ~2.4x) — spread {spread:.2} ({})",
        if spread < 1.25 {
            "observed"
        } else {
            "NOT OBSERVED"
        }
    );

    // (d) Leveling ratio 4..16 (paper: speedup decreases as ratio grows).
    let d = sweep("d: leveling ratio", &[4u64, 6, 8, 10, 12, 16], |r| {
        SystemConfig {
            leveling_ratio: r,
            ..SystemConfig::default()
        }
    });
    println!(
        "expected: decreasing speedup with leveling ratio — {}",
        if d.last().unwrap() < d.first().unwrap() {
            "observed"
        } else {
            "NOT OBSERVED"
        }
    );

    println!("\nconclusion (paper §VII-C3): FCAE helps most with short keys, long");
    println!("values, and leveling ratios not larger than 10.");
}
