//! **E10 — Fig. 16**: YCSB throughput for LevelDB and LevelDB-FCAE across
//! workloads Load/A–F (paper §VII-D: 20M records × (16 B key + 1024 B
//! value), 20M operations, multi-input engine).

use bench::{banner, paper, TablePrinter};
use fcae::FcaeConfig;
use systemsim::{EngineKind, SystemConfig, YcsbSim};
use workloads::YcsbWorkload;

fn main() {
    banner(
        "E10 (Fig. 16)",
        "YCSB throughput, Load/A-F, 20M x 1 KiB records",
    );

    let records = 20_000_000u64;
    let ops = 20_000_000u64;
    let cfg = SystemConfig {
        value_len: 1024,
        ..SystemConfig::default()
    };
    let fcae_cfg = cfg.with_engine(EngineKind::Fcae(FcaeConfig::nine_input()));

    let mut table = TablePrinter::new(&[
        "workload",
        "LevelDB kop/s",
        "FCAE kop/s",
        "speedup",
        "write %",
    ]);
    let mut speedups = Vec::new();
    for w in YcsbWorkload::ALL {
        let base = YcsbSim::new(cfg, w, records, ops, 42).run();
        let fcae = YcsbSim::new(fcae_cfg, w, records, ops, 42).run();
        let s = fcae.ops_per_sec / base.ops_per_sec;
        speedups.push((w, s));
        table.row(&[
            w.name().to_string(),
            format!("{:.1}", base.ops_per_sec / 1e3),
            format!("{:.1}", fcae.ops_per_sec / 1e3),
            format!("{s:.2}x"),
            format!("{:.0}", 100.0 * w.write_fraction()),
        ]);
    }
    table.print();

    let max = speedups.iter().map(|(_, s)| *s).fold(0.0f64, f64::max);
    println!(
        "\nmax speedup {max:.2}x on {} (paper: {:.1}x on Load);",
        speedups
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or("?", |(w, _)| w.name()),
        paper::FIG16_MAX_SPEEDUP
    );
    println!("expected shape: speedup grows with write ratio; read-only C stays ~1x");
    println!("(storage format unchanged, so reads are unaffected).");
}
