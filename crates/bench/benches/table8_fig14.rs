//! **E7/E8 — Fig. 14 and Table VIII**: write throughput vs data size from
//! 0.2 GB to 1024 GB with the 9-input engine, plus the PCIe transfer
//! share of total execution time. This is the experiment that motivates
//! the metadata-level simulator: a terabyte of real writes is infeasible,
//! but the scheduling behaviour it measures is fully captured.

use bench::{banner, fmt, paper, TablePrinter};
use fcae::FcaeConfig;
use systemsim::{EngineKind, SystemConfig, WriteSim};

fn main() {
    banner(
        "E7 (Fig. 14) + E8 (Table VIII)",
        "write throughput 0.2–1024 GB (N=9) and PCIe transfer share",
    );

    let cfg = SystemConfig {
        value_len: 512,
        ..SystemConfig::default()
    };
    let fcae_cfg = cfg.with_engine(EngineKind::Fcae(FcaeConfig::nine_input()));

    let mut table = TablePrinter::new(&[
        "data (GB)",
        "LevelDB MB/s",
        "FCAE MB/s",
        "speedup",
        "PCIe %",
        "(paper %)",
    ]);

    let mut speedups = Vec::new();
    for &(gb, paper_pcie) in &paper::TABLE8 {
        let bytes = (gb * 1e9) as u64;
        let base = WriteSim::new(cfg, bytes).run();
        let fcae = WriteSim::new(fcae_cfg, bytes).run();
        let speedup = fcae.throughput_mb_s / base.throughput_mb_s;
        speedups.push(speedup);
        table.row(&[
            format!("{gb}"),
            fmt(base.throughput_mb_s),
            fmt(fcae.throughput_mb_s),
            format!("{speedup:.2}x"),
            format!("{:.1}", fcae.pcie_percent()),
            format!("({paper_pcie})"),
        ]);
    }
    table.print();

    let tail: f64 = speedups[speedups.len() - 3..].iter().sum::<f64>() / 3.0;
    println!(
        "\nlarge-size speedup settles near {tail:.2}x (paper: ~{:.1}x);",
        paper::FIG14_STEADY_SPEEDUP
    );
    println!("expected shape: both systems decline as levels deepen; FCAE's gap");
    println!("narrows but persists; PCIe share shrinks with data size and stays small.");
}
