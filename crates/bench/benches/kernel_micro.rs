//! Criterion microbenchmarks of the hot paths underlying every
//! experiment: Snappy, CRC32C, block building/iteration, the memtable
//! skiplist, and the two compaction engines end to end.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use bench::inputs::kernel_request;
use bench::{build_kernel_inputs, KernelInputSpec, MemFactory};
use fcae::{FcaeConfig, FcaeEngine};
use lsm::compaction::{CompactionEngine, CpuCompactionEngine};
use lsm::memtable::MemTable;
use sstable::comparator::InternalKeyComparator;
use sstable::env::MemEnv;
use sstable::ikey::ValueType;

fn bench_snappy(c: &mut Criterion) {
    let mut values = workloads::ValueGenerator::new(1, 0.5);
    let data: Vec<u8> = values.generate(64 << 10).to_vec();
    let compressed = snap_codec::compress(&data);
    let mut g = c.benchmark_group("snappy");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("compress_64k", |b| b.iter(|| snap_codec::compress(&data)));
    g.bench_function("decompress_64k", |b| {
        b.iter(|| snap_codec::decompress(&compressed).unwrap());
    });
    g.finish();
}

fn bench_crc32c(c: &mut Criterion) {
    let data = vec![0xa5u8; 64 << 10];
    let mut g = c.benchmark_group("crc32c");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("value_64k", |b| b.iter(|| sstable::crc32c::value(&data)));
    g.finish();
}

fn bench_memtable(c: &mut Criterion) {
    let mut g = c.benchmark_group("memtable");
    g.bench_function("insert_10k", |b| {
        b.iter_batched(
            || MemTable::new(InternalKeyComparator::default()),
            |m| {
                for i in 0..10_000u64 {
                    let key = format!("{:016}", i.wrapping_mul(2_654_435_761) % 10_000);
                    m.add(i + 1, ValueType::Value, key.as_bytes(), b"value-bytes-128");
                }
                m
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_engines(c: &mut Criterion) {
    let spec = KernelInputSpec {
        n_inputs: 2,
        value_len: 512,
        entries_per_input: 4_000,
        ..Default::default()
    };
    let env = MemEnv::new();
    let bytes: u64 = build_kernel_inputs(&env, &spec)
        .iter()
        .map(|i| i.bytes())
        .sum();

    let mut g = c.benchmark_group("compaction");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("cpu_engine_4MB", |b| {
        b.iter_batched(
            || {
                (
                    build_kernel_inputs(&env, &spec),
                    MemFactory::new(env.clone()),
                )
            },
            |(inputs, factory)| {
                CpuCompactionEngine
                    .compact(&kernel_request(inputs), &factory)
                    .unwrap()
            },
            BatchSize::SmallInput,
        );
    });
    let engine = Arc::new(FcaeEngine::new(FcaeConfig::two_input()));
    g.bench_function("fcae_engine_4MB", |b| {
        let engine = Arc::clone(&engine);
        b.iter_batched(
            || {
                (
                    build_kernel_inputs(&env, &spec),
                    MemFactory::new(env.clone()),
                )
            },
            move |(inputs, factory)| engine.compact(&kernel_request(inputs), &factory).unwrap(),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_snappy,
    bench_crc32c,
    bench_memtable,
    bench_engines
);
criterion_main!(benches);
