//! **Extension — lazy compaction (paper §VII-C)**: the paper motivates
//! the multi-input engine with write-optimized stores that allow key-range
//! overlap within a level (SifrDB, PebblesDB). This experiment runs the
//! system simulator with partitioned tiering at L1 (k overlapping runs,
//! merged all-at-once) and shows where each engine configuration lands:
//! under tiering, merges genuinely have k ≈ 8 inputs, so the 2-input
//! engine must fall back to software exactly where the 9-input engine
//! shines.

use bench::{banner, fmt, TablePrinter};
use fcae::FcaeConfig;
use systemsim::{EngineKind, SystemConfig, WriteSim};

fn main() {
    banner(
        "Extension (§VII-C)",
        "partitioned tiering at L1: run-count k vs engine input budget N",
    );

    let data = 1_000_000_000u64;
    let mut table = TablePrinter::new(&[
        "k runs",
        "CPU MB/s",
        "N=2 MB/s",
        "N=9 MB/s",
        "N=9 sw-fallbacks",
        "N=9 speedup",
    ]);
    for k in [2u64, 4, 8, 12] {
        let cfg = SystemConfig {
            value_len: 512,
            l1_tiering_runs: Some(k),
            ..SystemConfig::default()
        };
        let cpu = WriteSim::new(cfg, data).run();
        let n2 = WriteSim::new(
            cfg.with_engine(EngineKind::Fcae(FcaeConfig::two_input())),
            data,
        )
        .run();
        let n9 = WriteSim::new(
            cfg.with_engine(EngineKind::Fcae(FcaeConfig::nine_input())),
            data,
        )
        .run();
        table.row(&[
            k.to_string(),
            fmt(cpu.throughput_mb_s),
            fmt(n2.throughput_mb_s),
            fmt(n9.throughput_mb_s),
            n9.sw_compactions.to_string(),
            format!("{:.2}x", n9.throughput_mb_s / cpu.throughput_mb_s),
        ]);
    }
    table.print();
    println!("\nexpected: the 9-input engine sustains offload through k <= 8 (its");
    println!("input budget is 9); at k = 12 even N=9 falls back and the advantage");
    println!("narrows — matching the paper's N=9 sizing for 'eight SSTables in");
    println!("most cases'.");
}
