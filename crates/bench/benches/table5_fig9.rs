//! **E1/E2 — Table V and Fig. 9**: 2-input kernel compaction speed and
//! acceleration ratio vs the CPU baseline, sweeping the value length
//! (64–2048 B) and the value datapath width V (8–64 B/cycle).
//!
//! Three speeds are reported per cell:
//! * `model` — the simulated FPGA engine running a *real* merge over real
//!   SSTables, timed by the cycle model (the reproduction's number);
//! * `paper` — the value published in Table V;
//! * the CPU column additionally shows the native Rust merge wall-clock
//!   on this host, to document how far 2026 hardware is from the paper's
//!   measured 2019 baseline.

use std::time::Instant;

use bench::inputs::kernel_request;
use bench::paper;
use bench::{banner, build_kernel_inputs, fmt, KernelInputSpec, MemFactory, TablePrinter};
use fcae::{CpuCostModel, FcaeConfig, FcaeEngine};
use lsm::compaction::{CompactionEngine, CpuCompactionEngine};
use sstable::env::MemEnv;

fn main() {
    banner(
        "E1 (Table V)",
        "2-input compaction speed: CPU baseline vs FCAE, V ∈ {8,16,32,64}",
    );

    let v_sweep = [8u32, 16, 32, 64];
    let mut speed_table = TablePrinter::new(&[
        "L_value",
        "CPU model",
        "CPU paper",
        "CPU native",
        "V=8",
        "(paper)",
        "V=16",
        "(paper)",
        "V=32",
        "(paper)",
        "V=64",
        "(paper)",
    ]);
    let mut ratio_rows: Vec<(usize, Vec<f64>)> = Vec::new();

    for &(value_len, cpu_paper, p8, p16, p32, p64) in &paper::TABLE5 {
        let paper_by_v = [p8, p16, p32, p64];
        let env = MemEnv::new();
        let spec = KernelInputSpec {
            n_inputs: 2,
            value_len,
            // Keep each cell's merge around ~8 MB of raw data.
            entries_per_input: (8 << 20) / (2 * (16 + value_len) as u64),
            // Table V divides by stored input bytes; incompressible values
            // keep stored == raw, matching the paper's convention.
            compression_ratio: 1.0,
            ..Default::default()
        };
        let cpu_model = CpuCostModel::new(2).compaction_speed_mb_s(24, value_len);

        // Native CPU merge wall clock (this host).
        let inputs = build_kernel_inputs(&env, &spec);
        let input_bytes: u64 = inputs.iter().map(|i| i.bytes()).sum();
        let factory = MemFactory::new(env.clone());
        let t0 = Instant::now();
        CpuCompactionEngine
            .compact(&kernel_request(inputs), &factory)
            .unwrap();
        let native = input_bytes as f64 / t0.elapsed().as_secs_f64() / 1e6;

        let mut row = vec![
            value_len.to_string(),
            fmt(cpu_model),
            fmt(cpu_paper),
            fmt(native),
        ];
        let mut ratios = Vec::new();
        for (vi, &v) in v_sweep.iter().enumerate() {
            let engine = FcaeEngine::new(FcaeConfig::two_input().with_v(v));
            let inputs = build_kernel_inputs(&env, &spec);
            let factory = MemFactory::new(env.clone());
            engine.compact(&kernel_request(inputs), &factory).unwrap();
            let speed = engine.last_report().compaction_speed_mb_s;
            row.push(fmt(speed));
            row.push(format!("({})", fmt(paper_by_v[vi])));
            ratios.push(speed / cpu_model);
        }
        speed_table.row(&row);
        ratio_rows.push((value_len, ratios));
    }
    println!("\ncompaction speed (MB/s); `paper` columns are Table V's published values:");
    speed_table.print();

    banner(
        "E2 (Fig. 9)",
        "acceleration ratio of FCAE over the calibrated CPU baseline",
    );
    let mut ratio_table = TablePrinter::new(&["L_value", "V=8", "V=16", "V=32", "V=64"]);
    let mut max_ratio = 0.0f64;
    for (value_len, ratios) in &ratio_rows {
        let mut row = vec![value_len.to_string()];
        for r in ratios {
            row.push(format!("{r:.1}x"));
            max_ratio = max_ratio.max(*r);
        }
        ratio_table.row(&row);
    }
    ratio_table.print();
    println!(
        "\nmax acceleration: {max_ratio:.1}x (paper's headline: up to {:.1}x)",
        paper::MAX_KERNEL_ACCELERATION
    );
    println!("expected shape: ratio grows with L_value; larger V helps long values.");
}
