//! **E4 — Table VI and Fig. 11**: end-to-end db_bench write throughput vs
//! value length and V, via the system simulator (1 GB fills, 2-input
//! engine, matching §VII-B2).

use bench::{banner, fmt, paper, TablePrinter};
use fcae::FcaeConfig;
use systemsim::{EngineKind, SystemConfig, WriteSim};

fn main() {
    banner(
        "E4 (Table VI + Fig. 11)",
        "write throughput vs L_value and V (1 GB fillrandom, N=2)",
    );

    let data_bytes = 1_000_000_000u64;
    let v_sweep = [8u32, 16, 32, 64];

    let mut table = TablePrinter::new(&[
        "L_value",
        "LevelDB",
        "(paper)",
        "V=8",
        "V=16",
        "V=32",
        "V=64",
        "(paper V=64)",
    ]);
    let mut ratio = TablePrinter::new(&["L_value", "V=8", "V=16", "V=32", "V=64"]);

    let mut max_speedup = 0.0f64;
    let mut speedups_by_value: Vec<f64> = Vec::new();
    for &(value_len, paper_base, _p8, _p16, _p32, p64) in &paper::TABLE6 {
        let cfg = SystemConfig {
            value_len,
            ..SystemConfig::default()
        };
        let base = WriteSim::new(cfg, data_bytes).run();
        let mut row = vec![
            value_len.to_string(),
            fmt(base.throughput_mb_s),
            format!("({paper_base})"),
        ];
        let mut ratio_row = vec![value_len.to_string()];
        let mut best = 0.0f64;
        for &v in &v_sweep {
            let fcae_cfg = cfg.with_engine(EngineKind::Fcae(FcaeConfig::two_input().with_v(v)));
            let fcae = WriteSim::new(fcae_cfg, data_bytes).run();
            row.push(fmt(fcae.throughput_mb_s));
            let s = fcae.throughput_mb_s / base.throughput_mb_s;
            ratio_row.push(format!("{s:.2}x"));
            best = best.max(s);
            max_speedup = max_speedup.max(s);
        }
        row.push(format!("({p64})"));
        table.row(&row);
        ratio.row(&ratio_row);
        speedups_by_value.push(best);
    }

    println!("\nTable VI — write throughput (MB/s):");
    table.print();
    println!("\nFig. 11 — FCAE speedup over LevelDB:");
    ratio.print();
    println!(
        "\nmax speedup {max_speedup:.1}x (paper's headline: up to {:.1}x);",
        paper::MAX_THROUGHPUT_SPEEDUP
    );
    println!(
        "expected shape: speedup increases with value length ({})",
        if speedups_by_value.windows(2).all(|w| w[1] >= w[0] * 0.9) {
            "observed"
        } else {
            "NOT OBSERVED — check calibration"
        }
    );
}
