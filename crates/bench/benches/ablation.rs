//! **Ablation** (DESIGN.md): how much each of the paper's three
//! optimizations contributes — index/data block separation (§V-B),
//! key-value separation (§V-C), and wide transmission (§V-D) — measured
//! as kernel compaction speed on real merges with each flag toggled.

use bench::inputs::kernel_request;
use bench::{banner, build_kernel_inputs, fmt, KernelInputSpec, MemFactory, TablePrinter};
use fcae::{AblationFlags, FcaeConfig, FcaeEngine};
use lsm::compaction::CompactionEngine;
use sstable::env::MemEnv;

fn speed(flags: AblationFlags, value_len: usize) -> f64 {
    let cfg = FcaeConfig {
        ablation: flags,
        ..FcaeConfig::two_input()
    };
    let env = MemEnv::new();
    let spec = KernelInputSpec {
        n_inputs: 2,
        value_len,
        entries_per_input: (4 << 20) / (2 * (16 + value_len) as u64),
        compression_ratio: 1.0,
        ..Default::default()
    };
    let inputs = build_kernel_inputs(&env, &spec);
    let engine = FcaeEngine::new(cfg);
    let factory = MemFactory::new(env);
    engine.compact(&kernel_request(inputs), &factory).unwrap();
    engine.last_report().compaction_speed_mb_s
}

fn main() {
    banner(
        "Ablation",
        "contribution of each design optimization (N=2, V=16)",
    );

    let variants: [(&str, AblationFlags); 5] = [
        ("basic (Fig. 2)", AblationFlags::all_off()),
        (
            "+ index/data sep (Fig. 3)",
            AblationFlags {
                index_data_separation: true,
                ..AblationFlags::all_off()
            },
        ),
        (
            "+ key/value sep (Fig. 4)",
            AblationFlags {
                index_data_separation: true,
                key_value_separation: true,
                wide_transmission: false,
            },
        ),
        ("+ wide datapath (Fig. 5)", AblationFlags::all_on()),
        (
            "only wide, no kv-sep",
            AblationFlags {
                index_data_separation: true,
                key_value_separation: false,
                wide_transmission: true,
            },
        ),
    ];

    let mut table = TablePrinter::new(&["design", "Lv=64", "Lv=512", "Lv=2048"]);
    let mut full_speed = [0.0f64; 3];
    let mut basic_speed = [0.0f64; 3];
    for (name, flags) in variants {
        let mut row = vec![name.to_string()];
        for (i, value_len) in [64usize, 512, 2048].into_iter().enumerate() {
            let s = speed(flags, value_len);
            if name.starts_with("basic") {
                basic_speed[i] = s;
            }
            if name.starts_with("+ wide") {
                full_speed[i] = s;
            }
            row.push(fmt(s));
        }
        table.row(&row);
    }
    println!("\nkernel compaction speed (MB/s):");
    table.print();
    println!("\ncumulative gain of the full design over the basic pipeline:");
    for (i, value_len) in [64usize, 512, 2048].into_iter().enumerate() {
        println!(
            "  L_value={value_len}: {:.1}x",
            full_speed[i] / basic_speed[i].max(1e-9)
        );
    }
    println!("\nexpected: each stage helps; wide transmission matters most for long");
    println!("values, key-value separation for the Comparer-bound short-value regime.");
}
