//! **E6 — Fig. 12 and Fig. 13**: multi-input FCAE. Compaction speed of
//! the 2-input engine (W=64, V=16) against the 9-input engine (the
//! resource-constrained W_in=8, V=8 point), and each one's acceleration
//! ratio over its CPU baseline (a 2-way or 9-way software merge).

use bench::inputs::kernel_request;
use bench::{banner, build_kernel_inputs, fmt, KernelInputSpec, MemFactory, TablePrinter};
use fcae::{CpuCostModel, FcaeConfig, FcaeEngine};
use lsm::compaction::CompactionEngine;
use sstable::env::MemEnv;

fn run_engine(cfg: FcaeConfig, value_len: usize) -> f64 {
    let env = MemEnv::new();
    let spec = KernelInputSpec {
        n_inputs: cfg.n_inputs,
        value_len,
        entries_per_input: (6 << 20) / (cfg.n_inputs as u64 * (16 + value_len) as u64),
        compression_ratio: 1.0,
        ..Default::default()
    };
    let inputs = build_kernel_inputs(&env, &spec);
    let engine = FcaeEngine::new(cfg);
    let factory = MemFactory::new(env);
    engine.compact(&kernel_request(inputs), &factory).unwrap();
    engine.last_report().compaction_speed_mb_s
}

fn main() {
    banner(
        "E6 (Fig. 12 + 13)",
        "2-input vs 9-input FCAE: compaction speed and acceleration ratio",
    );

    let two = FcaeConfig::two_input(); // W=64, V=16
    let nine = FcaeConfig::nine_input(); // W_in=8, V=8

    let mut speed = TablePrinter::new(&["L_value", "2-input MB/s", "9-input MB/s", "9/2 ratio"]);
    let mut ratio = TablePrinter::new(&["L_value", "accel 2-input", "accel 9-input"]);

    let mut gaps: Vec<f64> = Vec::new();
    for value_len in [64usize, 128, 256, 512, 1024, 2048] {
        let s2 = run_engine(two, value_len);
        let s9 = run_engine(nine, value_len);
        gaps.push(s9 / s2);
        speed.row(&[
            value_len.to_string(),
            fmt(s2),
            fmt(s9),
            format!("{:.2}", s9 / s2),
        ]);
        let cpu2 = CpuCostModel::new(2).compaction_speed_mb_s(24, value_len);
        let cpu9 = CpuCostModel::new(9).compaction_speed_mb_s(24, value_len);
        ratio.row(&[
            value_len.to_string(),
            format!("{:.1}x", s2 / cpu2),
            format!("{:.1}x", s9 / cpu9),
        ]);
    }

    println!("\nFig. 12 — compaction speed:");
    speed.print();
    println!(
        "\nexpected shape: 9-input slower at small values (Comparer-bound, \
         deeper tree),\nconverging toward 1.0 as values grow (decoder-bound, same V effect):"
    );
    println!(
        "  small-value gap {:.2}, large-value gap {:.2}",
        gaps.first().unwrap(),
        gaps.last().unwrap()
    );

    println!("\nFig. 13 — acceleration ratio vs the (N-way) CPU baseline:");
    ratio.print();
    println!("expected shape: the 9-input ratio is *larger* (the parallel Comparer");
    println!("scales better than a 9-way software merge heap).");
}
