//! **Extension — multi-engine scaling**: write throughput vs number of
//! engine instances K ∈ {1, 2, 4} on one card, through the system
//! simulator with the *contended* PCIe model (all instances share the
//! single ×16 link, and the host I/O path is serialized).
//!
//! The paper deploys one engine per card; Table VII shows smaller
//! configurations leave most of the KCU1500 free. This experiment asks
//! what the spare area buys: kernel phases overlap across instances, but
//! the shared link and the disk bound the gain — expect clearly
//! sublinear scaling, not K×.

use bench::{banner, fmt, TablePrinter};
use fcae::FcaeConfig;
use simkit::DiskModel;
use systemsim::{EngineKind, SystemConfig, WriteSim};

fn main() {
    banner(
        "Extension (multi-engine)",
        "throughput vs engine instances K, shared-PCIe contention model",
    );
    // L_value = 128 (Table IV default), N = 9, SSD-class disk.

    // SSD-class storage: on the paper's HDD-class device the disk alone
    // bounds throughput and extra engines buy nothing; a faster disk is
    // the regime where multiple instances can matter at all. Short values
    // keep L0 compactions under the device's 9-input limit so they stay
    // offloadable even when L0 backs up.
    let cfg = SystemConfig {
        disk: DiskModel::default(),
        ..SystemConfig::default()
    }
    .with_engine(EngineKind::Fcae(FcaeConfig::nine_input()));
    let bytes = 1_000_000_000u64;

    let base = WriteSim::new(cfg.with_engine(EngineKind::Cpu), bytes).run();
    println!("\nCPU baseline: {} MB/s\n", fmt(base.throughput_mb_s));

    let mut table = TablePrinter::new(&[
        "K",
        "MB/s",
        "vs CPU",
        "vs K=1",
        "peak in-flight",
        "pcie %",
        "stall %",
    ]);
    let mut k1 = 0.0;
    for k in [1usize, 2, 4] {
        let r = WriteSim::new(cfg.with_engine_slots(k), bytes).run();
        if k == 1 {
            k1 = r.throughput_mb_s;
        }
        assert!(
            r.max_device_in_flight <= k as u64,
            "more jobs in flight than slots: {r:?}"
        );
        table.row(&[
            format!("{k}"),
            fmt(r.throughput_mb_s),
            format!("{:.2}x", r.throughput_mb_s / base.throughput_mb_s),
            format!("{:.2}x", r.throughput_mb_s / k1),
            format!("{}", r.max_device_in_flight),
            format!("{:.1}", r.pcie_percent()),
            format!(
                "{:.0}",
                100.0 * (r.stall_time_sec + r.slowdown_time_sec) / r.total_time_sec
            ),
        ]);
    }
    table.print();
    println!("\nexpected shape: K=2 buys a modest gain over K=1 (kernel phases");
    println!("overlap), then the shared PCIe link and serialized host I/O flatten");
    println!("the curve — the honest answer to \"why not tile the whole card?\".");
}
