//! End-to-end equivalence: the same workload through a serial CPU store,
//! a single-slot offload service, and a four-slot offload service with
//! injected device faults must leave byte-identical key-value state.
//!
//! This is the acceptance test for the offload scheduler: correctness is
//! defined as "indistinguishable from the serial CPU run", no matter how
//! many engines ran concurrently or how many jobs were retried on the
//! host after a fault.

use std::sync::Arc;

use fcae::FcaeConfig;
use lsm::compaction::CompactionEngine;
use lsm::filename::{parse_file_name, FileType};
use lsm::{Db, Options};
use offload::{DeviceFaultKind, OffloadConfig, OffloadService};
use sstable::env::{MemEnv, StorageEnv};

/// Options small enough that the workload spans several levels.
fn small_options(background_threads: usize) -> Options {
    Options {
        env: Arc::new(MemEnv::new()) as Arc<dyn StorageEnv>,
        slowdown_sleep: false,
        write_buffer_size: 64 << 10,
        max_file_size: 16 << 10,
        level1_max_bytes: 32 << 10,
        background_threads,
        ..Default::default()
    }
}

/// A deterministic multi-level workload: scattered writes, overwrites and
/// deletes, across a key space large enough to push data past L1.
fn run_workload(db: &Db) {
    for round in 0..10u32 {
        for i in 0..6000u32 {
            let key = format!("key{:06}", (i.wrapping_mul(7919) + round * 13) % 18000);
            let value = format!("value-{round}-{i}-{:0>100}", i);
            db.put(key.as_bytes(), value.as_bytes()).unwrap();
        }
        for i in (0..6000u32).step_by(17) {
            let key = format!("key{:06}", (i.wrapping_mul(7919) + round * 13) % 18000);
            db.delete(key.as_bytes()).unwrap();
        }
    }
    db.flush().unwrap();
}

fn dump(db: &Db) -> Vec<(Vec<u8>, Vec<u8>)> {
    db.scan(b"", None, usize::MAX).unwrap()
}

#[test]
fn offload_state_matches_serial_cpu_run() {
    // Reference: plain CPU engine, one background thread (fully serial).
    let serial = Db::open("/db", small_options(1)).unwrap();
    run_workload(&serial);
    let expect = dump(&serial);
    assert!(expect.len() > 5000, "workload too small: {}", expect.len());
    assert!(
        serial.level_file_counts().iter().skip(2).any(|&n| n > 0),
        "workload must reach levels >= 2: {:?}",
        serial.level_file_counts()
    );

    // Single-slot service: every compaction goes through the scheduler.
    // The 2-input device rejects every L0 job (too many inputs), so this
    // run also exercises the oversized-to-CPU path.
    let svc1 = Arc::new(OffloadService::with_slots(
        FcaeConfig::two_input(),
        1,
        OffloadConfig::default(),
    ));
    let engine1 = Arc::clone(&svc1) as Arc<dyn CompactionEngine>;
    let db1 = Db::open_with_engine("/db", small_options(2), engine1).unwrap();
    run_workload(&db1);
    assert_eq!(dump(&db1), expect, "K=1 service diverged from serial CPU");
    let m1 = svc1.metrics();
    assert!(m1.jobs_submitted > 0);
    assert!(m1.fpga_jobs + m1.cpu_jobs() == m1.jobs_submitted);

    // Four-slot service, four workers, and every third device dispatch
    // faulting: the scheduler must retry on the CPU without losing or
    // duplicating a single key.
    let svc4 = Arc::new(OffloadService::with_slots(
        FcaeConfig::nine_input(),
        4,
        OffloadConfig {
            wait_budget: std::time::Duration::from_secs(2),
            ..Default::default()
        },
    ));
    svc4.faults().fail_every(3);
    let engine4 = Arc::clone(&svc4) as Arc<dyn CompactionEngine>;
    let db4 = Db::open_with_engine("/db", small_options(4), engine4).unwrap();
    run_workload(&db4);
    assert_eq!(dump(&db4), expect, "K=4 service with faults diverged");

    let m4 = svc4.metrics();
    assert!(m4.jobs_submitted > 0, "{m4:?}");
    assert!(m4.device_faults > 0, "fault injection never fired: {m4:?}");
    assert_eq!(
        m4.device_faults, m4.cpu_retries_after_fault,
        "every fault must be retried on the CPU: {m4:?}"
    );
    assert!(
        m4.fpga_jobs > 0,
        "no job ever completed on the device: {m4:?}"
    );
    // The acceptance bar: a 4-slot service on a multi-level workload keeps
    // more than one compaction in flight at once.
    assert!(
        m4.max_jobs_in_flight > 1,
        "scheduler never overlapped compactions: {m4:?}"
    );
    let stats = db4.stats();
    assert!(
        stats.max_concurrent_compactions >= 1,
        "store never admitted a compaction: {stats:?}"
    );
}

#[test]
fn pipelined_cpu_fallback_matches_serial_run() {
    // Reference run on the plain CPU engine.
    let serial = Db::open("/db", small_options(1)).unwrap();
    run_workload(&serial);
    let expect = dump(&serial);

    // Threshold 0: every CPU-path job takes the staged pipelined engine.
    // The 2-input device rejects most jobs (oversized), so nearly the
    // whole workload compacts through the pipeline.
    let svc = Arc::new(OffloadService::with_slots(
        FcaeConfig::two_input(),
        1,
        OffloadConfig {
            pipelined_cpu_threshold_bytes: 0,
            ..Default::default()
        },
    ));
    let engine = Arc::clone(&svc) as Arc<dyn CompactionEngine>;
    let db = Db::open_with_engine("/db", small_options(2), engine).unwrap();
    run_workload(&db);
    assert_eq!(dump(&db), expect, "pipelined fallback diverged from serial");

    let m = svc.metrics();
    assert!(
        m.cpu_pipelined_jobs > 0,
        "pipelined path never taken: {m:?}"
    );
    assert_eq!(
        m.cpu_pipelined_jobs,
        m.cpu_jobs(),
        "threshold 0 must route every CPU job through the pipeline: {m:?}"
    );
}

/// Mid-job faults are the nasty class: the device engine already ran
/// against the real output factory before the fault fired, so the
/// scheduler has on-disk outputs to unwind. The run must still be
/// byte-identical to a serial CPU run, the per-kind counters must
/// account for every fault, and the discarded outputs must end up
/// swept by the store's obsolete-file GC rather than leaking.
#[test]
fn midjob_faults_discard_outputs_and_stay_correct() {
    let serial = Db::open("/db", small_options(1)).unwrap();
    run_workload(&serial);
    let expect = dump(&serial);

    let env = Arc::new(MemEnv::new());
    let svc = Arc::new(OffloadService::with_slots(
        FcaeConfig::nine_input(),
        2,
        OffloadConfig::default(),
    ));
    // Overlapping schedules: every 3rd dispatch times out mid-job, every
    // 7th poisons its output (timeout wins when both land on the same
    // dispatch). Both classes leave device-side outputs to discard.
    svc.faults()
        .fail_every_kind(DeviceFaultKind::MidJobTimeout, 3);
    svc.faults()
        .fail_every_kind(DeviceFaultKind::MidJobPoisoned, 7);
    let engine = Arc::clone(&svc) as Arc<dyn CompactionEngine>;
    let options = Options {
        env: Arc::clone(&env) as Arc<dyn StorageEnv>,
        ..small_options(2)
    };
    let db = Db::open_with_engine("/db", options, engine).unwrap();
    run_workload(&db);
    assert_eq!(dump(&db), expect, "mid-job faults corrupted the state");

    let m = svc.metrics();
    assert!(
        m.faults_midjob_timeout > 0,
        "timeout schedule never fired: {m:?}"
    );
    assert!(
        m.midjob_outputs_discarded > 0,
        "mid-job faults must discard device outputs: {m:?}"
    );
    assert_eq!(
        m.device_faults,
        m.faults_transient + m.faults_midjob_timeout + m.faults_midjob_poisoned,
        "per-kind counters must partition the total: {m:?}"
    );
    assert_eq!(
        m.device_faults, m.cpu_retries_after_fault,
        "every mid-job fault must be retried on the CPU: {m:?}"
    );

    // Exactly-once cleanup: the GC pass after each compaction sweeps the
    // discarded device outputs, so once the store is quiescent every
    // table file in the directory is referenced by the live version.
    db.wait_for_background_quiescence();
    let on_disk: Vec<String> = env
        .list_dir(std::path::Path::new("/db"))
        .unwrap()
        .into_iter()
        .filter(|n| matches!(parse_file_name(n), Some(FileType::Table(_))))
        .collect();
    let live = db.level_file_counts().iter().sum::<usize>();
    assert_eq!(
        on_disk.len(),
        live,
        "discarded mid-job outputs leaked: {on_disk:?}"
    );
}

#[test]
fn every_fault_is_retried_without_data_loss() {
    // Fault *every* device dispatch: the store degrades to CPU-only but
    // must stay correct.
    let svc = Arc::new(OffloadService::with_slots(
        FcaeConfig::nine_input(),
        2,
        OffloadConfig::default(),
    ));
    svc.faults().fail_every(1);
    let engine = Arc::clone(&svc) as Arc<dyn CompactionEngine>;
    let db = Db::open_with_engine("/db", small_options(2), engine).unwrap();
    for i in 0..4000u32 {
        db.put(
            format!("k{:05}", (i * 31) % 5000).as_bytes(),
            format!("v{i:0>64}").as_bytes(),
        )
        .unwrap();
    }
    db.flush().unwrap();
    let m = svc.metrics();
    assert_eq!(m.fpga_jobs, 0, "all dispatches fault: {m:?}");
    assert_eq!(m.device_faults, m.cpu_retries_after_fault, "{m:?}");
    // Spot-check latest versions survived.
    for i in (0..4000u32).rev().take(500) {
        let key = format!("k{:05}", (i * 31) % 5000);
        let got = db.get(key.as_bytes()).unwrap();
        assert!(got.is_some(), "lost {key}");
    }
}

/// One shared observability bundle must see both sides of the stack:
/// store-level metrics (flushes, put latency, per-level compaction
/// counters) and scheduler-level metrics (job counts, dispatch and
/// fault events), with the registry mirrors agreeing with the
/// scheduler's own `OffloadMetrics`.
#[test]
fn shared_obs_bundle_records_store_and_scheduler() {
    let bundle = obs::Obs::wall();
    let svc = Arc::new(
        OffloadService::with_slots(FcaeConfig::nine_input(), 2, OffloadConfig::default())
            .with_obs(Arc::clone(&bundle)),
    );
    svc.faults().fail_every(5);
    let engine = Arc::clone(&svc) as Arc<dyn CompactionEngine>;
    let mut options = small_options(2);
    options.obs = Some(Arc::clone(&bundle));
    let db = Db::open_with_engine("/db", options, engine).unwrap();
    run_workload(&db);
    db.wait_for_background_quiescence();

    // Registry mirrors agree with the scheduler's own metrics.
    let m = svc.metrics();
    assert!(m.jobs_submitted > 0, "workload must offload jobs: {m:?}");
    let reg = &bundle.registry;
    assert_eq!(
        reg.counter_value("offload.jobs_submitted"),
        Some(m.jobs_submitted)
    );
    assert_eq!(reg.counter_value("offload.fpga_jobs"), Some(m.fpga_jobs));
    assert_eq!(
        reg.counter_value("offload.device_faults"),
        Some(m.device_faults)
    );
    // Injected faults skip the engine, so busy time is recorded exactly
    // once per job that actually ran on the device.
    let busy = reg
        .histogram_snapshot("offload.engine_busy_micros")
        .unwrap();
    assert_eq!(busy.count, m.fpga_jobs);

    // Device jobs publish their per-module cycle attribution.
    if m.fpga_jobs > 0 {
        let device_cycles: u64 = [
            "fcae.cycles.decoder",
            "fcae.cycles.comparer",
            "fcae.cycles.transfer",
            "fcae.cycles.encoder",
            "fcae.cycles.axi",
            "fcae.cycles.overhead",
            "fcae.cycles.memory",
        ]
        .iter()
        .map(|n| reg.counter_value(n).unwrap())
        .sum();
        assert!(device_cycles > 0, "cycle attribution must be non-empty");
    }

    // Store-side metrics land on the same registry.
    assert!(reg.histogram_snapshot("lsm.put_micros").unwrap().count > 0);
    assert!(reg.counter_value("lsm.flush.count").unwrap() > 0);
    let stats = db.property("lsm.stats").unwrap();
    assert!(stats.contains("flushes="), "stats report:\n{stats}");
    let text = db.property("lsm.metrics").unwrap();
    assert!(text.contains("offload.jobs_submitted"));

    // The trace interleaves store and scheduler events.
    let events = bundle.trace.snapshot();
    let has = |f: &dyn Fn(&obs::EventKind) -> bool| events.iter().any(|e| f(&e.kind));
    assert!(has(&|k| matches!(k, obs::EventKind::Flush { .. })));
    assert!(has(&|k| matches!(
        k,
        obs::EventKind::EngineDispatch { engine: "fcae", .. }
    )));
    assert!(has(&|k| matches!(k, obs::EventKind::EngineFault { .. })));
}
