//! Counters the scheduler keeps about its own dispatch decisions — the
//! observability half of the acceptance criteria ("the service sustains
//! more than one compaction in flight").

use std::time::Duration;

use crate::fault::DeviceFaultKind;

/// Cumulative scheduler metrics; cheap to clone out under the lock.
#[derive(Debug, Default, Clone)]
pub struct OffloadMetrics {
    /// Compactions submitted to the service.
    pub jobs_submitted: u64,
    /// Jobs completed on an FPGA engine slot.
    pub fpga_jobs: u64,
    /// Jobs sent to the CPU because they exceed the device's `N`.
    pub cpu_fallback_oversized: u64,
    /// Jobs sent to the CPU because the device-time estimate exceeded the
    /// per-job timeout.
    pub cpu_fallback_timeout: u64,
    /// Jobs sent to the CPU because no slot freed within the wait budget.
    pub cpu_fallback_budget: u64,
    /// Device faults observed, all kinds (injected or real engine
    /// errors). Always equals the sum of the per-kind counters below.
    pub device_faults: u64,
    /// Dispatch-time transient faults: the engine never touched the
    /// output factory, so the CPU retry needed no cleanup.
    pub faults_transient: u64,
    /// Mid-job timeouts: the engine ran against the real output factory,
    /// then the device failed to acknowledge; outputs were discarded.
    pub faults_midjob_timeout: u64,
    /// Mid-job poisoned outputs: the device "completed" but its output
    /// failed validation; outputs were discarded.
    pub faults_midjob_poisoned: u64,
    /// Output files discarded after mid-job faults. The files become
    /// orphans swept by the store's obsolete-file GC; this counter is
    /// how tests prove the discard actually happened.
    pub midjob_outputs_discarded: u64,
    /// Jobs retried on the CPU after a device fault.
    pub cpu_retries_after_fault: u64,
    /// CPU-path jobs that ran on the staged pipelined engine (input size
    /// reached `pipelined_cpu_threshold_bytes`).
    pub cpu_pipelined_jobs: u64,
    /// Maintenance jobs (value-log GC) routed through the scheduler.
    pub maintenance_jobs: u64,
    /// Maintenance jobs that ran inline because no engine slot freed
    /// within the wait budget (GC never blocks forever behind
    /// compactions; it just loses the contention round).
    pub maintenance_inline: u64,
    /// Peak engine slots busy at once.
    pub max_fpga_in_flight: u64,
    /// Peak jobs inside the service at once (FPGA + CPU fallback).
    pub max_jobs_in_flight: u64,
    /// Total time jobs spent queued for a slot.
    pub total_queue_wait: Duration,
    /// Total wall time inside device engines.
    pub fpga_busy_time: Duration,
    /// Total wall time inside the CPU fallback engine.
    pub cpu_busy_time: Duration,
}

impl OffloadMetrics {
    /// Jobs that ended up on the CPU for any reason.
    pub fn cpu_jobs(&self) -> u64 {
        self.cpu_fallback_oversized
            + self.cpu_fallback_timeout
            + self.cpu_fallback_budget
            + self.cpu_retries_after_fault
    }

    /// Bumps the total and the per-kind fault counter together, keeping
    /// `device_faults == sum(per-kind)` by construction.
    pub(crate) fn record_fault(&mut self, kind: DeviceFaultKind) {
        self.device_faults += 1;
        match kind {
            DeviceFaultKind::Transient => self.faults_transient += 1,
            DeviceFaultKind::MidJobTimeout => self.faults_midjob_timeout += 1,
            DeviceFaultKind::MidJobPoisoned => self.faults_midjob_poisoned += 1,
        }
    }

    /// The per-kind fault counter.
    pub fn faults_of_kind(&self, kind: DeviceFaultKind) -> u64 {
        match kind {
            DeviceFaultKind::Transient => self.faults_transient,
            DeviceFaultKind::MidJobTimeout => self.faults_midjob_timeout,
            DeviceFaultKind::MidJobPoisoned => self.faults_midjob_poisoned,
        }
    }
}
