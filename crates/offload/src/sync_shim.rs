//! Concurrency primitives for the scheduler, swappable for loom.
//!
//! [`crate::OffloadService`] guards its slot table with a
//! parking_lot-style mutex/condvar pair. Production builds use
//! `parking_lot` directly; building with `RUSTFLAGS="--cfg loom"` swaps
//! in a facade over `loom`'s instrumented primitives so the model suites
//! (`loom_models` in `lib.rs`) can explore slot-grant, fault-retry, and
//! aging interleavings through the exact lock protocol production runs.
//! The facade keeps parking_lot's calling convention — `lock()` returns
//! the guard directly, `Condvar::wait*` borrows `&mut MutexGuard` — so
//! the scheduler source is identical under both cfgs.

#[cfg(not(loom))]
pub use parking_lot::{Condvar, Mutex, MutexGuard};

#[cfg(loom)]
pub use self::loom_facade::{Condvar, Mutex, MutexGuard};

#[cfg(loom)]
mod loom_facade {
    use std::sync::PoisonError;
    use std::time::Instant;

    /// Result of a timed wait (only `timed_out` is exposed, matching the
    /// subset of parking_lot's type the scheduler uses).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        /// True if the wait ended because the deadline passed.
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// parking_lot-shaped mutex over `loom::sync::Mutex`.
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized> {
        inner: loom::sync::Mutex<T>,
    }

    /// RAII guard for [`Mutex`].
    pub struct MutexGuard<'a, T: ?Sized> {
        // `Option` so `Condvar::wait*` can temporarily take the loom
        // guard (loom's wait consumes and returns it).
        guard: Option<loom::sync::MutexGuard<'a, T>>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex (not `const`: loom's constructor isn't).
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: loom::sync::Mutex::new(value),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the mutex, blocking until available.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner); // LOCK-ORDER-OK: generic shim method; callers annotate their own sites.
            MutexGuard { guard: Some(guard) }
        }
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            // PANIC-OK: the Option is only None inside Condvar::wait*,
            // which holds the guard exclusively for the duration.
            self.guard.as_ref().expect("guard present outside wait")
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // PANIC-OK: see deref().
            self.guard.as_mut().expect("guard present outside wait")
        }
    }

    /// Condition variable pairing with [`Mutex`].
    #[derive(Debug, Default)]
    pub struct Condvar {
        inner: loom::sync::Condvar,
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub fn new() -> Condvar {
            Condvar::default()
        }

        /// Waits until `deadline`, releasing and reacquiring the guard's
        /// mutex around the wait.
        pub fn wait_until<T>(
            &self,
            guard: &mut MutexGuard<'_, T>,
            deadline: Instant,
        ) -> WaitTimeoutResult {
            let timeout = deadline.saturating_duration_since(Instant::now());
            // PANIC-OK: see deref() — callers cannot observe the None.
            let g = guard.guard.take().expect("guard present outside wait");
            let (g, result) = match self.inner.wait_timeout(g, timeout) {
                Ok(pair) => pair,
                Err(e) => e.into_inner(),
            };
            guard.guard = Some(g);
            WaitTimeoutResult(result.timed_out())
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }
}
