//! Injectable device faults, for exercising the CPU-retry path without a
//! real flaky card.
//!
//! Faults come in three kinds ([`DeviceFaultKind`]):
//!
//! * **Transient** — fires at dispatch time, *before* the engine touches
//!   the output-file factory. A transiently-faulted job has no on-disk
//!   side effects to clean up; the CPU retry is exactly-once by
//!   construction.
//! * **MidJobTimeout** — the engine runs to completion against the real
//!   output factory, but the device never acknowledges within its
//!   deadline. The scheduler must discard the produced outputs (the
//!   store's pending-outputs GC sweeps the orphaned files) and retry on
//!   the CPU with fresh output numbers.
//! * **MidJobPoisoned** — the device "completes" but its output fails
//!   validation and cannot be trusted. Same cleanup discipline as a
//!   timeout; counted separately so operators can tell a slow card from
//!   a corrupting one.

use std::sync::atomic::{AtomicU64, Ordering};

/// How an injected device fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceFaultKind {
    /// Dispatch-time fault: the engine is never invoked, the factory is
    /// never touched. Retryable with zero cleanup.
    Transient,
    /// The engine ran against the real output factory, then the device
    /// timed out before acknowledging. Outputs must be discarded.
    MidJobTimeout,
    /// The engine ran, but its output is poisoned (fails validation).
    /// Outputs must be discarded.
    MidJobPoisoned,
}

impl DeviceFaultKind {
    /// Every kind, in decision-priority order (explicit budgets and
    /// periodic schedules are consulted in this order).
    pub const ALL: [DeviceFaultKind; 3] = [
        DeviceFaultKind::Transient,
        DeviceFaultKind::MidJobTimeout,
        DeviceFaultKind::MidJobPoisoned,
    ];

    /// True for kinds that fire *after* the engine used the output
    /// factory, i.e. the scheduler has device-side outputs to unwind.
    pub fn is_mid_job(self) -> bool {
        !matches!(self, DeviceFaultKind::Transient)
    }

    /// Stable lowercase name used in metric names and error messages.
    pub fn name(self) -> &'static str {
        match self {
            DeviceFaultKind::Transient => "transient",
            DeviceFaultKind::MidJobTimeout => "midjob_timeout",
            DeviceFaultKind::MidJobPoisoned => "midjob_poisoned",
        }
    }

    fn index(self) -> usize {
        match self {
            DeviceFaultKind::Transient => 0,
            DeviceFaultKind::MidJobTimeout => 1,
            DeviceFaultKind::MidJobPoisoned => 2,
        }
    }
}

/// Decides whether (and how) the next device dispatch fails.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Explicit per-kind budgets: the next `n` dispatches fault with
    /// that kind.
    fail_next: [AtomicU64; 3],
    /// Per-kind periodic faults: every `n`-th dispatch faults (0 = off).
    fail_every: [AtomicU64; 3],
    /// Device dispatches observed so far.
    dispatches: AtomicU64,
}

impl FaultInjector {
    /// A quiet injector.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Makes the next `n` device dispatches fail transiently.
    pub fn inject(&self, n: u64) {
        self.inject_kind(DeviceFaultKind::Transient, n);
    }

    /// Makes the next `n` device dispatches fail with `kind`.
    pub fn inject_kind(&self, kind: DeviceFaultKind, n: u64) {
        self.fail_next[kind.index()].fetch_add(n, Ordering::SeqCst);
    }

    /// Makes every `n`-th dispatch fail transiently (0 disables).
    pub fn fail_every(&self, n: u64) {
        self.fail_every_kind(DeviceFaultKind::Transient, n);
    }

    /// Makes every `n`-th dispatch fail with `kind` (0 disables that
    /// kind's schedule).
    pub fn fail_every_kind(&self, kind: DeviceFaultKind, n: u64) {
        self.fail_every[kind.index()].store(n, Ordering::SeqCst);
    }

    /// Called once per device dispatch; `Some(kind)` means "the device
    /// faults this way". Explicit budgets win over periodic schedules;
    /// within each, [`DeviceFaultKind::ALL`] order breaks ties.
    pub fn should_fault(&self) -> Option<DeviceFaultKind> {
        let dispatch = self.dispatches.fetch_add(1, Ordering::SeqCst) + 1;
        // Consume one unit of the first non-empty explicit budget.
        for kind in DeviceFaultKind::ALL {
            let cell = &self.fail_next[kind.index()];
            let mut budget = cell.load(Ordering::SeqCst);
            while budget > 0 {
                match cell.compare_exchange(budget, budget - 1, Ordering::SeqCst, Ordering::SeqCst)
                {
                    Ok(_) => return Some(kind),
                    Err(actual) => budget = actual,
                }
            }
        }
        for kind in DeviceFaultKind::ALL {
            let every = self.fail_every[kind.index()].load(Ordering::SeqCst);
            if every != 0 && dispatch % every == 0 {
                return Some(kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_budget_is_consumed() {
        let f = FaultInjector::new();
        assert_eq!(f.should_fault(), None);
        f.inject(2);
        assert_eq!(f.should_fault(), Some(DeviceFaultKind::Transient));
        assert_eq!(f.should_fault(), Some(DeviceFaultKind::Transient));
        assert_eq!(f.should_fault(), None);
    }

    #[test]
    fn periodic_faults_hit_every_nth() {
        let f = FaultInjector::new();
        f.fail_every(3);
        let hits: Vec<bool> = (0..6).map(|_| f.should_fault().is_some()).collect();
        assert_eq!(hits, vec![false, false, true, false, false, true]);
        f.fail_every(0);
        assert_eq!(f.should_fault(), None);
    }

    #[test]
    fn kinds_have_independent_budgets() {
        let f = FaultInjector::new();
        f.inject_kind(DeviceFaultKind::MidJobTimeout, 1);
        f.inject_kind(DeviceFaultKind::MidJobPoisoned, 1);
        // Budgets drain in ALL order: timeout first, then poisoned.
        assert_eq!(f.should_fault(), Some(DeviceFaultKind::MidJobTimeout));
        assert_eq!(f.should_fault(), Some(DeviceFaultKind::MidJobPoisoned));
        assert_eq!(f.should_fault(), None);
    }

    #[test]
    fn explicit_budget_wins_over_periodic_schedule() {
        let f = FaultInjector::new();
        f.fail_every_kind(DeviceFaultKind::MidJobPoisoned, 1);
        f.inject_kind(DeviceFaultKind::Transient, 1);
        assert_eq!(f.should_fault(), Some(DeviceFaultKind::Transient));
        assert_eq!(f.should_fault(), Some(DeviceFaultKind::MidJobPoisoned));
    }

    #[test]
    fn kind_predicates_and_names() {
        assert!(!DeviceFaultKind::Transient.is_mid_job());
        assert!(DeviceFaultKind::MidJobTimeout.is_mid_job());
        assert!(DeviceFaultKind::MidJobPoisoned.is_mid_job());
        let names: Vec<&str> = DeviceFaultKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["transient", "midjob_timeout", "midjob_poisoned"]
        );
    }
}
