//! Injectable device faults, for exercising the CPU-retry path without a
//! real flaky card. Faults fire at dispatch time, *before* the engine
//! touches the output-file factory, so a faulted job has no on-disk
//! side effects to clean up — the retry is exactly-once by construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Decides whether the next device dispatch fails.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Explicit budget: the next `n` dispatches fault.
    fail_next: AtomicU64,
    /// Periodic faults: every `n`-th dispatch faults (0 = off).
    fail_every: AtomicU64,
    /// Device dispatches observed so far.
    dispatches: AtomicU64,
}

impl FaultInjector {
    /// A quiet injector.
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Makes the next `n` device dispatches fail.
    pub fn inject(&self, n: u64) {
        self.fail_next.fetch_add(n, Ordering::SeqCst);
    }

    /// Makes every `n`-th dispatch fail (0 disables periodic faults).
    pub fn fail_every(&self, n: u64) {
        self.fail_every.store(n, Ordering::SeqCst);
    }

    /// Called once per device dispatch; true means "the device faulted".
    pub fn should_fault(&self) -> bool {
        let dispatch = self.dispatches.fetch_add(1, Ordering::SeqCst) + 1;
        // Consume one unit of the explicit budget if available.
        let mut budget = self.fail_next.load(Ordering::SeqCst);
        while budget > 0 {
            match self.fail_next.compare_exchange(
                budget,
                budget - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return true,
                Err(actual) => budget = actual,
            }
        }
        let every = self.fail_every.load(Ordering::SeqCst);
        every != 0 && dispatch % every == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injected_budget_is_consumed() {
        let f = FaultInjector::new();
        assert!(!f.should_fault());
        f.inject(2);
        assert!(f.should_fault());
        assert!(f.should_fault());
        assert!(!f.should_fault());
    }

    #[test]
    fn periodic_faults_hit_every_nth() {
        let f = FaultInjector::new();
        f.fail_every(3);
        let hits: Vec<bool> = (0..6).map(|_| f.should_fault()).collect();
        assert_eq!(hits, vec![false, false, true, false, false, true]);
        f.fail_every(0);
        assert!(!f.should_fault());
    }
}
