//! Compaction offload service: a scheduling layer between the store and
//! its engines.
//!
//! The paper attaches *one* FCAE instance per card, but its Table VII
//! resource numbers show smaller configurations leave most of the KCU1500
//! unused. This crate exploits that headroom: it derives how many engine
//! instances fit the card (`fcae::resources::ResourceModel::max_instances`),
//! instantiates that many [`fcae::FcaeEngine`] slots, and schedules the
//! store's compactions across them:
//!
//! * **Priority queue** — queued jobs are served `Flush > L0->L1 >
//!   deeper levels`, with starvation aging ([`queue::PriorityPolicy`]).
//! * **Hybrid dispatch** — a job waits up to a configurable budget for a
//!   free slot, then falls back to the host CPU; oversized jobs (too many
//!   inputs, or an estimated device time past the per-job timeout) go to
//!   the CPU immediately, mirroring the paper's Fig. 6 software path.
//! * **Fault handling** — injected (or real) device faults are retried on
//!   the CPU. *Transient* faults fire before the engine touches the
//!   output-file factory, so those retries never duplicate or lose keys;
//!   *mid-job* faults (device timeout, poisoned output) fire after the
//!   engine produced real outputs — the scheduler discards the outcome
//!   (the store's pending-outputs GC sweeps the orphans) and the CPU
//!   retry installs a fresh set of files exactly once.
//! * **Backpressure** — queue saturation surfaces to the store as
//!   [`lsm::WritePressure`], which `lsm::Db` turns into the same
//!   slowdown/stall mechanics as its L0 triggers.
//!
//! The service implements [`lsm::CompactionEngine`], so
//! `Db::open_with_engine(dir, opts, Arc::new(OffloadService::new(..)))`
//! is all it takes; pair it with `Options::background_threads >= slots`
//! so the store can actually keep several slots busy.

pub mod fault;
pub mod metrics;
pub mod queue;
pub mod sync_shim;

use std::time::{Duration, Instant};

use fcae::{FcaeConfig, FcaeEngine, ResourceModel};
use lsm::compaction::{
    CompactionEngine, CompactionOutcome, CompactionRequest, CpuCompactionEngine, OutputFileFactory,
    WritePressure,
};
use lsm::PipelinedCompactionEngine;
use sync_shim::{Condvar, Mutex};

pub use fault::{DeviceFaultKind, FaultInjector};
pub use metrics::OffloadMetrics;
pub use queue::{JobClass, PriorityPolicy, Waiter};

/// Scheduler tunables.
#[derive(Debug, Clone, Copy)]
pub struct OffloadConfig {
    /// Cap on engine slots (the resource model may allow fewer).
    pub max_engines: usize,
    /// How long a job waits for a free slot before falling back to the
    /// CPU (hybrid dispatch).
    pub wait_budget: Duration,
    /// Jobs whose *estimated* device time exceeds this run on the CPU
    /// instead of occupying a slot (per-job timeout, decided up front so
    /// a timed-out job never has device-side output to unwind).
    pub job_timeout: Duration,
    /// Starvation aging interval for the priority queue.
    pub aging_interval: Duration,
    /// Queued jobs at which the service advises `WritePressure::Slowdown`.
    pub slowdown_queue_depth: usize,
    /// Queued jobs at which the service advises `WritePressure::Stop`.
    pub stop_queue_depth: usize,
    /// CPU-path jobs whose total input size is at least this many bytes
    /// run on the staged [`lsm::PipelinedCompactionEngine`] instead of
    /// the single-threaded CPU engine. Small jobs stay single-threaded —
    /// the pipeline's thread/channel setup isn't worth it below a few
    /// megabytes. `u64::MAX` disables the pipelined path.
    pub pipelined_cpu_threshold_bytes: u64,
}

impl Default for OffloadConfig {
    fn default() -> Self {
        OffloadConfig {
            max_engines: usize::MAX,
            wait_budget: Duration::from_millis(50),
            job_timeout: Duration::from_secs(5),
            aging_interval: Duration::from_millis(20),
            slowdown_queue_depth: 4,
            stop_queue_depth: 8,
            pipelined_cpu_threshold_bytes: 8 << 20,
        }
    }
}

/// Pre-registered observability handles (`OffloadService::with_obs`).
/// Counters mirror [`OffloadMetrics`]; the histograms add the queue-wait
/// and busy-time distributions the scalar totals cannot show; dispatch,
/// fault and fallback decisions land on the trace with a job id.
struct OffloadObs {
    bundle: std::sync::Arc<obs::Obs>,
    queue_wait_micros: std::sync::Arc<obs::Histogram>,
    engine_busy_micros: std::sync::Arc<obs::Histogram>,
    cpu_busy_micros: std::sync::Arc<obs::Histogram>,
    jobs_submitted: std::sync::Arc<obs::Counter>,
    fpga_jobs: std::sync::Arc<obs::Counter>,
    cpu_fallback_oversized: std::sync::Arc<obs::Counter>,
    cpu_fallback_timeout: std::sync::Arc<obs::Counter>,
    cpu_fallback_budget: std::sync::Arc<obs::Counter>,
    device_faults: std::sync::Arc<obs::Counter>,
    fault_transient: std::sync::Arc<obs::Counter>,
    fault_midjob_timeout: std::sync::Arc<obs::Counter>,
    fault_midjob_poisoned: std::sync::Arc<obs::Counter>,
    fault_outputs_discarded: std::sync::Arc<obs::Counter>,
    cpu_retries_after_fault: std::sync::Arc<obs::Counter>,
    cpu_pipelined_jobs: std::sync::Arc<obs::Counter>,
    maintenance_jobs: std::sync::Arc<obs::Counter>,
    maintenance_inline: std::sync::Arc<obs::Counter>,
    max_fpga_in_flight: std::sync::Arc<obs::Gauge>,
    max_jobs_in_flight: std::sync::Arc<obs::Gauge>,
    /// Per-module device cycle attribution (`fcae.cycles.*`), summed
    /// over every job that ran on an engine, truncated to whole cycles.
    cycles_decoder: std::sync::Arc<obs::Counter>,
    cycles_comparer: std::sync::Arc<obs::Counter>,
    cycles_transfer: std::sync::Arc<obs::Counter>,
    cycles_encoder: std::sync::Arc<obs::Counter>,
    cycles_axi: std::sync::Arc<obs::Counter>,
    cycles_overhead: std::sync::Arc<obs::Counter>,
    cycles_memory: std::sync::Arc<obs::Counter>,
}

impl OffloadObs {
    fn new(bundle: std::sync::Arc<obs::Obs>) -> Self {
        let r = &bundle.registry;
        OffloadObs {
            queue_wait_micros: r.histogram("offload.queue_wait_micros"),
            engine_busy_micros: r.histogram("offload.engine_busy_micros"),
            cpu_busy_micros: r.histogram("offload.cpu_busy_micros"),
            jobs_submitted: r.counter("offload.jobs_submitted"),
            fpga_jobs: r.counter("offload.fpga_jobs"),
            cpu_fallback_oversized: r.counter("offload.cpu_fallback_oversized"),
            cpu_fallback_timeout: r.counter("offload.cpu_fallback_timeout"),
            cpu_fallback_budget: r.counter("offload.cpu_fallback_budget"),
            device_faults: r.counter("offload.device_faults"),
            fault_transient: r.counter("offload.fault.transient"),
            fault_midjob_timeout: r.counter("offload.fault.midjob_timeout"),
            fault_midjob_poisoned: r.counter("offload.fault.midjob_poisoned"),
            fault_outputs_discarded: r.counter("offload.fault.outputs_discarded"),
            cpu_retries_after_fault: r.counter("offload.cpu_retries_after_fault"),
            cpu_pipelined_jobs: r.counter("offload.cpu_pipelined_jobs"),
            maintenance_jobs: r.counter("offload.maintenance.jobs"),
            maintenance_inline: r.counter("offload.maintenance.inline"),
            max_fpga_in_flight: r.gauge("offload.max_fpga_in_flight"),
            max_jobs_in_flight: r.gauge("offload.max_jobs_in_flight"),
            cycles_decoder: r.counter("fcae.cycles.decoder"),
            cycles_comparer: r.counter("fcae.cycles.comparer"),
            cycles_transfer: r.counter("fcae.cycles.transfer"),
            cycles_encoder: r.counter("fcae.cycles.encoder"),
            cycles_axi: r.counter("fcae.cycles.axi"),
            cycles_overhead: r.counter("fcae.cycles.overhead"),
            cycles_memory: r.counter("fcae.cycles.memory"),
            bundle,
        }
    }

    /// The registry mirror of the per-kind fault counters.
    fn fault_counter(&self, kind: DeviceFaultKind) -> &obs::Counter {
        match kind {
            DeviceFaultKind::Transient => &self.fault_transient,
            DeviceFaultKind::MidJobTimeout => &self.fault_midjob_timeout,
            DeviceFaultKind::MidJobPoisoned => &self.fault_midjob_poisoned,
        }
    }

    /// Adds one kernel's per-module cycle attribution to the registry.
    fn record_breakdown(&self, b: &fcae::ModuleBreakdown) {
        self.cycles_decoder.add(b.decoder as u64);
        self.cycles_comparer.add(b.comparer as u64);
        self.cycles_transfer.add(b.transfer as u64);
        self.cycles_encoder.add(b.encoder as u64);
        self.cycles_axi.add(b.axi as u64);
        self.cycles_overhead.add(b.overhead as u64);
        self.cycles_memory.add(b.memory as u64);
    }
}

struct ServiceState {
    /// Indices into `engines` that are idle.
    free_slots: Vec<usize>,
    /// Jobs waiting for a slot.
    waiting: Vec<Waiter>,
    next_waiter_id: u64,
    /// Engine slots currently executing.
    fpga_in_flight: usize,
    /// Jobs inside the service (any execution path).
    jobs_in_flight: usize,
    metrics: OffloadMetrics,
}

/// The offload scheduler; a drop-in [`lsm::CompactionEngine`].
pub struct OffloadService {
    device: FcaeConfig,
    config: OffloadConfig,
    policy: PriorityPolicy,
    engines: Vec<FcaeEngine>,
    state: Mutex<ServiceState>,
    /// Signaled whenever a slot frees or queue membership changes.
    slot_free: Condvar,
    faults: FaultInjector,
    obs: Option<OffloadObs>,
}

impl OffloadService {
    /// Creates a service with as many engine instances of `device` as fit
    /// the card per the Table VII resource model (capped by
    /// `config.max_engines`).
    pub fn new(device: FcaeConfig, config: OffloadConfig) -> Self {
        let fit = ResourceModel.max_instances(&device);
        Self::with_slots(device, fit.min(config.max_engines).max(1), config)
    }

    /// Creates a service with exactly `slots` engine instances (tests and
    /// what-if experiments bypass the resource model this way).
    pub fn with_slots(device: FcaeConfig, slots: usize, config: OffloadConfig) -> Self {
        let slots = slots.max(1);
        let engines = (0..slots).map(|_| FcaeEngine::new(device)).collect();
        OffloadService {
            device,
            config,
            policy: PriorityPolicy {
                aging_interval: config.aging_interval,
            },
            engines,
            state: Mutex::new(ServiceState {
                free_slots: (0..slots).collect(),
                waiting: Vec::new(),
                next_waiter_id: 0,
                fpga_in_flight: 0,
                jobs_in_flight: 0,
                metrics: OffloadMetrics::default(),
            }),
            slot_free: Condvar::new(),
            faults: FaultInjector::new(),
            obs: None,
        }
    }

    /// Attaches an observability bundle: scheduler counters and
    /// histograms register on its registry (`offload.*` names) and every
    /// dispatch/fault/fallback decision is traced. Share the bundle with
    /// the `lsm::Db` (via `Options::obs`) for one unified export.
    pub fn with_obs(mut self, bundle: std::sync::Arc<obs::Obs>) -> Self {
        self.obs = Some(OffloadObs::new(bundle));
        self
    }

    fn trace(&self, kind: obs::EventKind) {
        if let Some(o) = &self.obs {
            o.bundle.event(kind);
        }
    }

    /// Number of engine slots.
    pub fn engine_slots(&self) -> usize {
        self.engines.len()
    }

    /// The device configuration each slot runs.
    pub fn device_config(&self) -> &FcaeConfig {
        &self.device
    }

    /// The fault injector (tests use it to provoke CPU retries).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// Snapshot of the scheduler metrics.
    pub fn metrics(&self) -> OffloadMetrics {
        self.state.lock().metrics.clone() // LOCK-ORDER: offload.state 110
    }

    /// Rough device time for `req`: kernel at `V` bytes/cycle plus two
    /// PCIe crossings. Used only to veto jobs against the per-job
    /// timeout, so it errs simple rather than exact.
    fn estimated_device_time(&self, req: &CompactionRequest) -> Duration {
        let bytes: u64 = req.inputs.iter().map(|i| i.bytes()).sum();
        let kernel = bytes as f64 / (self.device.v as f64 * self.device.freq_mhz as f64 * 1e6);
        let pcie = 2.0 * self.device.pcie.per_transfer_latency_sec
            + 2.0 * bytes as f64 / self.device.pcie.bandwidth_bytes_per_sec;
        Duration::from_secs_f64(kernel + pcie)
    }

    /// Waits (with priority + aging) for an engine slot, up to the wait
    /// budget. Returns the slot index, or `None` on budget exhaustion.
    fn acquire_slot(&self, class: JobClass) -> Option<usize> {
        let enqueued = Instant::now();
        let deadline = enqueued + self.config.wait_budget;
        let mut state = self.state.lock(); // LOCK-ORDER: offload.state 110
        let id = state.next_waiter_id;
        state.next_waiter_id += 1;
        state.waiting.push(Waiter {
            id,
            class,
            enqueued,
        });
        loop {
            let now = Instant::now();
            let chosen = self.policy.pick(now, &state.waiting).map(|w| w.id);
            if chosen == Some(id) {
                if let Some(slot) = state.free_slots.pop() {
                    state.waiting.retain(|w| w.id != id);
                    let waited = now.saturating_duration_since(enqueued);
                    state.metrics.total_queue_wait += waited;
                    if let Some(o) = &self.obs {
                        o.queue_wait_micros.record(waited.as_micros() as u64);
                    }
                    // Other waiters may still find free slots.
                    self.slot_free.notify_all();
                    return Some(slot);
                }
            }
            if now >= deadline {
                state.waiting.retain(|w| w.id != id);
                let waited = now.saturating_duration_since(enqueued);
                state.metrics.total_queue_wait += waited;
                if let Some(o) = &self.obs {
                    o.queue_wait_micros.record(waited.as_micros() as u64);
                }
                // Our departure may promote another waiter.
                self.slot_free.notify_all();
                return None;
            }
            self.slot_free.wait_until(&mut state, deadline);
        }
    }

    fn release_slot(&self, slot: usize) {
        let mut state = self.state.lock(); // LOCK-ORDER: offload.state 110
        state.fpga_in_flight -= 1;
        state.free_slots.push(slot);
        self.slot_free.notify_all();
    }

    fn run_cpu(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
        job: u64,
    ) -> lsm::Result<CompactionOutcome> {
        let t0 = Instant::now();
        let input_bytes: u64 = req.inputs.iter().map(|i| i.bytes()).sum();
        self.trace(obs::EventKind::EngineDispatch {
            job,
            engine: "cpu",
            bytes: input_bytes,
        });
        let result = if input_bytes >= self.config.pipelined_cpu_threshold_bytes {
            // Large fallback job: overlap read/merge/encode across
            // threads. Byte-identical output to the plain CPU engine.
            self.state.lock().metrics.cpu_pipelined_jobs += 1; // LOCK-ORDER: offload.state 110
            if let Some(o) = &self.obs {
                o.cpu_pipelined_jobs.inc();
            }
            PipelinedCompactionEngine::default().compact(req, out)
        } else {
            CpuCompactionEngine.compact(req, out)
        };
        let busy = t0.elapsed();
        self.state.lock().metrics.cpu_busy_time += busy; // LOCK-ORDER: offload.state 110
        if let Some(o) = &self.obs {
            o.cpu_busy_micros.record(busy.as_micros() as u64);
        }
        result
    }

    fn run_job(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
        job: u64,
    ) -> lsm::Result<CompactionOutcome> {
        // Software paths first (Fig. 6): too many inputs for the device,
        // or a job too large for the per-job device-time budget.
        if req.inputs.len() > self.device.n_inputs {
            self.state.lock().metrics.cpu_fallback_oversized += 1; // LOCK-ORDER: offload.state 110
            if let Some(o) = &self.obs {
                o.cpu_fallback_oversized.inc();
            }
            self.trace(obs::EventKind::EngineFallback {
                job,
                reason: "oversized",
            });
            return self.run_cpu(req, out, job);
        }
        if self.estimated_device_time(req) > self.config.job_timeout {
            self.state.lock().metrics.cpu_fallback_timeout += 1; // LOCK-ORDER: offload.state 110
            if let Some(o) = &self.obs {
                o.cpu_fallback_timeout.inc();
            }
            self.trace(obs::EventKind::EngineFallback {
                job,
                reason: "timeout",
            });
            return self.run_cpu(req, out, job);
        }

        let Some(slot) = self.acquire_slot(JobClass::from_level(req.level)) else {
            // Hybrid dispatch: the device is saturated, the host is idle.
            self.state.lock().metrics.cpu_fallback_budget += 1; // LOCK-ORDER: offload.state 110
            if let Some(o) = &self.obs {
                o.cpu_fallback_budget.inc();
            }
            self.trace(obs::EventKind::EngineFallback {
                job,
                reason: "budget",
            });
            return self.run_cpu(req, out, job);
        };

        {
            let mut state = self.state.lock(); // LOCK-ORDER: offload.state 110
            state.fpga_in_flight += 1;
            state.metrics.max_fpga_in_flight = state
                .metrics
                .max_fpga_in_flight
                .max(state.fpga_in_flight as u64);
            if let Some(o) = &self.obs {
                o.max_fpga_in_flight.set_max(state.fpga_in_flight as u64);
            }
        }
        self.trace(obs::EventKind::EngineDispatch {
            job,
            engine: "fcae",
            bytes: req.inputs.iter().map(|i| i.bytes()).sum(),
        });
        let injected = self.faults.should_fault();
        let result = if injected == Some(DeviceFaultKind::Transient) {
            // Dispatch-time fault: the engine never runs, the factory is
            // never touched, nothing to clean up.
            Err(lsm::Error::Io(std::io::Error::other(
                "injected device fault",
            )))
        } else {
            let t0 = Instant::now();
            let r = self.engines[slot].compact(req, out);
            let busy = t0.elapsed();
            self.state.lock().metrics.fpga_busy_time += busy; // LOCK-ORDER: offload.state 110
            if let Some(o) = &self.obs {
                o.engine_busy_micros.record(busy.as_micros() as u64);
                if r.is_ok() {
                    o.record_breakdown(&self.engines[slot].last_report().breakdown);
                }
            }
            match (r, injected) {
                (Ok(outcome), Some(kind)) => {
                    // Mid-job fault: the engine already ran against the
                    // real output factory. Discard the outcome — the
                    // allocated files become orphans the store's
                    // pending-outputs GC sweeps — and surface a device
                    // error so the CPU retry installs a fresh set of
                    // outputs exactly once.
                    let discarded = outcome.outputs.len() as u64;
                    self.state.lock().metrics.midjob_outputs_discarded += discarded; // LOCK-ORDER: offload.state 110
                    if let Some(o) = &self.obs {
                        o.fault_outputs_discarded.add(discarded);
                    }
                    Err(lsm::Error::Io(std::io::Error::other(match kind {
                        DeviceFaultKind::MidJobTimeout => "injected mid-job device timeout",
                        _ => "injected poisoned device output",
                    })))
                }
                (r, _) => r,
            }
        };
        self.release_slot(slot);

        match result {
            Ok(outcome) => {
                self.state.lock().metrics.fpga_jobs += 1; // LOCK-ORDER: offload.state 110
                if let Some(o) = &self.obs {
                    o.fpga_jobs.inc();
                }
                Ok(outcome)
            }
            Err(_) => {
                // Device fault. Real (non-injected) engine errors happen
                // before any output file is allocated, so they classify
                // as transient; mid-job injections had their outputs
                // discarded above. Either way the whole job retries on
                // the CPU without losing or duplicating keys.
                let kind = injected.unwrap_or(DeviceFaultKind::Transient);
                let mut state = self.state.lock(); // LOCK-ORDER: offload.state 110
                state.metrics.record_fault(kind);
                state.metrics.cpu_retries_after_fault += 1;
                drop(state);
                if let Some(o) = &self.obs {
                    o.device_faults.inc();
                    o.fault_counter(kind).inc();
                    o.cpu_retries_after_fault.inc();
                }
                self.trace(obs::EventKind::EngineFault { job });
                self.trace(obs::EventKind::EngineFallback {
                    job,
                    reason: "fault-retry",
                });
                self.run_cpu(req, out, job)
            }
        }
    }
}

impl CompactionEngine for OffloadService {
    fn name(&self) -> &str {
        "offload"
    }

    fn max_inputs(&self) -> usize {
        // The service handles oversized requests itself (CPU path), so it
        // never asks the store to fall back.
        usize::MAX
    }

    fn compact(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
    ) -> lsm::Result<CompactionOutcome> {
        let job = {
            let mut state = self.state.lock(); // LOCK-ORDER: offload.state 110
            state.metrics.jobs_submitted += 1;
            state.jobs_in_flight += 1;
            state.metrics.max_jobs_in_flight = state
                .metrics
                .max_jobs_in_flight
                .max(state.jobs_in_flight as u64);
            if let Some(o) = &self.obs {
                o.jobs_submitted.inc();
                o.max_jobs_in_flight.set_max(state.jobs_in_flight as u64);
            }
            state.metrics.jobs_submitted
        };
        let result = self.run_job(req, out, job);
        self.state.lock().jobs_in_flight -= 1; // LOCK-ORDER: offload.state 110
        result
    }

    fn write_pressure(&self) -> WritePressure {
        let state = self.state.lock(); // LOCK-ORDER: offload.state 110
        let queued = state.waiting.len();
        if queued >= self.config.stop_queue_depth {
            WritePressure::Stop
        } else if queued >= self.config.slowdown_queue_depth {
            WritePressure::Slowdown
        } else {
            WritePressure::None
        }
    }

    /// Value-log GC contends with compactions for engine slots: the job
    /// queues at [`JobClass::Maintenance`] (lowest rank, ages like the
    /// rest) and occupies the slot it wins while it runs, so a GC pass
    /// and a compaction never overcommit the engines. On wait-budget
    /// exhaustion the job runs inline instead — GC loses the contention
    /// round but is never starved outright.
    fn run_maintenance(&self, job: &mut dyn FnMut()) {
        self.state.lock().metrics.maintenance_jobs += 1; // LOCK-ORDER: offload.state 110
        if let Some(o) = &self.obs {
            o.maintenance_jobs.inc();
        }
        match self.acquire_slot(JobClass::Maintenance) {
            Some(slot) => {
                {
                    let mut state = self.state.lock(); // LOCK-ORDER: offload.state 110
                    state.fpga_in_flight += 1;
                    state.metrics.max_fpga_in_flight = state
                        .metrics
                        .max_fpga_in_flight
                        .max(state.fpga_in_flight as u64);
                    if let Some(o) = &self.obs {
                        o.max_fpga_in_flight.set_max(state.fpga_in_flight as u64);
                    }
                }
                job();
                self.release_slot(slot);
            }
            None => {
                self.state.lock().metrics.maintenance_inline += 1; // LOCK-ORDER: offload.state 110
                if let Some(o) = &self.obs {
                    o.maintenance_inline.inc();
                }
                job();
            }
        }
    }
}

/// Per-shard view of a shared [`OffloadService`].
///
/// A sharded serving layer opens every shard's `lsm::Db` with its own
/// handle to *one* service, so all shards' compaction jobs contend for
/// the same K engine slots — the multi-tenant regime the paper never
/// measured. The handle adds shard attribution on the shared registry
/// (`offload.shard{i}.jobs`, `offload.shard{i}.max_in_flight`) while
/// every scheduling decision, fallback and fault stays on the service's
/// aggregate `offload.*` metrics.
pub struct ShardOffloadHandle {
    service: std::sync::Arc<OffloadService>,
    name: String,
    jobs: Option<std::sync::Arc<obs::Counter>>,
    max_in_flight: Option<std::sync::Arc<obs::Gauge>>,
    in_flight: std::sync::atomic::AtomicU64,
}

impl OffloadService {
    /// A [`CompactionEngine`] for shard `shard` backed by this service.
    /// Jobs submitted through the handle share the service's slots,
    /// queue and wait budget with every other shard's.
    pub fn shard_handle(self: &std::sync::Arc<Self>, shard: usize) -> ShardOffloadHandle {
        let (jobs, max_in_flight) = match &self.obs {
            Some(o) => {
                let r = &o.bundle.registry;
                (
                    Some(r.counter(&format!("offload.shard{shard}.jobs"))),
                    Some(r.gauge(&format!("offload.shard{shard}.max_in_flight"))),
                )
            }
            None => (None, None),
        };
        ShardOffloadHandle {
            service: std::sync::Arc::clone(self),
            name: format!("offload.shard{shard}"),
            jobs,
            max_in_flight,
            in_flight: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl CompactionEngine for ShardOffloadHandle {
    fn name(&self) -> &str {
        &self.name
    }

    fn max_inputs(&self) -> usize {
        self.service.max_inputs()
    }

    fn compact(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
    ) -> lsm::Result<CompactionOutcome> {
        use std::sync::atomic::Ordering;
        if let Some(jobs) = &self.jobs {
            jobs.inc();
        }
        let now = self.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(g) = &self.max_in_flight {
            g.set_max(now);
        }
        let result = self.service.compact(req, out);
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        result
    }

    fn write_pressure(&self) -> WritePressure {
        self.service.write_pressure()
    }

    fn run_maintenance(&self, job: &mut dyn FnMut()) {
        self.service.run_maintenance(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_count_comes_from_the_resource_model() {
        // The full-width 2-input engine packs twice on the KCU1500 once
        // the shared shell is factored out (see fcae::resources).
        let svc = OffloadService::new(FcaeConfig::two_input(), OffloadConfig::default());
        assert_eq!(svc.engine_slots(), 2);
        // The narrow 9-input design fills the card: one slot.
        let svc = OffloadService::new(FcaeConfig::nine_input(), OffloadConfig::default());
        assert_eq!(svc.engine_slots(), 1);
        // Explicit caps win.
        let cfg = OffloadConfig {
            max_engines: 1,
            ..Default::default()
        };
        let svc = OffloadService::new(FcaeConfig::two_input(), cfg);
        assert_eq!(svc.engine_slots(), 1);
    }

    #[test]
    fn pressure_follows_queue_depth() {
        let cfg = OffloadConfig {
            slowdown_queue_depth: 1,
            stop_queue_depth: 2,
            ..Default::default()
        };
        let svc = OffloadService::with_slots(FcaeConfig::two_input(), 1, cfg);
        assert_eq!(svc.write_pressure(), WritePressure::None);
        {
            let mut st = svc.state.lock();
            st.waiting.push(Waiter {
                id: 0,
                class: JobClass::L0ToL1,
                enqueued: Instant::now(),
            });
        }
        assert_eq!(svc.write_pressure(), WritePressure::Slowdown);
        {
            let mut st = svc.state.lock();
            st.waiting.push(Waiter {
                id: 1,
                class: JobClass::Deeper(2),
                enqueued: Instant::now(),
            });
        }
        assert_eq!(svc.write_pressure(), WritePressure::Stop);
    }

    #[test]
    fn maintenance_occupies_and_releases_a_slot() {
        let svc = OffloadService::with_slots(FcaeConfig::two_input(), 1, OffloadConfig::default());
        let mut ran = false;
        svc.run_maintenance(&mut || {
            ran = true;
            assert!(
                svc.state.lock().free_slots.is_empty(),
                "GC must hold the slot while it runs"
            );
        });
        assert!(ran);
        let st = svc.state.lock();
        assert_eq!(st.free_slots.len(), 1, "slot returned");
        assert_eq!(st.fpga_in_flight, 0);
        assert_eq!(st.metrics.maintenance_jobs, 1);
        assert_eq!(st.metrics.maintenance_inline, 0);
    }

    #[test]
    fn maintenance_runs_inline_when_slots_stay_busy() {
        let cfg = OffloadConfig {
            wait_budget: Duration::ZERO,
            ..Default::default()
        };
        let svc = OffloadService::with_slots(FcaeConfig::two_input(), 1, cfg);
        // Occupy the only slot, as run_job would.
        let held = svc.acquire_slot(JobClass::Flush).expect("idle slot");
        svc.state.lock().fpga_in_flight += 1;
        let mut ran = false;
        svc.run_maintenance(&mut || ran = true);
        assert!(ran, "GC still runs, just not on a slot");
        {
            let st = svc.state.lock();
            assert_eq!(st.metrics.maintenance_jobs, 1);
            assert_eq!(st.metrics.maintenance_inline, 1);
        }
        svc.release_slot(held);
        assert_eq!(svc.state.lock().free_slots.len(), 1);
    }

    #[test]
    fn zero_budget_falls_back_to_cpu() {
        let cfg = OffloadConfig {
            wait_budget: Duration::ZERO,
            ..Default::default()
        };
        let svc = OffloadService::with_slots(FcaeConfig::two_input(), 1, cfg);
        // An idle slot is handed out even with a zero budget...
        let slot = svc.acquire_slot(JobClass::L0ToL1);
        assert_eq!(slot, Some(0));
        // ...but once the only slot is busy, a zero budget cannot wait.
        assert_eq!(svc.acquire_slot(JobClass::L0ToL1), None);
    }
}

/// Loom model suite (`RUSTFLAGS="--cfg loom"`): the scheduler invariants
/// that only break under adversarial interleavings — slot exclusivity,
/// exactly-once execution across the fault-retry path, and priority-queue
/// aging with concurrent enqueue/dequeue. The service is built against
/// [`sync_shim`], so these models drive the exact lock/condvar protocol
/// production uses.
#[cfg(all(loom, test))]
mod loom_models {
    use std::path::Path;
    use std::sync::Arc;

    use loom::sync::atomic::{AtomicBool, Ordering};
    use sstable::comparator::InternalKeyComparator;
    use sstable::env::{MemEnv, StorageEnv, WritableFile};
    use sstable::ikey::{parse_internal_key, InternalKey, ValueType};
    use sstable::iterator::InternalIterator;
    use sstable::table::{Table, TableReadOptions};
    use sstable::table_builder::TableBuilderOptions;

    use super::*;
    use lsm::compaction::CompactionInput;

    /// Two slots, four contending threads: a granted slot must never be
    /// held by two jobs at once, and the free list must be whole after
    /// the storm.
    #[test]
    fn slots_are_never_double_granted() {
        loom::model(|| {
            let cfg = OffloadConfig {
                wait_budget: Duration::from_secs(30),
                ..Default::default()
            };
            let svc = Arc::new(OffloadService::with_slots(FcaeConfig::two_input(), 2, cfg));
            let claimed: Arc<Vec<AtomicBool>> =
                Arc::new((0..2).map(|_| AtomicBool::new(false)).collect());
            let mut threads = Vec::new();
            for t in 0..4usize {
                let svc = Arc::clone(&svc);
                let claimed = Arc::clone(&claimed);
                threads.push(loom::thread::spawn(move || {
                    for _ in 0..3 {
                        let slot = svc
                            .acquire_slot(JobClass::from_level(t % 3))
                            .expect("budget is far beyond any model schedule");
                        assert!(
                            !claimed[slot].swap(true, Ordering::SeqCst),
                            "slot {slot} granted to two jobs at once"
                        );
                        // Mirror run_job's occupancy accounting so
                        // release_slot's decrement balances.
                        svc.state.lock().fpga_in_flight += 1;
                        loom::thread::yield_now();
                        claimed[slot].store(false, Ordering::SeqCst);
                        svc.release_slot(slot);
                    }
                }));
            }
            for t in threads {
                t.join().expect("contender thread must not panic");
            }
            let state = svc.state.lock();
            assert_eq!(state.free_slots.len(), 2, "a slot leaked");
            assert!(state.waiting.is_empty(), "a waiter was stranded");
            assert_eq!(state.fpga_in_flight, 0);
        });
    }

    fn builder_options() -> TableBuilderOptions {
        TableBuilderOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            block_size: 512,
            ..Default::default()
        }
    }

    fn one_input(env: &MemEnv, path: &str) -> CompactionInput {
        let f = env.create_writable(Path::new(path)).expect("mem create");
        let mut b = sstable::table_builder::TableBuilder::new(builder_options(), f);
        for i in 0..40u64 {
            let t = if i % 9 == 0 {
                ValueType::Deletion
            } else {
                ValueType::Value
            };
            let key = InternalKey::new(format!("key{i:04}").as_bytes(), i + 1, t);
            b.add(key.encoded(), format!("val{i}").as_bytes())
                .expect("add");
        }
        let size = b.finish().expect("finish");
        let file = env.open_random_access(Path::new(path)).expect("open");
        let read_opts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        CompactionInput {
            tables: vec![Table::open(file, size, read_opts).expect("table")],
        }
    }

    fn request(env: &MemEnv) -> CompactionRequest {
        CompactionRequest {
            level: 1,
            inputs: vec![one_input(env, "/in")],
            smallest_snapshot: 1 << 40,
            bottommost: true,
            builder_options: builder_options(),
            max_output_file_size: 64 << 10,
        }
    }

    /// Allocates numbered output files in a MemEnv, counting allocations
    /// (a double-dispatched job would double the count).
    struct MemFactory {
        env: MemEnv,
        counter: std::sync::atomic::AtomicU64,
    }

    impl OutputFileFactory for MemFactory {
        fn new_output(&self) -> lsm::Result<(u64, Box<dyn WritableFile>)> {
            let n = self
                .counter
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
                + 1;
            let file = self
                .env
                .create_writable(Path::new(&format!("/out-{n}.ldb")))?;
            Ok((n, file))
        }
    }

    fn read_outputs(
        env: &MemEnv,
        outputs: &[lsm::compaction::OutputTableMeta],
    ) -> Vec<(Vec<u8>, u64, ValueType, Vec<u8>)> {
        let read_opts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        let mut all = Vec::new();
        for meta in outputs {
            let path = format!("/out-{}.ldb", meta.number);
            let file = env.open_random_access(Path::new(&path)).expect("open out");
            let table = Table::open(file, meta.file_size, read_opts.clone()).expect("out table");
            let mut it = table.iter();
            it.seek_to_first();
            while it.valid() {
                let p = parse_internal_key(it.key()).expect("well-formed key");
                all.push((
                    p.user_key.to_vec(),
                    p.sequence,
                    p.value_type,
                    it.value().to_vec(),
                ));
                it.next();
            }
            it.status().expect("clean iteration");
        }
        all
    }

    /// Three concurrent jobs, one injected device fault: the faulted job
    /// must run on the CPU exactly once (never also on the device), every
    /// job's output must match the single-threaded reference, and the
    /// metrics must account for every dispatch.
    #[test]
    fn fault_retry_is_exactly_once_under_concurrency() {
        // Single-threaded reference output, computed once.
        let ref_env = MemEnv::new();
        let ref_factory = MemFactory {
            env: ref_env.clone(),
            counter: Default::default(),
        };
        let ref_out = CpuCompactionEngine
            .compact(&request(&ref_env), &ref_factory)
            .expect("reference compaction");
        let expected = Arc::new(read_outputs(&ref_env, &ref_out.outputs));
        let expected_files = ref_out.outputs.len() as u64;
        assert!(!expected.is_empty());

        loom::model(move || {
            let cfg = OffloadConfig {
                wait_budget: Duration::from_secs(30),
                ..Default::default()
            };
            let svc = Arc::new(OffloadService::with_slots(FcaeConfig::two_input(), 2, cfg));
            svc.faults().inject(1);
            let mut threads = Vec::new();
            for _ in 0..3 {
                let svc = Arc::clone(&svc);
                let expected = Arc::clone(&expected);
                threads.push(loom::thread::spawn(move || {
                    let env = MemEnv::new();
                    let factory = MemFactory {
                        env: env.clone(),
                        counter: Default::default(),
                    };
                    let out = svc
                        .compact(&request(&env), &factory)
                        .expect("faults are retried, not surfaced");
                    assert_eq!(
                        read_outputs(&env, &out.outputs),
                        *expected,
                        "job output diverged from the reference"
                    );
                    assert_eq!(
                        factory.counter.load(std::sync::atomic::Ordering::SeqCst),
                        expected_files,
                        "a retried job must not allocate outputs twice"
                    );
                }));
            }
            for t in threads {
                t.join().expect("job thread must not panic");
            }
            let m = svc.metrics();
            assert_eq!(m.jobs_submitted, 3);
            assert_eq!(m.device_faults, 1, "exactly the injected fault fires");
            assert_eq!(m.faults_transient, 1, "the fault is dispatch-time");
            assert_eq!(
                m.faults_midjob_timeout + m.faults_midjob_poisoned,
                0,
                "no mid-job fault was injected"
            );
            assert_eq!(
                m.midjob_outputs_discarded, 0,
                "a transient fault never has outputs to discard"
            );
            assert_eq!(m.cpu_retries_after_fault, 1, "one CPU retry per fault");
            assert_eq!(m.fpga_jobs, 2, "unfaulted jobs stay on the device");
            assert_eq!(
                m.cpu_fallback_budget + m.cpu_fallback_oversized + m.cpu_fallback_timeout,
                0,
                "no job may take an unrelated CPU path in this model"
            );
            assert_eq!(svc.state.lock().jobs_in_flight, 0);
        });
    }

    /// Aging regression under concurrent enqueue/dequeue: a Deeper(4)
    /// waiter that has starved past five aging intervals must be served
    /// before fresh L0ToL1 waiters when the slot frees — and every waiter
    /// must be served exactly once.
    #[test]
    fn aged_deep_waiter_beats_fresh_l0_under_churn() {
        loom::model(|| {
            let cfg = OffloadConfig {
                wait_budget: Duration::from_secs(30),
                aging_interval: Duration::from_millis(2),
                ..Default::default()
            };
            let svc = Arc::new(OffloadService::with_slots(FcaeConfig::two_input(), 1, cfg));
            // Hold the only slot so every acquirer queues behind it.
            let held = svc.acquire_slot(JobClass::Flush).expect("idle slot");
            svc.state.lock().fpga_in_flight += 1;

            let order = Arc::new(std::sync::Mutex::new(Vec::new()));
            let serve = |svc: &OffloadService,
                         order: &std::sync::Mutex<Vec<&'static str>>,
                         class: JobClass,
                         tag: &'static str| {
                let slot = svc.acquire_slot(class).expect("budget outlasts the model");
                order.lock().expect("order lock").push(tag);
                svc.state.lock().fpga_in_flight += 1;
                svc.release_slot(slot);
            };

            let deep = {
                let svc = Arc::clone(&svc);
                let order = Arc::clone(&order);
                loom::thread::spawn(move || serve(&svc, &order, JobClass::Deeper(4), "deep"))
            };
            // Deeper(4) must be queued before it can starve.
            while svc.state.lock().waiting.is_empty() {
                loom::thread::yield_now();
            }
            // Let it starve past five aging intervals (base rank 5 -> 0),
            // then race in fresh L0 waiters — base rank 1, no aging yet.
            std::thread::sleep(Duration::from_millis(11));
            let mut l0s = Vec::new();
            for _ in 0..2 {
                let svc = Arc::clone(&svc);
                let order = Arc::clone(&order);
                l0s.push(loom::thread::spawn(move || {
                    serve(&svc, &order, JobClass::L0ToL1, "l0")
                }));
            }
            while svc.state.lock().waiting.len() < 3 {
                loom::thread::yield_now();
            }
            svc.release_slot(held);

            deep.join().expect("deep waiter");
            for t in l0s {
                t.join().expect("l0 waiter");
            }
            let order = order.lock().expect("order lock");
            assert_eq!(order.len(), 3, "every waiter served exactly once");
            assert_eq!(
                order[0], "deep",
                "starvation aging must promote the deep job past fresh L0 work"
            );
            let state = svc.state.lock();
            assert_eq!(state.free_slots.len(), 1);
            assert!(state.waiting.is_empty());
        });
    }
}
