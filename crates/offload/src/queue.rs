//! Priority policy for the offload queue.
//!
//! Jobs are classed by what they unblock: a flush directly unblocks
//! writers, an L0 -> L1 compaction drains the level whose file count
//! throttles writes, and deeper compactions only reshape the tree. The
//! scheduler therefore serves `Flush > L0ToL1 > Deeper(level)` — but a
//! starved deep job *ages*: every `aging_interval` it waits promotes it
//! one class, so a steady stream of flushes cannot postpone deep
//! compactions forever (which would eventually stall writers anyway once
//! the score imbalance propagates upward).

use std::time::{Duration, Instant};

/// What kind of work a queued job is, for scheduling purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobClass {
    /// Memtable flush (the store usually runs these on the host, but the
    /// queue supports them so a service may accept flush jobs too).
    Flush,
    /// L0 -> L1 compaction: drains the write-throttling level.
    L0ToL1,
    /// Compaction starting at `level >= 1`.
    Deeper(usize),
    /// Background maintenance (value-log GC): reclaims space but never
    /// unblocks writers directly, so it ranks below every compaction —
    /// yet it ages like the rest, so a busy engine cannot starve GC
    /// until the value log eats the disk.
    Maintenance,
}

impl JobClass {
    /// Class for a compaction starting at `level`.
    pub fn from_level(level: usize) -> JobClass {
        if level == 0 {
            JobClass::L0ToL1
        } else {
            JobClass::Deeper(level)
        }
    }

    /// Base rank; lower runs first.
    pub fn base_priority(&self) -> u64 {
        match self {
            JobClass::Flush => 0,
            JobClass::L0ToL1 => 1,
            JobClass::Deeper(level) => 1 + *level as u64,
            // Below Deeper(8), the deepest level any 7-level tree submits.
            JobClass::Maintenance => 10,
        }
    }
}

/// One queued job waiting for an engine slot.
#[derive(Debug, Clone)]
pub struct Waiter {
    /// Unique, monotonically increasing id (doubles as FIFO tie-break).
    pub id: u64,
    /// Scheduling class.
    pub class: JobClass,
    /// When the job entered the queue.
    pub enqueued: Instant,
}

/// Picks which waiter gets the next free slot.
#[derive(Debug, Clone, Copy)]
pub struct PriorityPolicy {
    /// Time a waiter must starve to gain one class of priority.
    pub aging_interval: Duration,
}

impl PriorityPolicy {
    /// Effective rank of `w` at `now` (lower runs first): the base class
    /// rank minus one per elapsed aging interval.
    pub fn effective_priority(&self, now: Instant, w: &Waiter) -> u64 {
        let waited = now.saturating_duration_since(w.enqueued);
        let boost = if self.aging_interval.is_zero() {
            0
        } else {
            (waited.as_nanos() / self.aging_interval.as_nanos()) as u64
        };
        w.class.base_priority().saturating_sub(boost)
    }

    /// The waiter to serve next: minimum (effective priority, id).
    pub fn pick<'a>(&self, now: Instant, waiting: &'a [Waiter]) -> Option<&'a Waiter> {
        waiting
            .iter()
            .min_by_key(|w| (self.effective_priority(now, w), w.id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> PriorityPolicy {
        PriorityPolicy {
            aging_interval: Duration::from_millis(10),
        }
    }

    fn waiter(id: u64, class: JobClass, enqueued: Instant) -> Waiter {
        Waiter {
            id,
            class,
            enqueued,
        }
    }

    #[test]
    fn flush_beats_l0_beats_deeper() {
        let now = Instant::now();
        let waiting = vec![
            waiter(1, JobClass::Deeper(3), now),
            waiter(2, JobClass::L0ToL1, now),
            waiter(3, JobClass::Flush, now),
        ];
        assert_eq!(policy().pick(now, &waiting).unwrap().id, 3);
        assert_eq!(policy().pick(now, &waiting[..2]).unwrap().id, 2);
    }

    #[test]
    fn fifo_within_a_class() {
        let now = Instant::now();
        let waiting = vec![
            waiter(7, JobClass::L0ToL1, now),
            waiter(8, JobClass::L0ToL1, now),
        ];
        assert_eq!(policy().pick(now, &waiting).unwrap().id, 7);
    }

    #[test]
    fn starved_deep_job_overtakes_fresh_l0() {
        let p = policy();
        let now = Instant::now();
        // Deeper(4) has base rank 5; after 5 aging intervals it reaches
        // rank 0 and outranks a fresh L0 job (rank 1).
        let old = now - Duration::from_millis(55);
        let waiting = vec![
            waiter(1, JobClass::Deeper(4), old),
            waiter(2, JobClass::L0ToL1, now),
        ];
        assert_eq!(p.pick(now, &waiting).unwrap().id, 1);
        // Without the wait it loses.
        let waiting = vec![
            waiter(1, JobClass::Deeper(4), now),
            waiter(2, JobClass::L0ToL1, now),
        ];
        assert_eq!(p.pick(now, &waiting).unwrap().id, 2);
    }

    #[test]
    fn maintenance_ranks_below_all_compactions() {
        let now = Instant::now();
        let waiting = vec![
            waiter(1, JobClass::Maintenance, now),
            waiter(2, JobClass::Deeper(6), now),
        ];
        assert_eq!(policy().pick(now, &waiting).unwrap().id, 2);
        // But a starved GC pass ages past fresh compactions like any
        // other waiter (base rank 10 -> 0 after ten intervals).
        let old = now - Duration::from_millis(105);
        let waiting = vec![
            waiter(1, JobClass::Maintenance, old),
            waiter(2, JobClass::L0ToL1, now),
        ];
        assert_eq!(policy().pick(now, &waiting).unwrap().id, 1);
    }

    #[test]
    fn zero_interval_disables_aging() {
        let p = PriorityPolicy {
            aging_interval: Duration::ZERO,
        };
        let now = Instant::now();
        let w = waiter(1, JobClass::Deeper(5), now - Duration::from_secs(100));
        assert_eq!(p.effective_priority(now, &w), 6);
    }

    #[test]
    fn empty_queue_picks_nothing() {
        assert!(policy().pick(Instant::now(), &[]).is_none());
    }
}
