//! Property tests for the wire codec (ISSUE 6, satellite 3).
//!
//! Three properties hold the protocol line:
//!
//! 1. **Round-trip** — any representable `Request`/`Response` encodes to
//!    a body that decodes back to an equal value.
//! 2. **Truncation** — any strict prefix of a valid encoding decodes to
//!    a clean `ProtoError`, never a panic (and never a bogus success).
//! 3. **Garbage** — arbitrary byte soup (including hostile length
//!    fields) either decodes or errors; it never panics or aborts. The
//!    codec itself sits inside the xtask no-panics lint scope, so this
//!    is defense in depth on top of the static check.

use proptest::prelude::*;
use server::proto::{
    self, decode_request, decode_response, encode_request_body, encode_response_body, frame_len,
    BatchOp, Request, Response,
};

fn bytes_strategy(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..max)
}

fn batch_op_strategy() -> impl Strategy<Value = BatchOp> {
    prop_oneof![
        (bytes_strategy(40), bytes_strategy(120))
            .prop_map(|(key, value)| BatchOp::Put { key, value }),
        bytes_strategy(40).prop_map(|key| BatchOp::Delete { key }),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        bytes_strategy(60).prop_map(|key| Request::Get { key }),
        (bytes_strategy(60), bytes_strategy(300), any::<bool>())
            .prop_map(|(key, value, sync)| Request::Put { key, value, sync }),
        (bytes_strategy(60), any::<bool>()).prop_map(|(key, sync)| Request::Delete { key, sync }),
        (
            bytes_strategy(40),
            prop_oneof![Just(None), bytes_strategy(40).prop_map(Some)],
            any::<u32>()
        )
            .prop_map(|(start, end, limit)| Request::Scan { start, end, limit }),
        (
            proptest::collection::vec(batch_op_strategy(), 0..12),
            any::<bool>()
        )
            .prop_map(|(ops, sync)| Request::WriteBatch { ops, sync }),
        any::<bool>().prop_map(|json| Request::Stats { json }),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..6)
            .prop_map(|cursors| Request::ReplHello { cursors }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(replica, shard, segment, offset, seq)| Request::ReplAck {
                replica,
                shard,
                segment,
                offset,
                seq,
            }),
        Just(Request::Promote),
        Just(Request::GetSeq),
        (
            bytes_strategy(60),
            proptest::collection::vec(any::<u64>(), 0..6)
        )
            .prop_map(|(key, min_seqs)| Request::GetRyw { key, min_seqs }),
        Just(Request::Shutdown),
    ]
}

fn pairs_strategy() -> impl Strategy<Value = Vec<(Vec<u8>, Vec<u8>)>> {
    proptest::collection::vec((bytes_strategy(30), bytes_strategy(80)), 0..10)
}

fn text_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<char>(), 0..60).prop_map(|cs| cs.into_iter().collect())
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        Just(Response::NotFound),
        bytes_strategy(300).prop_map(Response::Value),
        pairs_strategy().prop_map(Response::Pairs),
        pairs_strategy().prop_map(Response::PairsPartial),
        text_strategy().prop_map(Response::Stats),
        text_strategy().prop_map(Response::Err),
        text_strategy().prop_map(Response::ProtoErr),
        (
            any::<u32>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            bytes_strategy(200)
        )
            .prop_map(|(shard, segment, offset, last_seq, record)| {
                Response::Replicate {
                    shard,
                    segment,
                    offset,
                    last_seq,
                    record,
                }
            }),
        proptest::collection::vec(any::<u64>(), 0..6).prop_map(Response::SeqTokens),
        any::<u64>().prop_map(|applied| Response::Lagging { applied }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_round_trips(req in request_strategy()) {
        let body = encode_request_body(&req);
        prop_assert_eq!(decode_request(&body), Ok(req));
    }

    #[test]
    fn response_round_trips(resp in response_strategy()) {
        let body = encode_response_body(&resp);
        prop_assert_eq!(decode_response(&body), Ok(resp));
    }

    /// Every strict prefix of a valid request body is a clean error:
    /// truncation can never be mistaken for a different valid message.
    #[test]
    fn truncated_request_is_clean_error(
        req in request_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let body = encode_request_body(&req);
        let cut = cut.index(body.len().max(1));
        if cut < body.len() {
            prop_assert!(decode_request(&body[..cut]).is_err());
        }
    }

    #[test]
    fn truncated_response_never_panics(
        resp in response_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let body = encode_response_body(&resp);
        let cut = cut.index(body.len().max(1));
        // `Value`/`Stats`/`Err` prefixes can still be valid (their
        // payload is "rest of body"), so the property is only: clean
        // decode or clean error, never a panic.
        let _ = decode_response(&body[..cut]);
    }

    /// Arbitrary byte soup: decoding must return, never panic. When it
    /// does decode, re-encoding must itself decode back to the same
    /// value (decode output is always representable). Byte-exact
    /// re-encoding is NOT required — flag bytes accept any nonzero bit
    /// pattern but encode canonically.
    #[test]
    fn garbage_request_never_panics(body in bytes_strategy(2048)) {
        if let Ok(req) = decode_request(&body) {
            let reenc = encode_request_body(&req);
            prop_assert_eq!(decode_request(&reenc), Ok(req));
        }
    }

    #[test]
    fn garbage_response_never_panics(body in bytes_strategy(2048)) {
        let _ = decode_response(&body);
    }

    /// A corrupted-in-flight frame (one byte flipped anywhere in a valid
    /// encoding) must decode cleanly or error cleanly — no panic, no
    /// out-of-bounds.
    #[test]
    fn flipped_byte_never_panics(
        req in request_strategy(),
        flip in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut body = encode_request_body(&req);
        let i = flip.index(body.len());
        body[i] ^= xor;
        let _ = decode_request(&body);
    }

    /// A wrong version byte fails loudly as `VersionMismatch` naming the
    /// peer's version — on any otherwise-valid request or response.
    #[test]
    fn version_mismatch_is_always_loud(
        req in request_strategy(),
        resp in response_strategy(),
        version in any::<u8>(),
    ) {
        let version = if version == proto::PROTO_VERSION {
            version.wrapping_add(1)
        } else {
            version
        };
        let mut body = encode_request_body(&req);
        body[0] = version;
        prop_assert_eq!(
            decode_request(&body),
            Err(proto::ProtoError::VersionMismatch(version))
        );
        let mut body = encode_response_body(&resp);
        body[0] = version;
        prop_assert_eq!(
            decode_response(&body),
            Err(proto::ProtoError::VersionMismatch(version))
        );
    }

    /// Hostile length prefixes are rejected before any allocation.
    #[test]
    fn frame_len_never_panics(prefix in any::<u32>()) {
        match frame_len(prefix.to_le_bytes()) {
            Ok(len) => prop_assert!(len <= proto::MAX_FRAME),
            Err(e) => prop_assert_eq!(e, proto::ProtoError::Oversized),
        }
    }
}
