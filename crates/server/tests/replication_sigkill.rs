//! Real-process failover band: `SIGKILL` an actual `kv-server` leader
//! mid-replication-stream, promote the replica process, and assert the
//! acknowledged prefix survives cluster-wide — the process-boundary
//! companion to the in-process `tests/replication_failover.rs` bands.
//!
//! Both processes run `--sync`, so a leader ack means: WAL on disk
//! *and* (via the semi-sync wait) the replica durably applied the
//! write. `kill` sends SIGKILL — no handlers, no flush — the sharpest
//! software approximation of pulling the leader's plug.

use std::collections::HashMap;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use server::KvClient;

const SHARDS: usize = 2;

/// Starts a `kv-server --sync` on an OS-assigned port; `replica_of`
/// adds `--replica-of LEADER`. Returns the child and its listen addr.
fn spawn_node(root: &std::path::Path, replica_of: Option<&str>) -> (Child, String) {
    let mut args = vec![
        "--listen".to_string(),
        "127.0.0.1:0".to_string(),
        "--root".to_string(),
        root.to_str().expect("utf8 root").to_string(),
        "--shards".to_string(),
        SHARDS.to_string(),
        "--sync".to_string(),
        "--write-buffer".to_string(),
        (64 << 10).to_string(),
        "--max-file".to_string(),
        (32 << 10).to_string(),
    ];
    if let Some(leader) = replica_of {
        args.push("--replica-of".to_string());
        args.push(leader.to_string());
    }
    let mut child = Command::new(env!("CARGO_BIN_EXE_kv-server"))
        .args(&args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn kv-server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("kv-server exited before binding")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    (child, addr)
}

/// Same keyspace spread as the power-cut harness: both shards take
/// acknowledged writes.
fn key_for(i: u64) -> Vec<u8> {
    let space = 10u64.pow(16);
    let n = i.wrapping_mul(6_364_136_223_846_793_005) % space;
    format!("{n:016}").into_bytes()
}

#[test]
fn acked_writes_survive_leader_sigkill_and_promotion() {
    let pid = std::process::id();
    let leader_root = std::env::temp_dir().join(format!("repl-sigkill-leader-{pid}"));
    let replica_root = std::env::temp_dir().join(format!("repl-sigkill-replica-{pid}"));
    let _ = std::fs::remove_dir_all(&leader_root);
    let _ = std::fs::remove_dir_all(&replica_root);

    let (mut leader, leader_addr) = spawn_node(&leader_root, None);
    let (mut replica, replica_addr) = spawn_node(&replica_root, Some(&leader_addr));

    // Prove the feed is attached and caught up before the timed load:
    // a synced warmup write must become readable on the replica.
    let mut lc = KvClient::connect_with_backoff(&leader_addr, Duration::from_secs(5))
        .expect("connect leader");
    lc.put(b"warmup-marker", b"warm", true).expect("warmup");
    let mut rc = KvClient::connect_with_backoff(&replica_addr, Duration::from_secs(5))
        .expect("connect replica");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        if matches!(rc.get(b"warmup-marker"), Ok(Some(_))) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replica never caught up with the warmup write"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Synced writes; journal only acked ones. The kill arrives from a
    // sibling thread at an arbitrary point in the stream.
    let mut acked: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let kill_at = std::time::Instant::now() + Duration::from_millis(1200);
    for i in 0u64.. {
        if std::time::Instant::now() >= kill_at {
            leader.kill().expect("SIGKILL leader");
            let _ = leader.wait();
        }
        let key = key_for(i);
        let value = format!("i{i}-{}", "x".repeat(64)).into_bytes();
        match lc.put(&key, &value, true) {
            Ok(()) => {
                acked.insert(key, value);
            }
            // Connection torn by the kill: the in-flight write is NOT
            // recorded, exactly like a real client.
            Err(_) => break,
        }
    }
    if leader.try_wait().ok().flatten().is_none() {
        // The loop ended on a client error before the kill fired (should
        // not happen, but never leave a live child behind).
        leader.kill().expect("SIGKILL leader");
        let _ = leader.wait();
    }
    assert!(
        acked.len() >= 20,
        "load too small to be meaningful: only {} acked writes",
        acked.len()
    );

    // Promote the replica and verify the acked prefix on it.
    rc.promote().expect("promote replica");
    let mut lost = Vec::new();
    for (key, expect) in &acked {
        match rc.get(key) {
            Ok(Some(v)) if &v == expect => {}
            Ok(other) => lost.push((key.clone(), other)),
            Err(e) => panic!("get on promoted node failed: {e}"),
        }
    }
    assert!(
        lost.is_empty(),
        "{} of {} leader-acked writes missing on the promoted replica; first: {:?}",
        lost.len(),
        acked.len(),
        lost.first()
            .map(|(k, v)| (String::from_utf8_lossy(k).into_owned(), v.clone())),
    );

    // The promoted node is a leader: writes must now be accepted, and a
    // graceful shutdown must complete (drain + exit 0).
    rc.put(b"post-promote", b"accepted", true)
        .expect("promoted node must accept writes");
    rc.shutdown_server().expect("graceful shutdown");
    let status = replica.wait().expect("replica exit status");
    assert!(
        status.success(),
        "graceful shutdown must exit 0, got {status:?}"
    );

    let _ = std::fs::remove_dir_all(&leader_root);
    let _ = std::fs::remove_dir_all(&replica_root);
}

/// Writes to a replica must be refused with a storage-level error (the
/// connection stays open), and a graceful `Shutdown` of a replica must
/// exit cleanly too.
#[test]
fn replica_rejects_writes_until_promoted() {
    let pid = std::process::id();
    let leader_root = std::env::temp_dir().join(format!("repl-reject-leader-{pid}"));
    let replica_root = std::env::temp_dir().join(format!("repl-reject-replica-{pid}"));
    let _ = std::fs::remove_dir_all(&leader_root);
    let _ = std::fs::remove_dir_all(&replica_root);

    let (mut leader, leader_addr) = spawn_node(&leader_root, None);
    let (mut replica, replica_addr) = spawn_node(&replica_root, Some(&leader_addr));

    let mut rc = KvClient::connect_with_backoff(&replica_addr, Duration::from_secs(5))
        .expect("connect replica");
    match rc.put(b"0000000000000001", b"nope", false) {
        Err(server::ClientError::Rejected(msg)) => {
            assert!(msg.contains("replica"), "unhelpful rejection: {msg}");
        }
        other => panic!("replica write must be Rejected, got {other:?}"),
    }
    // The same connection keeps serving reads.
    assert_eq!(
        rc.get(b"0000000000000001").expect("read-after-reject"),
        None
    );

    rc.shutdown_server().expect("graceful replica shutdown");
    let status = replica.wait().expect("replica exit status");
    assert!(status.success(), "replica shutdown must exit 0: {status:?}");

    leader.kill().expect("stop leader");
    let _ = leader.wait();
    let _ = std::fs::remove_dir_all(&leader_root);
    let _ = std::fs::remove_dir_all(&replica_root);
}
