//! Power-cut harness (ISSUE 6, satellite 4): `SIGKILL` the real
//! `kv-server` process mid-load, restart it on the same store, and
//! assert every write a client was *acknowledged* for survives — across
//! all shards.
//!
//! The server runs with `--sync`, so each acknowledgment implies the
//! WAL reached disk before the response frame left the process; `kill`
//! (SIGKILL — no handlers, no flush) is the sharpest software
//! approximation of pulling the plug.

use std::collections::HashMap;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use server::KvClient;

const SHARDS: usize = 2;
const WRITERS: usize = 4;

/// Starts `kv-server --sync` on an OS-assigned port, returning the
/// child and the parsed listen address.
fn spawn_server(root: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_kv-server"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--root",
            root.to_str().expect("utf8 root"),
            "--shards",
            &SHARDS.to_string(),
            "--sync",
            // Small buffers so the load also exercises flush + compaction
            // before the kill, not just the WAL.
            "--write-buffer",
            &(64 << 10).to_string(),
            "--max-file",
            &(32 << 10).to_string(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn kv-server");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("kv-server exited before binding")
        .expect("read banner");
    let addr = banner
        .strip_prefix("listening on ")
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();
    (child, addr)
}

/// Spread keys over the whole 16-digit keyspace so both shards take
/// acknowledged writes. Each writer owns a disjoint `i` range, so a
/// key maps to exactly one (writer, iteration) and its expected value.
fn key_for(writer: usize, i: u64) -> Vec<u8> {
    let space = 10u64.pow(16);
    let n = (writer as u64 * 1_000_000 + i).wrapping_mul(6_364_136_223_846_793_005) % space;
    format!("{n:016}").into_bytes()
}

fn value_for(writer: usize, i: u64) -> Vec<u8> {
    format!("w{writer}-i{i}-{}", "x".repeat(64)).into_bytes()
}

#[test]
fn acked_writes_survive_sigkill() {
    let root = std::env::temp_dir().join(format!("server-powercut-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let (mut child, addr) = spawn_server(&root);

    // Writers record each key ONLY after its ack frame arrives. Anything
    // in flight when the process dies may or may not survive — that is
    // the protocol's contract — but an acked write must.
    let acked: Arc<Mutex<HashMap<Vec<u8>, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for writer in 0..WRITERS {
        let addr = addr.clone();
        let acked = Arc::clone(&acked);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let Ok(mut client) = KvClient::connect(&addr) else {
                return;
            };
            for i in 0.. {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                let (key, value) = (key_for(writer, i), value_for(writer, i));
                // The server is already running --sync; the per-request
                // flag is redundant but states the intent.
                match client.put(&key, &value, true) {
                    Ok(()) => {
                        acked.lock().unwrap().insert(key, value);
                    }
                    // Connection torn by the kill: in-flight write is
                    // NOT recorded, exactly like a real client.
                    Err(_) => return,
                }
            }
        }));
    }

    // Let the load build up real state, then pull the plug mid-write.
    std::thread::sleep(Duration::from_millis(1500));
    child.kill().expect("SIGKILL kv-server");
    let _ = child.wait();
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }

    let acked = Arc::try_unwrap(acked)
        .expect("workers joined")
        .into_inner()
        .unwrap();
    assert!(
        acked.len() >= 50,
        "load too small to be meaningful: only {} acked writes",
        acked.len()
    );

    // Restart on the same store; recovery must replay the synced WALs.
    let (mut child, addr) = spawn_server(&root);
    let mut client = KvClient::connect(&addr).expect("reconnect after restart");

    let mut lost = Vec::new();
    for (key, expect) in &acked {
        match client.get(key) {
            Ok(Some(v)) if &v == expect => {}
            Ok(other) => lost.push((key.clone(), other)),
            Err(e) => panic!("get after restart failed: {e}"),
        }
    }
    assert!(
        lost.is_empty(),
        "{} of {} acknowledged writes lost/corrupted after SIGKILL+restart; first: {:?}",
        lost.len(),
        acked.len(),
        lost.first()
            .map(|(k, v)| (String::from_utf8_lossy(k).into_owned(), v.clone())),
    );

    // Both shards must hold survivors — the guarantee is per-box, not
    // per-lucky-shard.
    let space = 10u64.pow(16);
    let boundary = format!("{:016}", space / SHARDS as u64).into_bytes();
    let low = acked.keys().filter(|k| **k < boundary).count();
    let high = acked.len() - low;
    assert!(
        low > 0 && high > 0,
        "acked writes landed on one shard only (low={low} high={high}); key spread is broken"
    );

    child.kill().expect("stop restarted server");
    let _ = child.wait();
    let _ = std::fs::remove_dir_all(&root);
}
