//! In-process integration tests: a real TCP server, real clients, and —
//! the ISSUE 6 acceptance gate — proof that all shards contend for ONE
//! shared offload scheduler (per-shard `offload.shard<i>.jobs` counters
//! on a single registry, ≥2 shards with jobs after a compacting load).

use std::path::PathBuf;

use server::{BatchOp, KvClient, KvServer, Request, Response, ServerConfig, ServerHandle};

fn tmp_root(name: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("server-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

/// 16-digit decimal key `i * stride`, spread across the whole keyspace
/// so the default decimal boundaries route them to every shard.
fn key(i: u64) -> Vec<u8> {
    let space = 10u64.pow(16);
    format!(
        "{:016}",
        (i.wrapping_mul(6_364_136_223_846_793_005)) % space
    )
    .into_bytes()
}

fn start(name: &str, config: ServerConfig) -> (ServerHandle, PathBuf) {
    let root = tmp_root(name);
    let kv = KvServer::open(ServerConfig {
        root: root.clone(),
        ..config
    })
    .expect("open server");
    let handle = kv.start("127.0.0.1:0").expect("bind");
    (handle, root)
}

#[test]
fn end_to_end_ops() {
    let (handle, root) = start("e2e", ServerConfig::default());
    let addr = handle.addr().to_string();
    let mut client = KvClient::connect(&addr).expect("connect");

    // Point ops, routed to different shards by the 16-digit keys.
    for i in 0..100u64 {
        client
            .put(&key(i), format!("value-{i}").as_bytes(), false)
            .expect("put");
    }
    for i in 0..100u64 {
        let got = client.get(&key(i)).expect("get");
        assert_eq!(got.as_deref(), Some(format!("value-{i}").as_bytes()));
    }
    // Above every decimal key — definitely absent, routed to the last shard.
    assert_eq!(client.get(b"zzz-absent").expect("get"), None);

    // Delete, then read-your-delete.
    client.delete(&key(3), false).expect("delete");
    assert_eq!(client.get(&key(3)).expect("get"), None);

    // Full-range scan concatenates per-shard ranges in global key order.
    let pairs = client.scan(b"", None, 1000).expect("scan");
    assert_eq!(pairs.len(), 99, "100 puts minus 1 delete");
    for w in pairs.windows(2) {
        assert!(w[0].0 < w[1].0, "scan output must be strictly sorted");
    }

    // Bounded scan honors the exclusive end and the limit.
    let all: Vec<_> = pairs.iter().map(|(k, _)| k.clone()).collect();
    let bounded = client
        .scan(&all[10], Some(&all[20]), 1000)
        .expect("bounded scan");
    assert_eq!(bounded.len(), 10);
    let limited = client.scan(b"", None, 7).expect("limited scan");
    assert_eq!(limited.len(), 7);

    // A cross-shard batch lands atomically per shard.
    let ops: Vec<BatchOp> = (200..230u64)
        .map(|i| BatchOp::Put {
            key: key(i),
            value: b"batched".to_vec(),
        })
        .chain(std::iter::once(BatchOp::Delete { key: key(5) }))
        .collect();
    client.write_batch(ops, false).expect("write_batch");
    assert_eq!(
        client.get(&key(210)).expect("get"),
        Some(b"batched".to_vec())
    );
    assert_eq!(client.get(&key(5)).expect("get"), None);

    // Stats exports the shared registry (server + lsm metrics together).
    let text = client.stats(false).expect("stats");
    assert!(text.contains("server.req.put_micros"), "stats:\n{text}");
    assert!(text.contains("server.shard0.requests"), "stats:\n{text}");
    assert!(text.contains("lsm.flush.count"), "stats:\n{text}");
    let json = client.stats(true).expect("stats json");
    obs::json::parse(&json).expect("stats --json must be valid JSON");

    // Pipelining: N requests back-to-back, N responses in order.
    let reqs: Vec<Request> = (0..50u64).map(|i| Request::Get { key: key(i) }).collect();
    let resps = client.pipeline(&reqs).expect("pipeline");
    assert_eq!(resps.len(), 50);
    for (i, resp) in resps.iter().enumerate() {
        match resp {
            Response::Value(v) => assert_eq!(v, format!("value-{i}").as_bytes()),
            Response::NotFound => assert!(i == 3 || i == 5, "only deleted keys miss"),
            other => panic!("unexpected pipeline response {other:?}"),
        }
    }

    // Request latency histograms on the shared bundle saw every op.
    let obs = handle.obs();
    assert!(obs.registry.histogram("server.req.get_micros").count() >= 150);
    assert!(obs.registry.histogram("server.req.put_micros").count() >= 100);
    assert!(obs.registry.histogram("server.req.scan_micros").count() >= 3);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Regression: a scan over large values used to build one `Pairs`
/// response of unbounded size — ~1 MiB values with a generous pair limit
/// encoded past `MAX_FRAME` (16 MiB) and the client's frame check killed
/// the connection. The server must now cap replies by encoded bytes,
/// answer `PairsPartial`, and let the client resume past the last key.
#[test]
fn scan_with_large_values_stays_under_frame_cap_and_resumes() {
    let (handle, root) = start("big-scan", ServerConfig::default());
    let addr = handle.addr().to_string();
    let mut client = KvClient::connect(&addr).expect("connect");

    let mb = 1 << 20;
    for i in 0..20u64 {
        let value = vec![b'a' + (i % 26) as u8; mb];
        client.put(&key(i), &value, false).expect("put");
    }

    let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut start_key = Vec::new();
    let mut rounds = 0u32;
    loop {
        rounds += 1;
        assert!(rounds <= 40, "resume loop must terminate");
        let (pairs, complete) = client.scan_partial(&start_key, None, 1000).expect("scan");
        if !complete {
            assert!(
                !pairs.is_empty(),
                "a single 1 MiB pair fits the frame budget"
            );
        }
        if let Some((k, _)) = pairs.last() {
            start_key = k.clone();
            start_key.push(0); // resume strictly past the last key
        }
        all.extend(pairs);
        if complete {
            break;
        }
    }
    assert!(rounds >= 2, "20 MiB of pairs cannot fit one 16 MiB frame");
    assert_eq!(all.len(), 20, "every pair arrives exactly once");
    for w in all.windows(2) {
        assert!(w[0].0 < w[1].0, "resumed scan output must stay sorted");
    }
    for (k, v) in &all {
        assert_eq!(v.len(), mb, "key {:?}", String::from_utf8_lossy(k));
    }

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// A protocol violation is answered with `ProtoErr`, counted, and the
/// connection is closed — without disturbing other connections.
#[test]
fn protocol_violation_closes_only_that_connection() {
    use std::io::{Read, Write};

    let (handle, root) = start("proto-err", ServerConfig::default());
    let addr = handle.addr().to_string();

    let mut good = KvClient::connect(&addr).expect("connect");
    good.put(b"0000000000000001", b"v", false).expect("put");

    // Hand-rolled bad frame: correct version byte, unknown opcode 0xEE.
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect raw");
    raw.write_all(&2u32.to_le_bytes()).expect("len");
    raw.write_all(&[server::proto::PROTO_VERSION, 0xEE])
        .expect("body");
    let mut buf = Vec::new();
    raw.read_to_end(&mut buf).expect("server reply then close");
    assert!(buf.len() > 5, "expected a ProtoErr frame before close");
    assert_eq!(buf[4], server::proto::PROTO_VERSION);
    assert_eq!(buf[5], server::proto::tag::PROTO_ERR);

    // The well-behaved connection keeps working.
    assert_eq!(
        good.get(b"0000000000000001").expect("get"),
        Some(b"v".to_vec())
    );
    assert!(handle.obs().registry.counter("server.proto.errors").get() >= 1);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// The ISSUE acceptance gate: one `OffloadService` behind every shard.
/// Small buffers force flushes + compactions on multiple shards; the
/// single shared registry must then show `offload.shard<i>.jobs` ≥ 1
/// for at least two distinct shards.
#[test]
fn shards_share_one_offload_scheduler() {
    let (handle, root) = start(
        "shared-offload",
        ServerConfig {
            shards: 4,
            engine_slots: 2,
            write_buffer_size: 32 << 10,
            max_file_size: 16 << 10,
            ..Default::default()
        },
    );
    let addr = handle.addr().to_string();
    let mut client = KvClient::connect(&addr).expect("connect");

    // ~3 MiB spread over all 4 shards — dozens of flushes per shard at a
    // 32 KiB buffer, so every shard queues compaction jobs.
    let value = vec![0xABu8; 512];
    for i in 0..6000u64 {
        client.put(&key(i), &value, false).expect("put");
    }
    handle.quiesce();

    let obs = handle.obs();
    let registry = &obs.registry;
    let jobs: Vec<u64> = (0..4)
        .map(|i| registry.counter(&format!("offload.shard{i}.jobs")).get())
        .collect();
    let busy = jobs.iter().filter(|&&j| j > 0).count();
    assert!(
        busy >= 2,
        "expected ≥2 shards with offload jobs on the shared scheduler, got {jobs:?}"
    );

    // The proof is strongest stated in export form: ONE registry export
    // carries the job counters of multiple shards side by side.
    let export = registry.export_text();
    let exported_shards = (0..4)
        .filter(|i| {
            export.lines().any(|l| {
                l.starts_with(&format!("counter offload.shard{i}.jobs ")) && !l.ends_with(" 0")
            })
        })
        .count();
    assert!(
        exported_shards >= 2,
        "single registry export must show ≥2 shards' jobs:\n{export}"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
